"""Command-line entry point: run any paper experiment and print its report.

Usage::

    python -m repro list                 # what can I run?
    python -m repro fig3                 # one experiment
    python -m repro table2 fig7 fig16    # several
    python -m repro all                  # the whole evaluation (minutes)
    python -m repro --jobs 4 fig9 fig10  # grid cells across 4 processes

Each experiment runs at the laptop scale recorded in EXPERIMENTS.md and
prints the same rows/series the paper reports.  Heavy simulation matrices
are shared between experiments within one invocation; ``--jobs N`` (or
``$REPRO_JOBS``) fans their cells out over N worker processes without
changing any row, and ``$REPRO_RUN_CACHE`` persists cell results across
invocations (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Tuple

Runner = Tuple[str, Callable[[], str]]


def _runners() -> Dict[str, Runner]:
    # Imports are deferred so `python -m repro list` is instant.
    def table1() -> str:
        from repro.experiments.table1_workloads import format_table1, run_table1

        return format_table1(run_table1())

    def fig3() -> str:
        from repro.experiments.fig3_locality import format_fig3, run_fig3

        return format_fig3(run_fig3())

    def fig7() -> str:
        from repro.experiments.fig7_unavailability import format_fig7, run_fig7

        return format_fig7(run_fig7())

    def fig8() -> str:
        from repro.experiments.fig8_per_user import format_fig8, run_fig8

        return format_fig8(run_fig8())

    def table2() -> str:
        from repro.experiments.table2_tasks import format_table2, run_table2

        return format_table2(run_table2())

    def fig9() -> str:
        from repro.experiments.fig9_lookup_traffic import format_fig9, run_fig9

        return format_fig9(run_fig9())

    def fig10() -> str:
        from repro.experiments.fig10_speedup import format_fig10, run_fig10

        return format_fig10(run_fig10())

    def fig11() -> str:
        from repro.experiments.fig11_speedup_file import format_fig11, run_fig11

        return format_fig11(run_fig11())

    def fig12() -> str:
        from repro.experiments.fig12_per_user_speedup import (
            format_fig12,
            run_fig12,
        )

        return format_fig12(run_fig12())

    def fig13() -> str:
        from repro.experiments.fig13_cache_miss import format_fig13, run_fig13

        return format_fig13(run_fig13())

    def fig14() -> str:
        from repro.experiments.fig14_latency_scatter import (
            format_fig14,
            plot_fig14,
            run_fig14,
        )

        return format_fig14(run_fig14()) + "\n\n" + plot_fig14()

    def fig15() -> str:
        from repro.experiments.fig15_latency_scatter_file import (
            format_fig15,
            run_fig15,
        )

        return format_fig15(run_fig15())

    def table3() -> str:
        from repro.experiments.table3_churn import (
            format_table3,
            format_table3_dynamic,
            run_table3,
            run_table3_dynamic,
        )

        return (
            format_table3(run_table3())
            + "\n\n"
            + format_table3_dynamic(run_table3_dynamic())
        )

    def churn() -> str:
        from repro.experiments.churn_storm import format_churn_storm, run_churn_storm

        return format_churn_storm(run_churn_storm())

    def fig16() -> str:
        from repro.experiments.fig16_imbalance_harvard import (
            format_fig16,
            plot_fig16,
            summarize_fig16,
        )

        return format_fig16(summarize_fig16()) + "\n\n" + plot_fig16()

    def fig17() -> str:
        from repro.experiments.fig17_imbalance_webcache import (
            format_fig17,
            plot_fig17,
            summarize_fig17,
        )

        return format_fig17(summarize_fig17()) + "\n\n" + plot_fig17()

    def table4() -> str:
        from repro.experiments.table4_overhead import format_table4, run_table4

        return format_table4(run_table4())

    def hybrid() -> str:
        from repro.experiments.ext_hybrid import format_hybrid, run_hybrid_extension

        return format_hybrid(run_hybrid_extension())

    def hotspot() -> str:
        from repro.experiments.ext_hotspot import format_hotspot, run_hotspot_extension

        return format_hotspot(run_hotspot_extension())

    def erasure() -> str:
        from repro.experiments.ext_erasure import format_erasure, run_erasure_extension

        return format_erasure(run_erasure_extension())

    def scale() -> str:
        from repro.experiments.scale_matrix import (
            format_scale,
            record_trajectory,
            run_scale,
        )

        results = run_scale()
        path = record_trajectory(results)
        return format_scale(results) + f"\n\nrecorded run -> {path}"

    def accel() -> str:
        from repro.experiments.accel_matrix import format_accel, run_accel
        from repro.experiments.scale_matrix import record_trajectory

        results = run_accel()
        path = record_trajectory(results)
        return format_accel(results) + f"\n\nrecorded run -> {path}"

    def ablations() -> str:
        from repro.experiments.ablations import (
            run_cache_ttl_ablation,
            run_pointer_ablation,
            run_replica_ablation,
            run_threshold_ablation,
        )
        from repro.experiments.common import format_table

        parts = [
            format_table(
                run_pointer_ablation(),
                ["pointers", "written_mb", "migrated_mb", "migration_multiplier"],
                title="Ablation: block pointers",
            ),
            format_table(
                run_threshold_ablation(),
                ["threshold", "rounds", "moves", "final_nsd", "max_over_mean"],
                title="Ablation: balance threshold t",
            ),
            format_table(
                run_cache_ttl_ablation(),
                ["ttl_s", "miss_rate", "stale_redirects", "total_lookup_cost"],
                title="Ablation: lookup-cache TTL",
            ),
            format_table(
                run_replica_ablation(),
                ["replicas", "unavail_d2", "unavail_traditional"],
                title="Ablation: replica count",
            ),
        ]
        return "\n\n".join(parts)

    return {
        "table1": ("Table 1: workloads analyzed", table1),
        "fig3": ("Figure 3: placement locality", fig3),
        "fig7": ("Figure 7: task unavailability vs inter", fig7),
        "fig8": ("Figure 8: per-user unavailability", fig8),
        "table2": ("Table 2: objects/nodes per task", table2),
        "fig9": ("Figure 9: lookup traffic vs size", fig9),
        "fig10": ("Figure 10: speedup vs traditional", fig10),
        "fig11": ("Figure 11: speedup vs traditional-file", fig11),
        "fig12": ("Figure 12: per-user speedup", fig12),
        "fig13": ("Figure 13: cache miss rates", fig13),
        "fig14": ("Figure 14: latency scatter vs traditional", fig14),
        "fig15": ("Figure 15: latency scatter vs traditional-file", fig15),
        "table3": ("Table 3: daily churn ratios (static + dynamic ring)", table3),
        "churn": ("Churn storm: join/leave/crash matrix", churn),
        "fig16": ("Figure 16: imbalance, Harvard", fig16),
        "fig17": ("Figure 17: imbalance, Webcache", fig17),
        "table4": ("Table 4: write vs migration traffic", table4),
        "hybrid": ("Extension: hybrid replica placement", hybrid),
        "hotspot": ("Extension: retrieval-cache hot spots", hotspot),
        "erasure": ("Extension: replication vs erasure coding", erasure),
        "ablations": ("Ablations: pointers / t / TTL / replicas", ablations),
        "scale": ("Scale matrix: engine throughput -> BENCH_scale.json", scale),
        "accel": ("Acceleration matrix: modes x workload shift -> BENCH_scale.json", accel),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see `list`), or `all`",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation grids "
        "(0 = one per CPU; default $REPRO_JOBS, else serial)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        if args.jobs < 0:
            parser.error(f"--jobs must be >= 0, got {args.jobs}")
        from repro.runner import JOBS_ENV

        os.environ[JOBS_ENV] = str(args.jobs)
    runners = _runners()

    requested = args.experiments or ["list"]
    if requested == ["list"] or requested == []:
        print("available experiments:")
        for name, (title, _fn) in runners.items():
            print(f"  {name:10s} {title}")
        print("  all        run everything above")
        return 0
    if requested == ["all"]:
        # `scale` and `accel` benchmark wall-clock throughput (minutes of
        # runtime, machine-dependent numbers) — run them explicitly, not
        # under `all`.
        requested = [name for name in runners if name not in ("scale", "accel")]

    unknown = [name for name in requested if name not in runners]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run `python -m repro list` to see what's available", file=sys.stderr)
        return 2

    for name in requested:
        title, fn = runners[name]
        started = time.perf_counter()
        report = fn()
        elapsed = time.perf_counter() - started
        print(report)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
