"""Load balance and overhead over time (Section 10; Figs 16–17, Tables 3–4).

Two long-running simulations:

* **Harvard** — the file-system workload's mutations (creates, writes,
  deletes, renames) replayed for the full trace, with D2's balancer probing
  every 10 minutes.  Compared against the traditional DHT (consistent
  hashing, no balancing), the traditional-file DHT (whole files on one
  node — the worst balance, since file sizes span 4 orders of magnitude),
  and Traditional+Merc (hashed keys *plus* active balancing — the
  best-case reference D2 should approach).
* **Webcache** — the DHT used as a cooperative web cache (Squirrel):
  insert on miss, evict after a day unrefreshed, replace on origin change.
  The DHT starts empty and daily write volume can exceed stored volume
  by an order of magnitude (Table 3), the hardest case for balancing.

Metrics:

* **imbalance** — normalized standard deviation of total per-node storage
  bytes, sampled on a fixed grid (Figures 16, 17);
* **churn ratios** — daily written/removed bytes over bytes present at the
  day's start (Table 3);
* **overhead** — daily migration (load-balancing) traffic vs write traffic
  (Table 4), reported per node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import D2Config
from repro.core.system import Deployment, build_deployment
from repro.dht.load_balance import max_over_mean, normalized_std_dev
from repro.workloads.trace import READ, SECONDS_PER_DAY, Trace
from repro.workloads.webcache import WebCache, WebCacheKeyScheme


@dataclass
class BalanceSample:
    time: float
    nsd: float
    max_over_mean: float
    total_bytes: int
    nodes_with_data: int


@dataclass
class BalanceResult:
    system: str
    workload: str
    n_nodes: int
    samples: List[BalanceSample]
    daily_written: List[int]
    daily_removed: List[int]
    daily_migrated: List[int]
    bytes_at_day_start: List[int]
    moves: int
    metrics: Optional[dict] = None  # deployment observability snapshot

    def mean_nsd(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.nsd for s in self.samples) / len(self.samples)

    def mean_max_over_mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.max_over_mean for s in self.samples) / len(self.samples)

    def churn_rows(self) -> List[dict]:
        """Table 3 rows: per-day W_i/T_i and R_i/T_i."""
        rows = []
        for day, (written, removed, present) in enumerate(
            zip(self.daily_written, self.daily_removed, self.bytes_at_day_start)
        ):
            rows.append(
                {
                    "day": day + 1,
                    "write_ratio": written / present if present else float("inf"),
                    "remove_ratio": removed / present if present else float("inf"),
                }
            )
        return rows

    def overhead_rows(self) -> List[dict]:
        """Table 4 rows: per-day per-node write vs migration traffic (MB)."""
        rows = []
        for day, (written, migrated) in enumerate(
            zip(self.daily_written, self.daily_migrated)
        ):
            rows.append(
                {
                    "day": day + 1,
                    "write_mb_per_node": written / 1e6 / self.n_nodes,
                    "migration_mb_per_node": migrated / 1e6 / self.n_nodes,
                }
            )
        return rows

    def migration_over_write(self) -> float:
        """Total L/W ratio (paper: ~0.5 for Harvard, ~1.16 for Webcache)."""
        written = sum(self.daily_written)
        migrated = sum(self.daily_migrated)
        return migrated / written if written else 0.0


def _collect_samples(
    deployment: Deployment,
    duration: float,
    sample_interval: float,
    samples: List[BalanceSample],
) -> None:
    def sample() -> None:
        loads = list(deployment.store.total_bytes_per_node().values())
        samples.append(
            BalanceSample(
                time=deployment.sim.now,
                nsd=normalized_std_dev(loads),
                max_over_mean=max_over_mean(loads),
                total_bytes=deployment.store.directory.total_bytes,
                nodes_with_data=sum(1 for v in loads if v > 0),
            )
        )

    sample()
    deployment.sim.schedule_periodic(sample_interval, sample, first_delay=sample_interval)


def _day_tracker(deployment: Deployment, days: int) -> List[int]:
    """Record total stored bytes at the start of each day (Table 3's T_i)."""
    bytes_at_start: List[int] = []

    def snapshot() -> None:
        bytes_at_start.append(deployment.store.directory.total_bytes)

    for day in range(days):
        deployment.sim.schedule_at(day * SECONDS_PER_DAY + 1e-6, snapshot)
    return bytes_at_start


def run_harvard_balance(
    trace: Trace,
    system: str,
    *,
    n_nodes: int = 64,
    sample_interval: float = 6 * 3600.0,
    config: Optional[D2Config] = None,
    seed: int = 0,
    stabilize: bool = True,
) -> BalanceResult:
    """Figure 16 / Tables 3–4 for the file-system workload."""
    config = config or D2Config()
    deployment = build_deployment(system, n_nodes, config=config, seed=seed)
    deployment.load_initial_image(trace)
    if stabilize:
        deployment.stabilize()
    deployment.store.ledger = type(deployment.store.ledger)()
    deployment.start_periodic_balancing()

    duration = max(trace.duration, SECONDS_PER_DAY)
    days = max(1, int(duration // SECONDS_PER_DAY) + (1 if duration % SECONDS_PER_DAY else 0))
    samples: List[BalanceSample] = []
    _collect_samples(deployment, duration, sample_interval, samples)
    bytes_at_start = _day_tracker(deployment, days)

    for record in trace.records:
        deployment.advance_to(record.time)
        if record.op == READ:
            continue  # reads do not change the data distribution
        deployment.replay_record(record)
    deployment.advance_to(duration)
    deployment.stop_periodic_balancing()

    ledger = deployment.store.ledger
    series = ledger.daily_series(days)
    return BalanceResult(
        system=system,
        workload=trace.name,
        n_nodes=n_nodes,
        samples=samples,
        daily_written=[row["written"] for row in series],
        daily_removed=[row["removed"] for row in series],
        daily_migrated=[row["migrated"] for row in series],
        bytes_at_day_start=bytes_at_start,
        moves=deployment.store.moves_executed,
        metrics=deployment.observability_snapshot(),
    )


def run_webcache_balance(
    web_trace: Trace,
    system: str,
    *,
    n_nodes: int = 64,
    sample_interval: float = 6 * 3600.0,
    eviction_scan_interval: float = 3600.0,
    config: Optional[D2Config] = None,
    seed: int = 0,
) -> BalanceResult:
    """Figure 17 / Tables 3–4 for the web-cache workload.

    *web_trace* is a stream of READ records whose ``length`` is the object
    size (as produced by :func:`repro.workloads.web.generate_web`).  The
    DHT starts empty; misses insert, origin changes replace, staleness
    evicts.
    """
    if system not in ("d2", "traditional"):
        raise ValueError("webcache balance compares 'd2' and 'traditional'")
    config = config or D2Config()
    deployment = build_deployment(system, n_nodes, config=config, seed=seed)
    # No volume bootstrap: the web cache stores raw keyed blocks.
    if system == "d2":
        deployment.start_periodic_balancing()

    scheme = WebCacheKeyScheme(system)
    cache = WebCache(scheme, rng=random.Random(seed + 3))
    store = deployment.store

    def put(key: int, size: int) -> None:
        store.write(key, size)

    def remove(key: int) -> None:
        if key in store.directory:
            store.remove(key, delay=0.0)

    duration = max(web_trace.duration, SECONDS_PER_DAY)
    days = max(1, int(duration // SECONDS_PER_DAY) + (1 if duration % SECONDS_PER_DAY else 0))
    samples: List[BalanceSample] = []
    _collect_samples(deployment, duration, sample_interval, samples)
    bytes_at_start = _day_tracker(deployment, days)
    deployment.sim.schedule_periodic(
        eviction_scan_interval, lambda: cache.evict_stale(deployment.sim.now, remove)
    )

    for record in web_trace.records:
        deployment.advance_to(record.time)
        if record.op != READ:
            continue
        cache.request(record.path, max(record.length, 1), record.time, put, remove)
    deployment.advance_to(duration)
    deployment.stop_periodic_balancing()

    ledger = store.ledger
    series = ledger.daily_series(days)
    return BalanceResult(
        system=system,
        workload=web_trace.name,
        n_nodes=n_nodes,
        samples=samples,
        daily_written=[row["written"] for row in series],
        daily_removed=[row["removed"] for row in series],
        daily_migrated=[row["migrated"] for row in series],
        bytes_at_day_start=bytes_at_start,
        moves=store.moves_executed,
        metrics=deployment.observability_snapshot(),
    )
