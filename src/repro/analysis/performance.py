"""End-to-end read performance (Section 9; Figures 9–15).

Replays 15-minute windows of the Harvard-like workload against each system
and times every *access group* (burst between think times) under two
parallelism extremes:

* ``seq`` — accesses issue strictly one after another;
* ``para`` — all accesses in a group issue concurrently, capped at 15
  in-flight transfers per client (Section 9.1's empirical limit).

The latency of one block fetch is composed of

1. **lookup** — on a lookup-cache miss, a recursive O(log n) routed lookup
   whose latency is the sum of its hop legs plus the response leg, and
   whose messages count toward Figure 9;
2. **download** — a TCP transfer from a randomly chosen replica, with slow
   start, idle-restart, and FIFO contention on the server's access link
   (Section 9.3's analysis).

Windows are initialized the way the paper initializes Emulab runs: all
records before the window are replayed (writes mutate the FS; reads warm
each user's lookup cache and buffer cache), then the window itself is
timed.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import D2Config
from repro.core.lookup_cache import LookupCache
from repro.core.system import Deployment, build_deployment
from repro.dht.routing import route
from repro.sim.engine import TokenBucket, kbps
from repro.sim.network import LatencyModel
from repro.sim.transport import TcpTransport
from repro.workloads.tasks import segment_access_groups
from repro.workloads.trace import READ, Trace

SEQ = "seq"
PARA = "para"
MODES = (SEQ, PARA)


@dataclass
class GroupTiming:
    """Completion time of one access group in one system."""

    user: str
    start: float
    fetches: int
    completion: float  # seconds of simulated latency


@dataclass
class PerformanceResult:
    system: str
    mode: str
    n_nodes: int
    bandwidth_bps: float
    group_timings: List[GroupTiming]
    lookup_messages: int
    lookups: int
    cache_hits: int
    cache_misses: int
    per_user_miss_rate: Dict[str, float]
    metrics: Optional[Dict[str, object]] = None  # deployment observability snapshot
    trace: Optional[List[Dict[str, object]]] = None  # exported span dicts

    @property
    def messages_per_node(self) -> float:
        return self.lookup_messages / self.n_nodes if self.n_nodes else 0.0

    @property
    def mean_miss_rate(self) -> float:
        rates = list(self.per_user_miss_rate.values())
        return sum(rates) / len(rates) if rates else 0.0

    def timings_by_group(self) -> Dict[Tuple[str, float], GroupTiming]:
        return {(t.user, t.start): t for t in self.group_timings}


@dataclass
class SpeedupReport:
    """Geometric-mean speedups of *fast* over *base* (Figures 10–12)."""

    overall: float
    per_user: Dict[str, float]
    pairs: List[Tuple[float, float]]  # (base completion, fast completion)

    @property
    def fraction_above_one(self) -> float:
        users = list(self.per_user.values())
        if not users:
            return 0.0
        return sum(1 for s in users if s > 1.0) / len(users)


def compare(base: PerformanceResult, fast: PerformanceResult) -> SpeedupReport:
    """Per-group completion-time ratios, aggregated the paper's way.

    Per user: geometric mean over that user's access groups.  Overall: the
    geometric mean across users (Section 9.3, footnote 6).
    """
    base_map = base.timings_by_group()
    fast_map = fast.timings_by_group()
    per_user_logs: Dict[str, List[float]] = defaultdict(list)
    pairs: List[Tuple[float, float]] = []
    floor = 1e-4  # guard: zero-latency groups (fully cache-absorbed)
    for key, base_timing in base_map.items():
        fast_timing = fast_map.get(key)
        if fast_timing is None:
            continue
        b = max(base_timing.completion, floor)
        f = max(fast_timing.completion, floor)
        pairs.append((base_timing.completion, fast_timing.completion))
        per_user_logs[key[0]].append(math.log(b / f))
    per_user = {
        user: math.exp(sum(logs) / len(logs)) for user, logs in per_user_logs.items() if logs
    }
    if per_user:
        overall = math.exp(sum(math.log(s) for s in per_user.values()) / len(per_user))
    else:
        overall = 1.0
    return SpeedupReport(overall=overall, per_user=per_user, pairs=pairs)


class _Client:
    """One user's client-side state: node placement and caches."""

    def __init__(self, user: str, node: str, cache_ttl: float,
                 registry=None, tracer=None, ring=None) -> None:
        self.user = user
        self.node = node
        self.lookup_cache = LookupCache(
            ttl=cache_ttl, ring=ring, registry=registry, tracer=tracer
        )
        self.buffer_cache: Dict[str, Tuple[float, int]] = {}  # ident -> (time, key)


class PerformanceHarness:
    """Shared machinery for replaying timed windows against one deployment."""

    def __init__(
        self,
        deployment: Deployment,
        latency: LatencyModel,
        *,
        bandwidth_bps: float,
        rng: random.Random,
        buffer_ttl: float = 30.0,
    ) -> None:
        self.deployment = deployment
        self.latency = latency
        self.bandwidth = bandwidth_bps
        self.rng = rng
        self.buffer_ttl = buffer_ttl
        self.spans = deployment.spans
        self.transport = TcpTransport(latency, spans=deployment.spans)
        self.server_links: Dict[str, TokenBucket] = {}
        self.clients: Dict[str, _Client] = {}
        self.lookup_messages = 0
        self.lookups = 0
        # Aggregate observability: client caches share the deployment's
        # registry/tracer; the harness adds distributions of its own.
        self._h_route_messages = deployment.metrics.histogram("lookup.route_messages")
        self._h_fetch_latency = deployment.metrics.histogram("fetch.latency_seconds")

    def client_for(self, user: str) -> _Client:
        client = self.clients.get(user)
        if client is None:
            node = self.deployment.node_names[
                self.rng.randrange(len(self.deployment.node_names))
            ]
            client = _Client(
                user,
                node,
                self.deployment.config.lookup_cache_ttl,
                registry=self.deployment.metrics,
                tracer=self.deployment.tracer,
                ring=self.deployment.ring,
            )
            self.clients[user] = client
        return client

    def _server_link(self, name: str) -> TokenBucket:
        bucket = self.server_links.get(name)
        if bucket is None:
            bucket = TokenBucket(self.bandwidth)
            self.server_links[name] = bucket
        return bucket

    # ------------------------------------------------------------------
    # warm-up (untimed) path

    def warm_access(self, user: str, key: int, ident: str, now: float) -> None:
        """Touch caches as a pre-window access would, without timing."""
        client = self.client_for(user)
        cached = client.buffer_cache.get(ident)
        if cached is not None and now - cached[0] < self.buffer_ttl and cached[1] == key:
            return
        client.buffer_cache[ident] = (now, key)
        owner = client.lookup_cache.probe(key, now)
        actual = self.deployment.ring.successor(key)
        if owner is None or owner != actual:
            lo, hi = self.deployment.ring.range_of(actual)
            client.lookup_cache.insert(lo, hi, actual, now)

    # ------------------------------------------------------------------
    # timed path

    def fetch_latency(self, user: str, key: int, nbytes: int, ident: str, now: float) -> float:
        """Latency of one block fetch issued by *user* at absolute time *now*.

        Returns 0.0 when the client's buffer cache absorbs the access.
        """
        client = self.client_for(user)
        cached = client.buffer_cache.get(ident)
        if cached is not None and now - cached[0] < self.buffer_ttl and cached[1] == key:
            return 0.0
        client.buffer_cache[ident] = (now, key)

        spans = self.spans
        root = spans.start_trace("fetch", now, user=user, key=key, bytes=nbytes) if spans else None

        ring = self.deployment.ring
        owner = ring.successor(key)
        lookup_latency = 0.0
        lookup_span = spans.start_span("lookup", now, root) if root else None
        cache_owner = client.lookup_cache.probe(key, now, span=lookup_span)
        self.lookups += 1
        if cache_owner is None:
            lookup_latency = self._routed_lookup(client.node, key, now, parent=lookup_span)
            self._cache_owner_range(client, owner, now)
        elif cache_owner != owner:
            # Stale entry: one wasted round trip, then a real lookup.
            lookup_latency = self.latency.rtt(client.node, cache_owner)
            if lookup_span:
                stale_span = spans.start_span(
                    "lookup.stale_probe", now, lookup_span, node=cache_owner
                )
                spans.finish(stale_span, now + lookup_latency)
            client.lookup_cache.invalidate(key, now, span=lookup_span)
            lookup_latency += self._routed_lookup(
                client.node, key, now + lookup_latency, parent=lookup_span
            )
            self._cache_owner_range(client, owner, now)
        if lookup_span:
            spans.finish(lookup_span, now + lookup_latency)

        # Download from a random replica (Section 9.3: D2 selects replicas
        # randomly; baselines do the same for a fair comparison).
        replicas = ring.successors(key, self.deployment.config.replica_count)
        server = replicas[self.rng.randrange(len(replicas))]
        download_start = now + lookup_latency
        arrival = download_start + self.latency.one_way(client.node, server)
        link = self._server_link(server)
        contention_done = link.reserve(arrival, nbytes)
        transfer_span = None
        if root:
            transfer_span = spans.start_span(
                "transfer", download_start, root, server=server, bytes=nbytes
            )
            request_span = spans.start_span(
                "net.request", download_start, transfer_span, frm=client.node, to=server
            )
            spans.finish(request_span, arrival)
        result = self.transport.transfer(
            server, client.node, nbytes, arrival,
            rate_bytes_per_sec=self.bandwidth, parent=transfer_span,
        )
        queued_finish = contention_done + self.latency.one_way(server, client.node)
        finish = max(arrival + result.duration, queued_finish)
        if transfer_span:
            if queued_finish > arrival + result.duration:
                queue_span = spans.start_span(
                    "queue.wait", arrival, transfer_span, server=server
                )
                spans.finish(queue_span, contention_done)
                response_span = spans.start_span(
                    "net.response", contention_done, transfer_span,
                    frm=server, to=client.node,
                )
                spans.finish(response_span, finish)
            spans.finish(transfer_span, finish)
        if root:
            spans.finish(root, finish)
        self._h_fetch_latency.observe(finish - now)
        return finish - now

    def _routed_lookup(self, source: str, key: int, now: float, parent=None) -> float:
        """Recursive lookup latency: hop legs plus the response leg."""
        spans = self.spans
        route_span = spans.start_span("dht.route", now, parent) if parent else None
        result = route(
            self.deployment.ring, source, key,
            tracer=spans if route_span else None, parent=route_span,
            now=now, leg_time=self.latency.one_way,
        )
        self.lookup_messages += result.messages
        self._h_route_messages.observe(result.messages)
        latency = self.latency.path_latency(result.path)
        response_leg = self.latency.one_way(result.path[-1], source)
        if route_span:
            route_span.annotate(hops=result.hops, owner=result.owner)
            response_span = spans.start_span(
                "dht.response", now + latency, route_span,
                frm=result.path[-1], to=source,
            )
            spans.finish(response_span, now + latency + response_leg)
            spans.finish(route_span, now + latency + response_leg)
        return latency + response_leg

    def _cache_owner_range(self, client: _Client, owner: str, now: float) -> None:
        lo, hi = self.deployment.ring.range_of(owner)
        client.lookup_cache.insert(lo, hi, owner, now)


def run_performance(
    trace: Trace,
    system: str,
    *,
    mode: str,
    n_nodes: int,
    bandwidth_kbps: float = 1500.0,
    windows: Optional[Sequence[Tuple[float, float]]] = None,
    n_windows: int = 4,
    window_seconds: float = 900.0,
    seed: int = 0,
    config: Optional[D2Config] = None,
) -> PerformanceResult:
    """Measure access-group latencies for one system/mode/scale."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    config = (config or D2Config(replica_count=4)).with_overrides(
        access_bandwidth_bps=kbps(bandwidth_kbps)
    )
    rng = random.Random(seed)
    deployment = build_deployment(system, n_nodes, config=config, seed=seed)
    deployment.load_initial_image(trace)
    deployment.stabilize()

    latency = LatencyModel.random(deployment.node_names, random.Random(seed + 7))
    harness = PerformanceHarness(
        deployment,
        latency,
        bandwidth_bps=config.access_bandwidth_bps,
        rng=random.Random(seed + 13),
    )

    if windows is None:
        windows = _choose_windows(trace, rng, n_windows, window_seconds)

    groups = segment_access_groups(trace)
    group_of: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for record in group.records:
            group_of[id(record)] = index
    in_window = [
        any(start <= g.start < end for start, end in windows) for g in groups
    ]

    timings: List[GroupTiming] = []
    group_finishes: Dict[int, List[float]] = defaultdict(list)
    group_elapsed: Dict[int, float] = defaultdict(float)

    for record in trace.records:
        deployment.advance_to(record.time)
        if record.op != READ:
            outcome = deployment.replay_record(record)
            continue
        outcome = deployment.replay_record(record)
        if outcome.skipped:
            continue
        index = group_of.get(id(record))
        timed = index is not None and in_window[index]
        user = record.user
        if not timed:
            for (key, nbytes), ident in zip(outcome.fetches, _idents(outcome)):
                harness.warm_access(user, key, ident, record.time)
            continue
        for (key, nbytes), ident in zip(outcome.fetches, _idents(outcome)):
            # In seq mode each fetch issues only after the previous one
            # finished, so its wall-clock start is staggered by the group's
            # elapsed latency; in para mode fetches issue together and
            # genuinely contend for server uplinks.
            issue = record.time + (group_elapsed[index] if mode == SEQ else 0.0)
            fetch_latency = harness.fetch_latency(user, key, nbytes, ident, issue)
            if fetch_latency > 0.0:
                group_finishes[index].append(fetch_latency)
                group_elapsed[index] += fetch_latency

    for index, latencies in group_finishes.items():
        group = groups[index]
        timings.append(
            GroupTiming(
                user=group.user,
                start=group.start,
                fetches=len(latencies),
                completion=_group_completion(latencies, mode, config),
            )
        )

    per_user_rates: Dict[str, float] = {}
    hits = misses = 0
    for user, client in harness.clients.items():
        stats = client.lookup_cache.stats
        hits += stats.hits
        misses += stats.misses
        if stats.lookups:
            per_user_rates[user] = stats.miss_rate

    return PerformanceResult(
        system=system,
        mode=mode,
        n_nodes=n_nodes,
        bandwidth_bps=config.access_bandwidth_bps,
        group_timings=timings,
        lookup_messages=harness.lookup_messages,
        lookups=harness.lookups,
        cache_hits=hits,
        cache_misses=misses,
        per_user_miss_rate=per_user_rates,
        metrics=deployment.observability_snapshot(),
        trace=deployment.spans.to_dicts() if deployment.spans else None,
    )


def _idents(outcome) -> List[str]:
    """Stable per-fetch identities for buffer caching.

    Keys alone are not enough: under traditional-file every block of a file
    shares the file's key, yet each block is still a distinct 8 KB unit the
    client must download once — so the block's position disambiguates.
    """
    return [f"k{key:x}#{i}" for i, (key, _) in enumerate(outcome.fetches)]


def _group_completion(latencies: List[float], mode: str, config: D2Config) -> float:
    """Completion time of an access group from its fetch latencies.

    ``seq`` sums them (each access waits for the previous); ``para`` issues
    them in waves bounded by the 15-transfer client cap — the simple wave
    model bounds the event-driven scheduler from above by less than one
    fetch time and keeps replay O(n).
    """
    if not latencies:
        return 0.0
    if mode == SEQ:
        return sum(latencies)
    cap = config.max_concurrent_transfers
    if len(latencies) <= cap:
        return max(latencies)
    total = 0.0
    for i in range(0, len(latencies), cap):
        total += max(latencies[i : i + cap])
    return total


def _choose_windows(
    trace: Trace, rng: random.Random, n_windows: int, window_seconds: float
) -> List[Tuple[float, float]]:
    """Random windows from working hours (9 AM – 6 PM), as in the paper."""
    if not trace.records:
        return []
    end_time = trace.records[-1].time
    candidates: List[float] = []
    day = 0
    while day * 86400.0 < end_time:
        base = day * 86400.0
        lo = base + 9 * 3600.0
        hi = base + 18 * 3600.0 - window_seconds
        if hi > lo:
            candidates.extend(rng.uniform(lo, hi) for _ in range(4))
        day += 1
    rng.shuffle(candidates)
    chosen = sorted(candidates[:n_windows])
    return [(start, start + window_seconds) for start in chosen]
