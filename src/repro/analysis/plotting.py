"""Terminal plotting helpers for the time-series figures.

Figures 16 and 17 are imbalance-over-time curves; the scatter figures
(14, 15) are latency clouds.  This module renders both as plain-text
charts so `python -m repro fig16` (and the benches) can show the *shape*
the paper plots, not just summary statistics.  No plotting dependencies —
everything is ASCII.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

_MARKS = "ox+*#@%&"


def ascii_timeseries(
    series: Dict[str, Sequence[Point]],
    *,
    width: int = 72,
    height: int = 16,
    x_label: str = "time",
    y_label: str = "value",
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a mark character; the legend maps marks to names.
    Overlapping points show the later series' mark.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return f"{title}\n(no data)"
    x_min = min(x for x, _ in points)
    x_max = max(x for x, _ in points)
    y_min = 0.0
    y_max = max(y for _, y in points)
    if y_max <= y_min:
        y_max = y_min + 1.0
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in values:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    for i, row in enumerate(grid):
        prefix = top_label.rjust(8) if i == 0 else (
            f"{y_min:.3g}".rjust(8) if i == height - 1 else " " * 8
        )
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_min:.3g}".ljust(width // 2)
        + f"{x_max:.3g} ({x_label})".rjust(width // 2)
    )
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{y_label}: {legend}")
    return "\n".join(lines)


def ascii_scatter(
    pairs: Sequence[Point],
    *,
    width: int = 56,
    height: int = 24,
    x_label: str = "baseline (s)",
    y_label: str = "d2 (s)",
    title: str = "",
    log: bool = True,
) -> str:
    """Render (x, y) latency pairs with the y=x diagonal (paper Figs 14-15).

    With ``log`` the axes are logarithmic, as in the paper; points at or
    below zero are clamped to the smallest positive value.
    """
    if not pairs:
        return f"{title}\n(no data)"
    positive = [max(x, 1e-4) for x, _ in pairs] + [max(y, 1e-4) for _, y in pairs]
    lo, hi = min(positive), max(positive)
    if hi <= lo:
        hi = lo * 10

    def scale(value: float, cells: int) -> int:
        value = max(value, 1e-4)
        if log:
            fraction = (math.log10(value) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            fraction = (value - lo) / (hi - lo)
        return min(cells - 1, max(0, int(fraction * (cells - 1))))

    grid = [[" "] * width for _ in range(height)]
    # Diagonal (x == y): where a group is equally fast in both systems.
    for col in range(width):
        row = int(col / (width - 1) * (height - 1))
        grid[height - 1 - row][col] = "."
    above = below = 0
    for x, y in pairs:
        col = scale(x, width)
        row = scale(y, height)
        grid[height - 1 - row][col] = "o"
        if y < x:
            above += 1
        elif y > x:
            below += 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   x: {x_label} [{lo:.3g}, {hi:.3g}]  y: {y_label}"
                 f"  ('.' = diagonal)")
    lines.append(
        f"   faster in D2 (below diagonal here): {above}; slower: {below}"
    )
    return "\n".join(lines)


def timeseries_from_samples(samples, value) -> List[Point]:
    """(time-in-days, metric) points from BalanceSample lists."""
    return [(s.time / 86400.0, value(s)) for s in samples]
