"""Million-user scale harness: routing and read hot paths at large N.

The figure/table experiments run at laptop scale (tens to hundreds of
nodes, eight users).  This module measures the engine itself at the
paper's deployed scale and beyond — 10^3..10^4 ring nodes, 10^5 cloned
users — and reports throughput plus peak memory so regressions in the
hot paths (finger-table routing, batched reads, streaming export) show
up as numbers in ``BENCH_scale.json`` rather than as anecdotes.

Two cell shapes:

* **routing** — a bare :class:`~repro.dht.ring.Ring` and a seeded uniform
  key stream; batched :func:`~repro.dht.routing.route_many` over the
  precomputed finger table is timed against the pre-finger-table
  reference implementation (:func:`~repro.dht.routing.route_cold`) on a
  subset, yielding the recorded speedup.
* **read** — a full :class:`~repro.core.system.Deployment` with a
  replicated initial image; a lazily cloned read stream
  (:func:`~repro.workloads.scale.scaled_read_stream`) is replayed in
  fixed windows through :meth:`Deployment.read_fetches_many` +
  ``route_many``, with per-window metrics rows and finished spans
  streamed to JSONL writers so peak RSS is flat in run length.

Determinism contract: every field of
:meth:`ScaleCellResult.deterministic_row` is a pure function of the cell
parameters (work checksums, hop/message/fetch totals) and is compared
byte-for-byte between serial and parallel runs in CI.  Wall-clock and
RSS live in separate *measured* fields that never enter that comparison.
Only ``time.perf_counter`` and ``resource.getrusage`` are read — both
sanctioned under the determinism sanitizer (``REPRO_DETSAN=1``).
"""

from __future__ import annotations

import hashlib
import resource
import time
from dataclasses import dataclass, field
from itertools import islice
from random import Random
from typing import Dict, Iterable, List, Tuple

from repro.dht.consistent_hashing import KEY_SPACE, random_node_ids
from repro.dht.ring import Ring
from repro.dht.routing import finger_table_for, route_cold, route_many
from repro.fs.namespace import NamespaceError
from repro.obs.stream import NullJsonlWriter, stream_spans
from repro.workloads.scale import ReadRequest, scaled_read_stream
from repro.workloads.trace import READ, Trace


def _rss_kb() -> int:
    """Process peak RSS in KB (``ru_maxrss`` is KB on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class ScaleCellResult:
    """One scale cell: a deterministic work fingerprint plus measurements.

    ``deterministic_row`` fields depend only on the parameter bundle;
    the measured fields (wall-clock, throughput, RSS) vary run to run
    and are excluded from the serial-vs-parallel identity check.
    """

    cell: str                 # "routing" | "read"
    n_nodes: int
    users: int                # distinct principals replayed (0 for routing)
    ops: int
    hops: int
    messages: int
    fetches: int              # DHT block fetches issued (0 for routing)
    skipped: int              # template reads dropped (missing paths)
    windows: int
    checksum: str             # sha256 over the owner sequence, first 16 hex
    streamed_rows: int        # metrics rows streamed to JSONL
    streamed_spans: int       # spans streamed to JSONL
    streamed_health: int = 0  # health series/alert rows streamed to JSONL
    # --- measured (excluded from the determinism contract) ---
    wall_seconds: float = 0.0
    ops_per_sec: float = 0.0
    peak_rss_kb: int = 0
    rss_curve_kb: List[int] = field(default_factory=list)
    cold_wall_seconds: float = 0.0
    cold_ops: int = 0
    speedup_vs_cold: float = 0.0

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "n_nodes": self.n_nodes,
            "users": self.users,
            "ops": self.ops,
            "hops": self.hops,
            "messages": self.messages,
            "fetches": self.fetches,
            "skipped": self.skipped,
            "windows": self.windows,
            "checksum": self.checksum,
            "streamed_rows": self.streamed_rows,
            "streamed_spans": self.streamed_spans,
            "streamed_health": self.streamed_health,
        }

    def row(self) -> Dict[str, object]:
        full = self.deterministic_row()
        full.update(
            wall_seconds=round(self.wall_seconds, 4),
            ops_per_sec=round(self.ops_per_sec, 1),
            peak_rss_kb=self.peak_rss_kb,
            rss_curve_kb=list(self.rss_curve_kb),
            cold_wall_seconds=round(self.cold_wall_seconds, 4),
            cold_ops=self.cold_ops,
            speedup_vs_cold=round(self.speedup_vs_cold, 2),
        )
        return full

    @property
    def rss_growth_kb(self) -> int:
        """Peak-RSS growth across the second half of the replay windows.

        Streaming export makes peak memory independent of run length, so
        once the working set is warm (first half of the windows) the
        high-water mark should stop moving.  Flat = 0.
        """
        if len(self.rss_curve_kb) < 2:
            return 0
        half = len(self.rss_curve_kb) // 2
        tail = self.rss_curve_kb[half:]
        return tail[-1] - tail[0]


def run_scale_routing(
    *,
    n_nodes: int,
    ops: int,
    batch: int = 4096,
    cold_ops: int = 2000,
    seed: int = 11,
) -> ScaleCellResult:
    """Time batched finger-table routing on an *n_nodes* ring.

    A seeded uniform key stream is routed in batches of *batch* via
    :func:`route_many`; the first ``min(cold_ops, ops)`` keys are then
    re-routed with :func:`route_cold` (the pre-finger-table reference
    path, which re-derives every finger by bisect at every hop) to
    compute ``speedup_vs_cold``.  Both passes produce identical paths —
    the equivalence is asserted in tests, not here — so the checksum
    covers the batched pass only.
    """
    if ops <= 0:
        raise ValueError(f"ops must be positive, got {ops}")
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    rng = Random(seed)
    ring = Ring()
    for index, node_id in enumerate(random_node_ids(n_nodes, rng)):
        ring.join(f"node{index:05d}", node_id)
    fingers = finger_table_for(ring)
    names = fingers.names
    key_rng = Random(seed + 1)
    keys = [key_rng.randrange(KEY_SPACE) for _ in range(ops)]
    sources = [names[key_rng.randrange(len(names))] for _ in range(0, ops, batch)]

    digest = hashlib.sha256()
    hops = 0
    messages = 0
    started = time.perf_counter()
    for window, lo in enumerate(range(0, ops, batch)):
        results = route_many(
            ring, sources[window], keys[lo:lo + batch], fingers=fingers
        )
        for result in results:
            hops += result.hops
            messages += result.messages
            digest.update(result.owner.encode("ascii"))
    wall = time.perf_counter() - started

    cold_n = min(cold_ops, ops)
    cold_wall = 0.0
    if cold_n > 0:
        cold_source = sources[0]
        cold_started = time.perf_counter()
        for key in keys[:cold_n]:
            route_cold(ring, cold_source, key)
        cold_wall = time.perf_counter() - cold_started

    rate = ops / wall if wall > 0 else 0.0
    cold_rate = cold_n / cold_wall if cold_wall > 0 else 0.0
    return ScaleCellResult(
        cell="routing",
        n_nodes=n_nodes,
        users=0,
        ops=ops,
        hops=hops,
        messages=messages,
        fetches=0,
        skipped=0,
        windows=-(-ops // batch),
        checksum=digest.hexdigest()[:16],
        streamed_rows=0,
        streamed_spans=0,
        wall_seconds=wall,
        ops_per_sec=rate,
        peak_rss_kb=_rss_kb(),
        cold_wall_seconds=cold_wall,
        cold_ops=cold_n,
        speedup_vs_cold=rate / cold_rate if cold_rate > 0 else 0.0,
    )


def _read_template(deployment, trace: Trace) -> Tuple[List[ReadRequest], int]:
    """READ records of *trace* whose paths resolve in the loaded image.

    The scale replay is read-only over the initial image, so reads of
    files created mid-trace (or of directories) are skipped — counted,
    deterministically, in the second return value.
    """
    resolve = deployment.fs.namespace.resolve_file
    template: List[ReadRequest] = []
    skipped = 0
    for record in trace.records:
        if record.op != READ:
            continue
        try:
            resolve(record.path)
        except NamespaceError:
            skipped += 1
            continue
        template.append((record.user, record.path, record.offset, record.length))
    return template, skipped


def _window_chunks(
    stream: Iterable[ReadRequest], window: int
) -> Iterable[List[ReadRequest]]:
    iterator = iter(stream)
    while True:
        chunk = list(islice(iterator, window))
        if not chunk:
            return
        yield chunk


def run_scale_read(
    deployment,
    trace: Trace,
    *,
    copies: int,
    users: int,
    ops_per_user: int = 10,
    window: int = 8192,
    seed: int = 11,
    span_writer=None,
    metrics_writer=None,
    health_writer=None,
) -> ScaleCellResult:
    """Replay a cloned read stream through the batched read/routing path.

    *deployment* must already hold the (replicated) initial image of
    *trace*; *copies* is the number of extra ``/replicaN`` images it
    contains.  The base users are cloned up to at least *users* distinct
    principals, each replaying *ops_per_user* reads.  Work proceeds in
    fixed *window*-sized batches: each window resolves its requests with
    :meth:`Deployment.read_fetches_many`, routes every request's first
    block key with :func:`route_many` from a window-seeded source node,
    streams one metrics row to *metrics_writer* and any finished spans
    to *span_writer*, and advances simulated time by one second — the
    per-window ticks are pre-scheduled in one
    :meth:`Simulator.schedule_batch` call and sample the RSS curve.

    When the deployment carries a health monitor
    (:meth:`Deployment.enable_health_monitoring`, one-sim-second windows
    line up with the replay cadence), its closed series/alert rows are
    drained to *health_writer* every window, so health export is flat in
    run length exactly like spans and metrics.
    """
    if ops_per_user <= 0:
        raise ValueError(f"ops_per_user must be positive, got {ops_per_user}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    span_writer = span_writer if span_writer is not None else NullJsonlWriter()
    metrics_writer = (
        metrics_writer if metrics_writer is not None else NullJsonlWriter()
    )
    health_writer = (
        health_writer if health_writer is not None else NullJsonlWriter()
    )
    template, skipped = _read_template(deployment, trace)
    base_users = max(1, len(trace.users()))
    clones = max(1, -(-users // base_users))
    per_clone = min(ops_per_user, len(template)) if template else 0
    total_ops = clones * per_clone
    n_windows = -(-total_ops // window) if total_ops else 0

    # Pre-schedule one tick per window in a single batch; each tick
    # samples the RSS high-water mark from *inside* the event loop.
    rss_curve: List[int] = []
    deployment.sim.schedule_batch(
        (float(index + 1), lambda: rss_curve.append(_rss_kb()))
        for index in range(n_windows)
    )

    ring = deployment.ring
    fingers = finger_table_for(ring)
    names = fingers.names
    source_rng = Random(seed + 2)
    stream = scaled_read_stream(
        template, clones=clones, ops_per_clone=per_clone, copies=copies
    ) if template else iter(())

    digest = hashlib.sha256()
    ops = hops = messages = fetches = 0
    spans_streamed = 0
    base_time = deployment.sim.now
    started = time.perf_counter()
    for index, chunk in enumerate(_window_chunks(stream, window)):
        requests = [(path, offset, length) for _user, path, offset, length in chunk]
        fetch_lists = deployment.read_fetches_many(requests)
        source = names[source_rng.randrange(len(names))]
        first_keys = [fetch[0][0] for fetch in fetch_lists if fetch]
        results = route_many(ring, source, first_keys, fingers=fingers)
        for result in results:
            hops += result.hops
            messages += result.messages
            digest.update(result.owner.encode("ascii"))
        ops += len(chunk)
        fetches += sum(len(fetch) for fetch in fetch_lists)
        deployment.advance_to(base_time + float(index + 1))
        spans_streamed += stream_spans(deployment.spans, span_writer)
        if deployment.health is not None:
            for health_row in deployment.health.drain():
                health_writer.write(health_row)
        metrics_writer.write(
            {
                "window": index,
                "ops": len(chunk),
                "fetches": fetches,
                "hops": hops,
                "messages": messages,
                "sim_now": deployment.sim.now,
                "rss_kb": rss_curve[-1] if rss_curve else _rss_kb(),
            }
        )
    wall = time.perf_counter() - started
    if deployment.health is not None:
        for health_row in deployment.health.finish():
            health_writer.write(health_row)

    return ScaleCellResult(
        cell="read",
        n_nodes=len(ring),
        users=clones * base_users,
        ops=ops,
        hops=hops,
        messages=messages,
        fetches=fetches,
        skipped=skipped,
        windows=n_windows,
        checksum=digest.hexdigest()[:16],
        streamed_rows=metrics_writer.rows,
        streamed_spans=spans_streamed,
        streamed_health=health_writer.rows,
        wall_seconds=wall,
        ops_per_sec=ops / wall if wall > 0 else 0.0,
        peak_rss_kb=_rss_kb(),
        rss_curve_kb=rss_curve,
    )
