"""Task availability under node failures (Section 8; Figures 7, 8, Table 2).

A *task* (Section 8.1) is a burst of same-user accesses; it **fails** if any
block it needs has no live replica at access time.  The experiment replays
the Harvard-like workload through one of the comparison systems while nodes
fail and recover according to a failure trace, and reports the fraction of
failed tasks.

Replica-availability models
---------------------------
Two models answer "is this key readable now?":

**Static ring (the paper's first-order model).**  Membership does not
shrink on failure — transient PlanetLab-style failures keep data on disk,
so a recovered node serves again immediately.  A key is available when

* any of its ``r`` successors is up, **or**
* (with regeneration enabled) the whole group has been down long enough
  that re-replication onto the next live successors completed.  The
  regeneration delay is the failed nodes' data volume divided by the
  750 kbps per-node migration cap — the same first-order model the paper's
  simulator applies; the paper notes regeneration only *raises* per-group
  availability above the no-regeneration baseline.

**Dynamic ring (simulated repair).**  With ``dynamic=True`` the failure
trace drives real membership change through
:class:`repro.dht.membership.MembershipService`: a down transition crashes
the node (ring leave + physical copies destroyed) and an up transition
rejoins it empty.  Availability is then read straight off the
:class:`repro.store.repair.ReplicaTracker` — a key is available iff a
live copy exists *right now* — so repair latency, bandwidth backlog, and
genuine data loss replace the closed-form delay.

Dependencies counted per task are file blocks (data + inode); directory
metadata is client-cached (see :mod:`repro.core.system`).  D2 keeps its
active load balancing running during the replay, so the availability cost
of in-flight pointers and moves is captured.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import D2Config
from repro.core.system import Deployment, build_deployment
from repro.sim.failures import FailureTrace
from repro.workloads.tasks import segment_tasks
from repro.workloads.trace import READ, Trace, WRITE


@dataclass
class AvailabilityResult:
    """Outcome of one availability trial."""

    system: str
    inter: float
    trial: int
    tasks: int
    failed_tasks: int
    per_user_tasks: Dict[str, int]
    per_user_failed: Dict[str, int]
    mean_blocks_per_task: float
    mean_files_per_task: float
    mean_nodes_per_task: float
    skipped_records: int = 0

    @property
    def unavailability(self) -> float:
        return self.failed_tasks / self.tasks if self.tasks else 0.0

    def per_user_unavailability(self) -> Dict[str, float]:
        """Figure 8's per-user series (0.0 entries included)."""
        return {
            user: self.per_user_failed.get(user, 0) / count
            for user, count in self.per_user_tasks.items()
            if count > 0
        }

    def ranked_user_unavailability(self) -> List[Tuple[str, float]]:
        series = self.per_user_unavailability()
        return sorted(series.items(), key=lambda item: item[1], reverse=True)


class ReplicaAvailability:
    """Answers "is this key readable now?" against ring + failure state.

    With *repair* (a :class:`repro.store.repair.RepairScheduler`), the
    check consults actually-simulated replica state instead of the
    closed-form regeneration model: a key is available iff its tracker
    records at least one live physical copy (copies on crashed nodes are
    destroyed at crash time, so the tracker only ever names live holders).
    """

    def __init__(
        self,
        deployment: Deployment,
        failures: FailureTrace,
        *,
        regeneration: bool = True,
        migration_bandwidth_bps: float = 93750.0,  # 750 kbps
        regeneration_delay_override: Optional[float] = None,
        repair=None,
    ) -> None:
        self._deployment = deployment
        self._failures = failures
        self._regeneration = regeneration
        self._bandwidth = migration_bandwidth_bps
        self._delay_override = regeneration_delay_override
        self._repair = repair
        self.checks = 0
        self.misses = 0

    def key_available(self, key: int, now: float) -> bool:
        self.checks += 1
        if self._repair is not None:
            if self._repair.tracker.live_count(key) > 0:
                return True
            self.misses += 1
            return False
        ring = self._deployment.ring
        replicas = self._deployment.config.replica_count
        group = ring.successors(key, replicas)
        newest_down = None
        for name in group:
            since = self._failures.down_since(name, now)
            if since is None:
                return True
            newest_down = since if newest_down is None else max(newest_down, since)
        if self._regeneration and newest_down is not None:
            # The group went fully dark at `newest_down`; regeneration onto
            # the next live successors starts then and completes after the
            # lost volume drains through the migration cap.
            if now - newest_down >= self._regeneration_delay():
                extended = ring.successors(key, replicas + 2)[replicas:]
                for name in extended:
                    if self._failures.is_up(name, now):
                        return True
        self.misses += 1
        return False

    def _regeneration_delay(self) -> float:
        if self._delay_override is not None:
            return self._delay_override
        directory = self._deployment.store.directory
        n = max(1, len(self._deployment.ring))
        replicas = self._deployment.config.replica_count
        per_node_bytes = directory.total_bytes * replicas / n
        if self._bandwidth <= 0:
            return float("inf")
        return per_node_bytes / self._bandwidth


def matching_failure_trace(
    n_nodes: int,
    rng,
    config=None,
) -> FailureTrace:
    """Failure trace whose node names match :class:`Deployment`'s naming."""
    from repro.sim.failures import FailureTraceConfig

    names = [f"node{i:04d}" for i in range(n_nodes)]
    return FailureTrace.generate(names, rng, config or FailureTraceConfig())


@dataclass
class ReplayLog:
    """Per-record outcomes of one full availability replay.

    The expensive part of a trial — replaying the trace through a system
    under a failure trace — does not depend on the task threshold *inter*,
    so one log serves every segmentation (Figure 7 sweeps four values).
    """

    system: str
    trial: int
    ok: Dict[int, bool]           # id(record) -> all keys available
    blocks: Dict[int, int]        # id(record) -> block count
    owners: Dict[int, List[str]]  # id(record) -> primary owners touched
    skipped_records: int


def run_availability_replay(
    trace: Trace,
    failures: FailureTrace,
    system: str,
    *,
    trial: int = 0,
    config: Optional[D2Config] = None,
    regeneration: bool = True,
    regeneration_delay: Optional[float] = None,
    stabilize_rounds: int = 300,
    dynamic: bool = False,
) -> ReplayLog:
    """Replay *trace* through *system* under *failures* once.

    ``trial`` seeds node IDs (the paper runs 5 trials with random IDs).
    With ``dynamic=True`` the failure trace is replayed as real membership
    change (crash/rejoin protocols with simulated repair) instead of the
    static up/down overlay.
    """
    config = config or D2Config()
    deployment = build_deployment(
        system, len(failures.nodes), config=config, seed=1000 + trial
    )
    deployment.load_initial_image(trace)
    deployment.stabilize(max_rounds=stabilize_rounds)
    deployment.store.ledger = type(deployment.store.ledger)()  # reset accounting
    deployment.start_periodic_balancing()

    repair = None
    if dynamic:
        membership = deployment.enable_dynamic_membership()
        membership.schedule_failure_trace(failures)
        repair = deployment.repair

    checker = ReplicaAvailability(
        deployment,
        failures,
        regeneration=regeneration,
        migration_bandwidth_bps=config.migration_bandwidth_bps,
        regeneration_delay_override=regeneration_delay,
        repair=repair,
    )

    log = ReplayLog(system=system, trial=trial, ok={}, blocks={}, owners={}, skipped_records=0)
    for record in trace.records:
        deployment.advance_to(record.time)
        outcome = deployment.replay_record(record)
        if outcome.skipped:
            log.skipped_records += 1
            continue
        if record.op not in (READ, WRITE):
            continue
        ok = True
        owners = []
        for key in outcome.keys:
            owners.append(deployment.ring.successor(key))
            if ok and not checker.key_available(key, record.time):
                ok = False
        log.ok[id(record)] = ok
        log.blocks[id(record)] = outcome.blocks
        log.owners[id(record)] = owners
    return log


def evaluate_tasks(trace: Trace, log: ReplayLog, inter: float) -> AvailabilityResult:
    """Aggregate a replay log into task-level availability at one *inter*."""
    tasks = segment_tasks(trace, inter)
    failed = [False] * len(tasks)
    blocks_per_task = [0] * len(tasks)
    file_sets: List[set] = [set() for _ in tasks]
    node_sets: List[set] = [set() for _ in tasks]
    for index, task in enumerate(tasks):
        for record in task.records:
            rid = id(record)
            if rid not in log.ok:
                continue
            blocks_per_task[index] += log.blocks[rid]
            file_sets[index].add(record.path)
            node_sets[index].update(log.owners[rid])
            if not log.ok[rid]:
                failed[index] = True

    per_user_tasks: Dict[str, int] = defaultdict(int)
    per_user_failed: Dict[str, int] = defaultdict(int)
    for task, did_fail in zip(tasks, failed):
        per_user_tasks[task.user] += 1
        if did_fail:
            per_user_failed[task.user] += 1

    return AvailabilityResult(
        system=log.system,
        inter=inter,
        trial=log.trial,
        tasks=len(tasks),
        failed_tasks=sum(failed),
        per_user_tasks=dict(per_user_tasks),
        per_user_failed=dict(per_user_failed),
        mean_blocks_per_task=_mean(blocks_per_task),
        mean_files_per_task=_mean([len(s) for s in file_sets]),
        mean_nodes_per_task=_mean([len(s) for s in node_sets]),
        skipped_records=log.skipped_records,
    )


def run_availability_trial(
    trace: Trace,
    failures: FailureTrace,
    system: str,
    inter: float,
    *,
    trial: int = 0,
    config: Optional[D2Config] = None,
    regeneration: bool = True,
    regeneration_delay: Optional[float] = None,
    stabilize_rounds: int = 300,
) -> AvailabilityResult:
    """One-shot convenience: replay then evaluate at a single *inter*."""
    log = run_availability_replay(
        trace,
        failures,
        system,
        trial=trial,
        config=config,
        regeneration=regeneration,
        regeneration_delay=regeneration_delay,
        stabilize_rounds=stabilize_rounds,
    )
    return evaluate_tasks(trace, log, inter)


def task_spread_statistics(
    trace: Trace,
    systems: Sequence[str],
    inters: Sequence[float],
    *,
    n_nodes: int,
    config: Optional[D2Config] = None,
    seed: int = 0,
) -> List[dict]:
    """Table 2: mean objects and mean nodes per task for each system/inter.

    Runs the replay once per system (no failures needed) and segments the
    same access stream at each *inter* threshold.
    """
    config = config or D2Config()
    rows: List[dict] = []
    spreads: Dict[str, Dict[float, Tuple[float, float, float]]] = {}
    for system in systems:
        deployment = build_deployment(system, n_nodes, config=config, seed=seed)
        deployment.load_initial_image(trace)
        deployment.stabilize()
        deployment.start_periodic_balancing()
        per_inter: Dict[float, Tuple[float, float, float]] = {}
        # Replay once, recording per-record key owners; segment afterwards.
        record_keys: Dict[int, Tuple[int, str, List[str]]] = {}
        for record in trace.records:
            deployment.advance_to(record.time)
            outcome = deployment.replay_record(record)
            if outcome.skipped:
                continue
            owners = [deployment.ring.successor(key) for key in outcome.keys]
            record_keys[id(record)] = (outcome.blocks, record.path, owners)
        for inter in inters:
            tasks = segment_tasks(trace, inter)
            blocks: List[int] = []
            files: List[int] = []
            nodes: List[int] = []
            for task in tasks:
                b = 0
                fset = set()
                nset = set()
                for record in task.records:
                    info = record_keys.get(id(record))
                    if info is None:
                        continue
                    b += info[0]
                    fset.add(info[1])
                    nset.update(info[2])
                blocks.append(b)
                files.append(len(fset))
                nodes.append(len(nset))
            per_inter[inter] = (_mean(blocks), _mean(files), _mean(nodes))
        spreads[system] = per_inter
    for inter in inters:
        row = {"inter": inter}
        for system in systems:
            b, f, n = spreads[system][inter]
            row[f"{system}_blocks"] = b
            row[f"{system}_files"] = f
            row[f"{system}_nodes"] = n
        rows.append(row)
    return rows


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
