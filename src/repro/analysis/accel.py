"""Acceleration-mode harness: lookup tiers measured under workload shift.

One cell = one (acceleration mode × shift scenario) pair replayed over an
identical deployment and request stream: a D2 deployment serves a Zipf
read stream from ``/pre`` files, the workload shifts
(:mod:`repro.workloads.shift` — flash crowd, task-set migration, or
membership churn), and the stream continues over the post-shift regime.
The row records per-phase *useful* hit ratios (a cache hit that named the
real owner — stale probes don't count), total lookup messages, and the
final adaptive state, so the matrix shows directly whether a mode's
hit ratio *recovers* after the shift and what the traffic bill was.

Determinism contract: like the scale cells, every field of
:meth:`AccelCellResult.deterministic_row` is a pure function of the
parameter bundle and is compared byte-for-byte between serial and
``--jobs N`` runs in CI.  Wall-clock and RSS live in measured fields
outside that comparison; only ``time.perf_counter`` and
``resource.getrusage`` are read.
"""

from __future__ import annotations

import hashlib
import resource
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional

from repro.core.accel import ACCEL_MODES
from repro.core.system import build_deployment
from repro.fs.blocks import BLOCK_SIZE
from repro.workloads.shift import SCENARIOS, shift_stream

#: Nodes crashed (and replaced) at the boundary of the churn scenario.
CHURN_CRASHES = 4

#: Sim-time advance cadence (ops) — lets repair/stabilization progress.
ADVANCE_EVERY = 256


def _rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class AccelCellResult:
    """One accel cell: deterministic work fingerprint plus measurements."""

    mode: str
    scenario: str
    n_nodes: int
    clients: int
    lookups: int
    messages: int            # total lookup messages billed (Figure-9 rules)
    messages_post: int       # messages billed after the shift
    cache_hits: int          # correct cached-range hits (0-message lookups)
    stale_faults: int        # cache hits that named a stale owner
    learned_hits: int
    learned_mispredicts: int
    routed: int              # lookups resolved by finger routing
    hit_pre: float           # useful hit ratio, second half of the pre phase
    hit_post: float          # useful hit ratio, first quarter after the shift
    hit_recovered: float     # useful hit ratio, last quarter of the run
    capacity_end: Optional[int]   # summed cache capacity (None = unbounded)
    ttl_end: float           # mean cache TTL at the end of the run
    retrains: int
    membership_evictions: int
    checksum: str            # sha256 over the owner sequence, first 16 hex
    # --- measured (excluded from the determinism contract) ---
    wall_seconds: float = 0.0
    ops_per_sec: float = 0.0
    peak_rss_kb: int = 0
    #: Deployment observability snapshot (counters/gauges/histograms) for
    #: the runner report; never part of a row.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Exported span dicts (``accel.lookup`` roots carry a ``phase``
    #: attribute); written by the runner as ``runner_accel.trace<k>.jsonl``
    #: for ``python -m repro.obs trace --phase``.  Never part of a row.
    trace: Optional[List[Dict[str, object]]] = None

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "cell": "accel",
            "mode": self.mode,
            "scenario": self.scenario,
            "n_nodes": self.n_nodes,
            "clients": self.clients,
            "lookups": self.lookups,
            "messages": self.messages,
            "messages_post": self.messages_post,
            "cache_hits": self.cache_hits,
            "stale_faults": self.stale_faults,
            "learned_hits": self.learned_hits,
            "learned_mispredicts": self.learned_mispredicts,
            "routed": self.routed,
            "hit_pre": round(self.hit_pre, 4),
            "hit_post": round(self.hit_post, 4),
            "hit_recovered": round(self.hit_recovered, 4),
            "capacity_end": self.capacity_end,
            "ttl_end": round(self.ttl_end, 1),
            "retrains": self.retrains,
            "membership_evictions": self.membership_evictions,
            "checksum": self.checksum,
        }

    def row(self) -> Dict[str, object]:
        full = self.deterministic_row()
        full.update(
            wall_seconds=round(self.wall_seconds, 4),
            ops_per_sec=round(self.ops_per_sec, 1),
            peak_rss_kb=self.peak_rss_kb,
        )
        return full


def _build_file_keys(deployment, prefix: str, n_dirs: int,
                     files_per_dir: int) -> List[int]:
    """Create ``/prefix/dirNN/fileM`` files; returns one inode key each.

    One key per file keeps the Zipf ranks aligned with whole files, and
    D2's locality keys make each directory its own arc — so a working set
    of many directories spans many cacheable ranges.
    """
    keys: List[int] = []
    for d in range(n_dirs):
        directory = f"/{prefix}/dir{d:03d}"
        deployment.apply_fs_ops(deployment.fs.makedirs(directory))
        for f in range(files_per_dir):
            path = f"{directory}/file{f}"
            deployment.apply_fs_ops(
                deployment.fs.create(path, size=2 * BLOCK_SIZE)
            )
            keys.append(deployment.read_fetches(path)[0][0])
    return keys


def run_accel_cell(params: Dict[str, Any]) -> AccelCellResult:
    """Replay one (mode × scenario) cell; see the module docstring."""
    mode = params["mode"]
    scenario = params["scenario"]
    if mode not in ACCEL_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}")
    n_nodes = params["n_nodes"]
    n_clients = params["clients"]
    pre_ops = params["pre_ops"]
    post_ops = params["post_ops"]
    seed = params["seed"]
    n_dirs = params.get("n_dirs", 40)
    files_per_dir = params.get("files_per_dir", 2)
    static_capacity = params.get("static_capacity", 12)
    sizer_window = params.get("sizer_window", 64)

    deployment = build_deployment("d2", n_nodes, seed=seed)
    deployment.bootstrap_volume()
    pre_keys = _build_file_keys(deployment, "pre", n_dirs, files_per_dir)
    post_keys = _build_file_keys(deployment, "post", n_dirs, files_per_dir)
    deployment.stabilize()
    if scenario == "churn":
        deployment.enable_dynamic_membership(min_nodes=max(2, n_nodes // 2))

    accel = deployment.enable_acceleration(
        mode,
        static_capacity=static_capacity if mode in ("cache", "cache+learned")
        else None,
        min_capacity=static_capacity,
        sizer_window=sizer_window,
        learned_min_observations=params.get("learned_min_observations", 64),
        # Size the model to the ring: ~4 nodes per segment keeps every
        # segment densely sampled at laptop scale (the 256-segment default
        # is tuned for 10^4-node rings), and a probe chain longer than
        # half a routed path costs more than it saves.
        learned_segments=params.get("learned_segments", max(8, n_nodes // 4)),
        learned_max_probe=params.get("learned_max_probe", 3),
    )

    rng = Random(seed + 3)
    clients = [f"client{i:02d}" for i in range(n_clients)]
    node_names = deployment.node_names
    homes = {c: node_names[rng.randrange(len(node_names))] for c in clients}
    home_positions = {
        c: deployment.ring.position_of(node) for c, node in homes.items()
    }

    requests = list(shift_stream(
        scenario, pre_keys, post_keys, clients,
        pre_ops=pre_ops, post_ops=post_ops, seed=seed + 4,
    ))

    total_ops = pre_ops + post_ops
    # Phase windows for the recovery story: warm half of pre, the quarter
    # right after the shift, and the final quarter of the run.  The same
    # boundaries tag every lookup span with pre/shift/post for the trace
    # CLI's --phase attribution.
    pre_window = range(pre_ops // 2, pre_ops)
    post_quarter = max(1, post_ops // 4)
    early_window = range(pre_ops, pre_ops + post_quarter)
    late_window = range(total_ops - post_quarter, total_ops)
    shift_end = pre_ops + post_quarter
    windows = {"pre": pre_window, "post": early_window, "recovered": late_window}
    window_hits = {name: 0 for name in windows}
    window_ops = {name: 0 for name in windows}

    digest = hashlib.sha256()
    messages = messages_post = 0
    tier_counts = {"cache": 0, "learned": 0, "route": 0}
    stale_faults = 0
    base_time = deployment.sim.now
    started = time.perf_counter()
    for index, request in enumerate(requests):
        now = base_time + request.now
        if scenario == "churn" and index == pre_ops:
            _churn_shift(deployment, pre_keys, now, seed)
            # Crashed home nodes re-home to the old position's new owner.
            for client in clients:
                if homes[client] not in deployment.ring:
                    homes[client] = deployment.ring.successor(
                        home_positions[client]
                    )
        if index < pre_ops:
            phase = "pre"
        elif index < shift_end:
            phase = "shift"
        else:
            phase = "post"
        outcome = accel.lookup(request.client, homes[request.client],
                               request.key, now=now, phase=phase)
        digest.update(outcome.owner.encode("ascii"))
        messages += outcome.messages
        if index >= pre_ops:
            messages_post += outcome.messages
        tier_counts[outcome.tier] += 1
        if outcome.stale:
            stale_faults += 1
        useful = 1 if outcome.tier == "cache" else 0
        for name, window in windows.items():
            if index in window:
                window_ops[name] += 1
                window_hits[name] += useful
        if index % ADVANCE_EVERY == 0:
            deployment.advance_to(now)
    wall = time.perf_counter() - started

    capacities = [
        cache.capacity for cache in accel.caches.values()
        if cache.capacity is not None
    ]
    all_caches = list(accel.caches.values())
    unbounded = any(cache.capacity is None for cache in all_caches)
    learned_stats = accel.learned.stats() if accel.learned else {}
    membership_evictions = sum(
        cache.stats.membership_evictions for cache in all_caches
    )

    def ratio(name: str) -> float:
        return window_hits[name] / window_ops[name] if window_ops[name] else 0.0

    return AccelCellResult(
        mode=mode,
        scenario=scenario,
        n_nodes=n_nodes,
        clients=n_clients,
        lookups=total_ops,
        messages=messages,
        messages_post=messages_post,
        cache_hits=tier_counts["cache"],
        stale_faults=stale_faults,
        learned_hits=tier_counts["learned"],
        learned_mispredicts=int(learned_stats.get("mispredicts", 0)),
        routed=tier_counts["route"],
        hit_pre=ratio("pre"),
        hit_post=ratio("post"),
        hit_recovered=ratio("recovered"),
        capacity_end=None if (unbounded or not all_caches) else sum(capacities),
        ttl_end=(sum(c.ttl for c in all_caches) / len(all_caches))
        if all_caches else 0.0,
        retrains=int(learned_stats.get("retrains", 0)),
        membership_evictions=membership_evictions,
        checksum=digest.hexdigest()[:16],
        wall_seconds=wall,
        ops_per_sec=total_ops / wall if wall > 0 else 0.0,
        peak_rss_kb=_rss_kb(),
        metrics=deployment.observability_snapshot(),
        trace=deployment.spans.to_dicts() if deployment.spans else None,
    )


def _churn_shift(deployment, pre_keys: List[int], now: float,
                 seed: int) -> None:
    """The churn scenario's boundary event: crash hot owners, add joiners.

    Crashes the live owners of the most popular pre keys (the entries
    most likely to be cached fleet-wide) and joins replacement nodes, so
    post-shift probes hit both dead-node entries (membership eviction
    path) and moved-arc entries (stale-fault path).
    """
    membership = deployment.membership
    crashed = 0
    for key in pre_keys:
        if crashed >= CHURN_CRASHES:
            break
        owner = deployment.ring.successor(key)
        if membership.crash(owner):
            crashed += 1
    for index in range(crashed):
        membership.join(f"late{seed:03d}-{index:02d}")
    deployment.advance_to(now)
