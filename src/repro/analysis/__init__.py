"""Evaluation analyses: locality, availability, performance, balance."""

from repro.analysis.availability import (
    AvailabilityResult,
    run_availability_replay,
    run_availability_trial,
)
from repro.analysis.balance import run_harvard_balance, run_webcache_balance
from repro.analysis.locality import analyze_locality
from repro.analysis.performance import compare, run_performance

__all__ = [
    "AvailabilityResult",
    "run_availability_replay",
    "run_availability_trial",
    "run_harvard_balance",
    "run_webcache_balance",
    "analyze_locality",
    "compare",
    "run_performance",
]
