"""Figure 3: data locality of candidate placements (Section 4.1).

For each workload we measure the mean number of *nodes* a user must touch
per active hour under three placements, each storing 250 MB (= 32,000
8 KB blocks) per node:

* **traditional** — every block assigned to a uniformly random node
  (consistent hashing with per-block keys);
* **ordered** — blocks sorted by name (full path + block number for file
  traces, block number for HP, reversed-domain URL for Web) and chunked
  into consecutive nodes — the idealization D2's key encoding realizes;
* **lower-bound** — ⌈blocks-the-user-touched / blocks-per-node⌉, the best
  any placement could possibly do for that user-hour (possibly
  unachievable, since two users' working sets may conflict).

The paper reports the result normalized against **traditional**; the
headline is that **ordered** is ~10x better than traditional and within an
order of magnitude of the bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.dht.consistent_hashing import hashed_key
from repro.fs.blocks import BLOCK_SIZE
from repro.workloads.trace import CREATE, READ, RENAME, Trace, WRITE

NODE_CAPACITY_BYTES = 250 * 1024 * 1024
BLOCKS_PER_NODE = NODE_CAPACITY_BYTES // BLOCK_SIZE  # 32,000

BlockName = Tuple[str, int]


def trace_block_accesses(trace: Trace) -> Dict[str, List[Tuple[float, BlockName]]]:
    """Per-user timestamped block-name accesses implied by a trace.

    Block names are ``(path, block_number)``; ordering them
    lexicographically orders blocks by full path then position — the
    paper's *ordered* scenario.  File sizes are tracked through creates and
    extending writes so reads of "the whole file" expand correctly.
    """
    sizes: Dict[str, int] = dict(trace.initial_files)
    accesses: Dict[str, List[Tuple[float, BlockName]]] = defaultdict(list)
    for record in trace:
        if record.op == CREATE:
            sizes[record.path] = record.size
            for number in _block_span(0, record.size, record.size):
                accesses[record.user].append((record.time, (record.path, number)))
        elif record.op == WRITE:
            size = max(sizes.get(record.path, 0), record.offset + record.length)
            sizes[record.path] = size
            for number in _block_span(record.offset, record.length, size):
                accesses[record.user].append((record.time, (record.path, number)))
        elif record.op == READ:
            size = sizes.get(record.path, 0)
            length = record.length if record.length > 0 else size
            if size == 0 and record.length > 0:
                # Size unknown to the table (e.g. web objects): length rules.
                sizes[record.path] = length
                size = length
            for number in _block_span(record.offset, length, size):
                accesses[record.user].append((record.time, (record.path, number)))
        elif record.op == RENAME:
            if record.path in sizes:
                sizes[record.dst_path] = sizes.pop(record.path)
    return dict(accesses)


def _block_span(offset: int, length: int, size: int) -> range:
    if size <= 0 and length <= 0:
        return range(0, 1)  # metadata-only object: a single block
    end = min(offset + length, size) if size > 0 else offset + length
    if end <= offset:
        return range(offset // BLOCK_SIZE, offset // BLOCK_SIZE + 1)
    return range(offset // BLOCK_SIZE, (end - 1) // BLOCK_SIZE + 1)


@dataclass
class LocalityResult:
    """Mean nodes-per-user-hour for one workload under the three scenarios."""

    workload: str
    n_blocks: int
    n_nodes: int
    traditional: float
    ordered: float
    lower_bound: float

    @property
    def ordered_normalized(self) -> float:
        return self.ordered / self.traditional if self.traditional else 0.0

    @property
    def lower_bound_normalized(self) -> float:
        return self.lower_bound / self.traditional if self.traditional else 0.0

    def rows(self) -> List[dict]:
        return [
            {"workload": self.workload, "scenario": "traditional", "nodes_per_user_hour": self.traditional, "normalized": 1.0},
            {"workload": self.workload, "scenario": "ordered", "nodes_per_user_hour": self.ordered, "normalized": self.ordered_normalized},
            {"workload": self.workload, "scenario": "lower-bound", "nodes_per_user_hour": self.lower_bound, "normalized": self.lower_bound_normalized},
        ]


def analyze_locality(
    trace: Trace,
    *,
    blocks_per_node: int = BLOCKS_PER_NODE,
    hour: float = 3600.0,
) -> LocalityResult:
    """Run the Figure-3 analysis on one workload trace."""
    per_user = trace_block_accesses(trace)
    universe: Set[BlockName] = set()
    for entries in per_user.values():
        for _, block in entries:
            universe.add(block)
    n_blocks = len(universe)
    n_nodes = max(1, -(-n_blocks // blocks_per_node))

    ordered_assignment = _ordered_assignment(universe, blocks_per_node)

    trad_samples: List[int] = []
    ordered_samples: List[int] = []
    bound_samples: List[int] = []
    for user, entries in per_user.items():
        by_hour: Dict[int, Set[BlockName]] = defaultdict(set)
        for time, block in entries:
            by_hour[int(time // hour)].add(block)
        for blocks in by_hour.values():
            trad_samples.append(
                len({_uniform_node(block, n_nodes) for block in blocks})
            )
            ordered_samples.append(
                len({ordered_assignment[block] for block in blocks})
            )
            bound_samples.append(max(1, -(-len(blocks) // blocks_per_node)))

    return LocalityResult(
        workload=trace.name,
        n_blocks=n_blocks,
        n_nodes=n_nodes,
        traditional=_mean(trad_samples),
        ordered=_mean(ordered_samples),
        lower_bound=_mean(bound_samples),
    )


def _ordered_assignment(
    universe: Iterable[BlockName], blocks_per_node: int
) -> Dict[BlockName, int]:
    """Chunk name-sorted blocks into equal-size nodes (paper's *ordered*)."""
    assignment: Dict[BlockName, int] = {}
    for index, block in enumerate(sorted(universe)):
        assignment[block] = index // blocks_per_node
    return assignment


def _uniform_node(block: BlockName, n_nodes: int) -> int:
    return hashed_key(f"{block[0]}#{block[1]}") % n_nodes


def _mean(values: Sequence[int]) -> float:
    return sum(values) / len(values) if values else 0.0
