"""Process-parallel grid executor with disk-cache short-circuiting.

:func:`run_cells` is the one entry point the experiment matrices call: it
resolves each cell from the cheapest source first — the on-disk result
cache, then fresh computation, fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` when more than one
worker is allowed.  Results come back in cell order and are identical
whatever ``jobs`` is (see :mod:`repro.runner.cells` for the determinism
contract), so every figure/table row is byte-identical between serial and
parallel runs.

Worker count resolution: explicit ``jobs`` argument, else ``$REPRO_JOBS``,
else 1 (serial — today's behavior).  ``0`` means one worker per CPU.

Each invocation records a :class:`RunnerStats` (retrievable via
:func:`last_stats`) and, when metric emission is on
(``$REPRO_METRICS_DIR``), writes a small ``runner_<kind>.json`` report.
Its ``sim.events_fired`` counter sums the simulator work of *freshly
computed* cells only, so a rerun that was fully served from the disk
cache reports 0 — the "zero simulation work" check CI relies on.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.runner.cache import RunCache
from repro.runner.cells import execute_cell

#: Environment variable holding the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``$REPRO_JOBS``, else 1 (serial).

    ``0`` (from either source) means one worker per CPU; unparsable
    environment values fall back to serial.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


@dataclass
class RunnerStats:
    """What one :func:`run_cells` invocation did."""

    kind: str
    jobs: int
    cells_total: int = 0
    cells_cached: int = 0     # served from the disk cache
    cells_computed: int = 0   # freshly simulated (serial or in workers)
    events_fired: int = 0     # sim.events_fired summed over computed cells only
    wall_seconds: float = 0.0
    cache_dir: Optional[str] = None


_LAST_STATS: Dict[str, RunnerStats] = {}
_MOST_RECENT: Optional[RunnerStats] = None


def last_stats(kind: Optional[str] = None) -> Optional[RunnerStats]:
    """Stats of the most recent :func:`run_cells` call (optionally by kind)."""
    if kind is not None:
        return _LAST_STATS.get(kind)
    return _MOST_RECENT


def run_cells(
    kind: str,
    cells: Sequence[Mapping[str, Any]],
    *,
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    metrics_name: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> List[Any]:
    """Evaluate all *cells* of one *kind*; returns results in cell order.

    Cache hits never enter the pool; misses run serially when ``jobs <= 1``
    (or only one cell is pending), otherwise in worker processes.  Freshly
    computed results are written back to the cache in the parent, so one
    writer per cell keeps concurrent grids race-free.
    """
    global _MOST_RECENT
    started = time.perf_counter()
    jobs = resolve_jobs(jobs)
    cache = RunCache.from_env() if cache is None else cache
    stats = RunnerStats(
        kind=kind, jobs=jobs, cells_total=len(cells), cache_dir=cache.root
    )

    results: List[Any] = [None] * len(cells)
    pending: List[int] = []
    for index, cell in enumerate(cells):
        hit, value = cache.get(kind, cell)
        if hit:
            results[index] = value
            stats.cells_cached += 1
        else:
            pending.append(index)

    if pending:
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = [
                    pool.submit(execute_cell, kind, dict(cells[i])) for i in pending
                ]
                computed = [future.result() for future in futures]
        else:
            computed = [execute_cell(kind, cells[i]) for i in pending]
        for index, value in zip(pending, computed):
            results[index] = value
            cache.put(kind, cells[index], value)
            stats.cells_computed += 1
            stats.events_fired += _events_fired(value)

    stats.wall_seconds = time.perf_counter() - started
    _LAST_STATS[kind] = stats
    _MOST_RECENT = stats
    _emit_stats_report(stats, metrics_name, metrics_dir, results)
    return results


def _events_fired(result: Any) -> int:
    """``sim.events_fired`` accumulated inside one freshly computed result.

    Results carry their deployment's observability snapshot in a
    ``metrics`` attribute; availability cells return a mapping of such
    results.  Results without a snapshot contribute 0.
    """
    if isinstance(result, Mapping):
        return sum(_events_fired(value) for value in result.values())
    metrics = getattr(result, "metrics", None)
    if isinstance(metrics, Mapping):
        counters = metrics.get("counters")
        if isinstance(counters, Mapping):
            return int(counters.get("sim.events_fired", 0))
    return 0


def _iter_results(results: Sequence[Any]):
    """Flatten cell results (availability cells return result mappings)."""
    for result in results:
        if isinstance(result, Mapping):
            yield from _iter_results(list(result.values()))
        elif result is not None:
            yield result


def _merge_result_histograms(registry: Any, results: Sequence[Any]) -> None:
    """Aggregate per-cell histogram snapshots into the runner report.

    Worker processes cannot share live :class:`Histogram` objects, so each
    result ships its deployment snapshot (with reservoirs); here they are
    restored and merged — deterministically, whatever ``jobs`` was —
    into run-level distributions.
    """
    from repro.obs.metrics import Histogram

    merged: Dict[str, Any] = {}
    for result in _iter_results(results):
        metrics = getattr(result, "metrics", None)
        if not isinstance(metrics, Mapping):
            continue
        histograms = metrics.get("histograms")
        if not isinstance(histograms, Mapping):
            continue
        for name, snapshot in sorted(histograms.items()):
            if not isinstance(snapshot, Mapping):
                continue
            restored = Histogram.from_snapshot(name, snapshot)
            if name in merged:
                merged[name].merge(restored)
            else:
                merged[name] = restored
    for name in sorted(merged):
        registry.register(merged[name])


#: Counter namespaces aggregated from cell results into runner reports —
#: the lookup-cache and acceleration telemetry (hit/miss/staleness,
#: learned-index hits/mispredicts/retrains) that used to stay buried in
#: per-cell snapshots while only traffic cut was visible run-level.
_MERGED_COUNTER_PREFIXES = ("lookup.", "dht.learned.", "accel.")


def _merge_result_counters(registry: Any, results: Sequence[Any]) -> None:
    """Sum per-cell lookup/learned/accel counters into the runner report.

    Counters are additive across cells whatever ``jobs`` was, so the
    merged totals are deterministic.  A run-level ``lookup.hit_ratio``
    gauge and the summed ``lookup.occupancy`` gauge are derived here so
    ``runner_<kind>.json`` answers "how well did the caches do" directly.
    """
    totals: Dict[str, int] = {}
    occupancy = 0.0
    saw_occupancy = False
    for result in _iter_results(results):
        metrics = getattr(result, "metrics", None)
        if not isinstance(metrics, Mapping):
            continue
        counters = metrics.get("counters")
        if isinstance(counters, Mapping):
            for name, value in counters.items():
                if name.startswith(_MERGED_COUNTER_PREFIXES):
                    totals[name] = totals.get(name, 0) + int(value)
        gauges = metrics.get("gauges")
        if isinstance(gauges, Mapping) and "lookup.occupancy" in gauges:
            occupancy += float(gauges["lookup.occupancy"])
            saw_occupancy = True
    for name in sorted(totals):
        registry.counter(name).inc(totals[name])
    if totals:
        hits = totals.get("lookup.hits", 0)
        lookups = hits + totals.get("lookup.misses", 0)
        registry.gauge("lookup.hit_ratio").set(hits / lookups if lookups else 0.0)
    if saw_occupancy:
        registry.gauge("lookup.occupancy").set(occupancy)


def _health_payload(result: Any) -> Optional[Mapping[str, Any]]:
    """The ``health`` export attached to one cell result, if any.

    Churn rows are plain dicts with a ``health`` key; dataclass results
    may carry a ``health`` attribute.  Either way the payload is a
    mapping holding ``rows`` (series + alert dicts) and ``summary``.
    """
    if isinstance(result, Mapping):
        payload = result.get("health")
    else:
        payload = getattr(result, "health", None)
    return payload if isinstance(payload, Mapping) else None


def _iter_health_carriers(results: Sequence[Any]):
    """Yield every result carrying a ``health`` payload.

    Unlike :func:`_iter_results`, a mapping is tested *before* being
    flattened: churn rows are plain dicts, and flattening them into
    values would strip the ``health`` key off the row that owns it.
    """
    for result in results:
        if _health_payload(result) is not None:
            yield result
        elif isinstance(result, Mapping):
            yield from _iter_health_carriers(list(result.values()))


def _merge_health_summaries(registry: Any, results: Sequence[Any]) -> None:
    """Sum per-cell alert totals into the runner report.

    Alert counts are additive across cells whatever ``jobs`` was, so the
    merged totals are deterministic.  Per-severity fired counters make
    ``runner_<kind>.json`` answer "did anything go critical" directly.
    """
    fired = resolved = active = 0
    by_severity: Dict[str, int] = {}
    saw_health = False
    for result in _iter_health_carriers(results):
        payload = _health_payload(result)
        if payload is None:
            continue
        summary = payload.get("summary")
        if not isinstance(summary, Mapping):
            continue
        saw_health = True
        fired += int(summary.get("alerts_fired", 0))
        resolved += int(summary.get("alerts_resolved", 0))
        active += int(summary.get("alerts_active", 0))
        severities = summary.get("by_severity")
        if isinstance(severities, Mapping):
            for severity, count in severities.items():
                by_severity[severity] = by_severity.get(severity, 0) + int(count)
    if not saw_health:
        return
    registry.counter("health.alerts_fired").inc(fired)
    registry.counter("health.alerts_resolved").inc(resolved)
    registry.gauge("health.alerts_active").set(active)
    for severity in sorted(by_severity):
        registry.counter(f"health.alerts_fired.{severity}").inc(
            by_severity[severity]
        )


def _write_health_files(
    metrics_name: str, results: Sequence[Any], directory: str
) -> List[str]:
    """Export each cell's health rows as ``<metrics_name>.health<k>.jsonl``.

    One file per monitored cell, rows in evaluation order — exactly what
    ``python -m repro.obs health`` consumes.
    """
    from repro.obs.stream import JsonlWriter

    filenames: List[str] = []
    for result in _iter_health_carriers(results):
        payload = _health_payload(result)
        if payload is None:
            continue
        rows = payload.get("rows")
        if not rows:
            continue
        os.makedirs(directory, exist_ok=True)
        filename = f"{metrics_name}.health{len(filenames)}.jsonl"
        with JsonlWriter(os.path.join(directory, filename)) as writer:
            for row in rows:
                writer.write(row)
        filenames.append(filename)
    return filenames


def _write_trace_files(
    metrics_name: str, results: Sequence[Any], directory: str
) -> List[str]:
    """Export each traced result as ``<metrics_name>.trace<k>.jsonl``."""
    import json

    filenames: List[str] = []
    for result in _iter_results(results):
        trace = getattr(result, "trace", None)
        if not trace:
            continue
        # This runs before emit_metrics_report's makedirs: create the
        # directory here too so a traced run into a fresh $REPRO_METRICS_DIR
        # does not crash on the first trace file.
        os.makedirs(directory, exist_ok=True)
        filename = f"{metrics_name}.trace{len(filenames)}.jsonl"
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as handle:
            for payload in trace:
                handle.write(json.dumps(payload, sort_keys=True))
                handle.write("\n")
        filenames.append(filename)
    return filenames


def _emit_stats_report(
    stats: RunnerStats,
    metrics_name: Optional[str],
    metrics_dir: Optional[str],
    results: Sequence[Any] = (),
) -> Optional[str]:
    """Write one ``<metrics_name>.json`` runner report (when emission is on)."""
    if not metrics_name:
        return None
    from repro.experiments import common
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import snapshot_run

    directory = common.metrics_out_dir(metrics_dir)
    if not directory:
        return None
    registry = MetricsRegistry()
    registry.counter("runner.cells_total").inc(stats.cells_total)
    registry.counter("runner.cells_cached").inc(stats.cells_cached)
    registry.counter("runner.cells_computed").inc(stats.cells_computed)
    registry.counter("sim.events_fired").inc(stats.events_fired)
    registry.gauge("runner.jobs").set(stats.jobs)
    registry.gauge("runner.wall_seconds").set(stats.wall_seconds)
    _merge_result_histograms(registry, results)
    _merge_result_counters(registry, results)
    _merge_health_summaries(registry, results)
    entry = snapshot_run({"kind": stats.kind, "jobs": stats.jobs}, registry)
    params: Dict[str, Any] = {
        "kind": stats.kind,
        "jobs": stats.jobs,
        "cache_dir": stats.cache_dir,
    }
    traces = _write_trace_files(metrics_name, results, directory)
    if traces:
        params["traces"] = traces
    health = _write_health_files(metrics_name, results, directory)
    if health:
        params["health"] = health
    return common.emit_metrics_report(metrics_name, [entry], params, directory)
