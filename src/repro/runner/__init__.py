"""repro.runner — parallel experiment-matrix execution with a disk cache.

The paper derives every evaluation figure and table from a handful of run
matrices whose cells are embarrassingly parallel and fully deterministic.
This package executes those matrices cell by cell:

* :mod:`repro.runner.cells` — the deterministic cell functions (one per
  matrix kind), importable by worker processes;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  (``$REPRO_RUN_CACHE``) so cells survive across processes and bench runs;
* :mod:`repro.runner.executor` — :func:`run_cells`, which resolves each
  cell from the disk cache or computes it, serially or across a process
  pool (``--jobs N`` / ``$REPRO_JOBS``).

Serial and parallel execution produce identical rows; see
``docs/performance.md`` for knobs, cache layout, and bench recording.
"""

from repro.runner.cache import CACHE_ENV, SCHEMA_VERSION, RunCache, cache_key
from repro.runner.cells import CELL_KINDS, cell_kind, execute_cell
from repro.runner.executor import (
    JOBS_ENV,
    RunnerStats,
    last_stats,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "CACHE_ENV",
    "CELL_KINDS",
    "JOBS_ENV",
    "RunCache",
    "RunnerStats",
    "SCHEMA_VERSION",
    "cache_key",
    "cell_kind",
    "execute_cell",
    "last_stats",
    "resolve_jobs",
    "run_cells",
]
