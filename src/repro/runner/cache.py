"""Content-addressed on-disk cache for experiment grid cells.

Every cell of an experiment run matrix (one ``(system, mode, n_nodes,
bandwidth)`` performance run, one balance replay, one availability trial)
is a deterministic function of its parameter bundle, so its result can be
cached by content address: the key is a stable hash of the full parameter
tuple plus a schema version, the payload is the pickled result.

Layout::

    $REPRO_RUN_CACHE/
      v1/                      # SCHEMA_VERSION — bump to orphan old entries
        performance/
          <sha256 of (version, kind, params)>.pkl
        availability/
          ...

The cache is *disabled* unless ``$REPRO_RUN_CACHE`` names a directory (a
conventional choice is ``~/.cache/repro``; ``~`` is expanded) or a
:class:`RunCache` is constructed with an explicit root — when unset, every
``get`` is a miss and results live only in the per-process memo
(:func:`repro.experiments.common.cached`), exactly the pre-runner
behavior.  All I/O degrades cleanly: corrupted or truncated entries are
deleted and recomputed, write failures are counted and ignored.

Writes are atomic (temp file + ``os.replace``) so concurrent runs sharing
one cache directory never observe partial payloads.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Mapping, Optional, Tuple

#: Environment variable naming the cache root directory.
CACHE_ENV = "REPRO_RUN_CACHE"

#: Bump whenever a cached result type changes shape (new dataclass fields,
#: renamed metrics the analyses rely on, changed simulation semantics):
#: old entries become unreachable instead of silently wrong.
#: v2: PerformanceResult grew ``trace`` (exported span dicts); histogram
#: snapshots may carry reservoirs.
#:
#: Deliberately NOT bumped for the static-analysis PR: the lint fixes
#: (sanctioned key helpers, sorted() insertions, perf_counter swaps) were
#: verified bit-identical to the code they replaced, so every cached
#: result stays valid.  Bumping here invalidates every user's cache — do
#: it only when result *content* changes.
#:
#: v3: churn rows grew alert counts plus the ``health`` payload
#: (per-window time-series and SLO-alert export), and accel results
#: grew ``trace``; health monitoring also advances membership runs'
#: ``events_fired``, so pre-v3 churn rows are stale in content.
SCHEMA_VERSION = 3

#: Ambient environment variables whose value shapes cached result
#: *content* and therefore participates in the cache fingerprint.
#: ``$REPRO_TRACE_SAMPLE`` reaches cells through ``Tracer.from_env``
#: (Deployment construction) and decides which spans land in
#: ``result.trace`` — two runs with different sample rates must not
#: share an entry.  Variables that are unset (or empty) are omitted, so
#: default-environment keys are byte-identical to the pre-fingerprint
#: scheme and existing caches stay warm.  The flow linter's CACHE001
#: pass cross-checks this list against the env reads actually reachable
#: from cached cell bodies.
AMBIENT_ENV_KEYS: Tuple[str, ...] = ("REPRO_TRACE_SAMPLE",)


def ambient_fingerprint() -> Tuple[Tuple[str, str], ...]:
    """The (name, value) pairs of set ambient env vars, fingerprint-ready."""
    return tuple(
        (name, os.environ[name])
        for name in AMBIENT_ENV_KEYS
        if os.environ.get(name)
    )


def cache_key(kind: str, params: Mapping[str, Any]) -> str:
    """Stable content address of one grid cell.

    Parameter order does not matter; values must have deterministic
    ``repr`` (ints, floats, strings, bools, tuples thereof — what the cell
    builders use).  Set ambient env vars (:data:`AMBIENT_ENV_KEYS`) are
    appended so environment-shaped results address distinct entries.
    """
    canonical: Tuple[Any, ...] = (
        SCHEMA_VERSION, kind, tuple(sorted(params.items()))
    )
    ambient = ambient_fingerprint()
    if ambient:
        canonical = canonical + (ambient,)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


class RunCache:
    """Pickled cell results under a root directory; no-op when disabled."""

    def __init__(self, root: Optional[str]) -> None:
        self.root = root or None
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.write_errors = 0

    @classmethod
    def from_env(cls) -> "RunCache":
        """Cache rooted at ``$REPRO_RUN_CACHE``; disabled when unset/empty."""
        return cls(os.environ.get(CACHE_ENV) or None)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, kind: str, params: Mapping[str, Any]) -> str:
        if self.root is None:
            raise ValueError("cache is disabled (no root directory)")
        safe_kind = "".join(c if c.isalnum() or c in "-_" else "_" for c in kind)
        return os.path.join(
            os.path.expanduser(self.root),
            f"v{SCHEMA_VERSION}",
            safe_kind,
            f"{cache_key(kind, params)}.pkl",
        )

    def get(self, kind: str, params: Mapping[str, Any]) -> Tuple[bool, Any]:
        """``(hit, value)`` for one cell; corrupted entries become misses."""
        if self.root is None:
            self.misses += 1
            return False, None
        path = self.path_for(kind, params)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema mismatch: {payload['schema']!r}")
            value = payload["value"]
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated write, foreign file, stale schema: drop and recompute.
            self.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def put(self, kind: str, params: Mapping[str, Any], value: Any) -> Optional[str]:
        """Store one cell result; returns its path (None if disabled/failed)."""
        if self.root is None:
            return None
        path = self.path_for(kind, params)
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "params": dict(params),  # kept for debugging/inspection
            "value": value,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            # The cache is an optimization; never fail the run over it.
            self.write_errors += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return None
        return path
