"""Top-level grid-cell functions, importable by worker processes.

Each *cell kind* maps a plain-dict parameter bundle to one picklable
result.  The functions live at module top level (and take only picklable
arguments) so :class:`concurrent.futures.ProcessPoolExecutor` can ship
them to workers under any start method; heavy experiment imports are
deferred into the function bodies, which both keeps ``python -m repro
list`` instant and breaks the import cycle with the experiment drivers
that call the runner.

Determinism contract: a cell derives *everything* — trace, deployment,
RNG streams — from its own parameter bundle, so running it in a worker
process produces bit-identical results to running it inline.  That is
what lets the executor mix disk-cache hits, serial execution, and
parallel workers freely without changing any emitted row.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

#: kind name -> cell function; populated by the :func:`cell_kind` decorator.
CELL_KINDS: Dict[str, Callable[[Dict[str, Any]], Any]] = {}


def cell_kind(name: str) -> Callable[[Callable[[Dict[str, Any]], Any]], Callable[[Dict[str, Any]], Any]]:
    """Register a cell function under *name* (the disk-cache namespace)."""

    def register(fn: Callable[[Dict[str, Any]], Any]) -> Callable[[Dict[str, Any]], Any]:
        CELL_KINDS[name] = fn
        return fn

    return register


def execute_cell(kind: str, params: Mapping[str, Any]) -> Any:
    """Run one cell in this process — the worker entry point.

    Under ``$REPRO_DETSAN=1`` the cell body runs inside the determinism
    sanitizer (:mod:`repro.lint.detsan`): any wall-clock read or unseeded
    entropy draw raises instead of silently poisoning the result cache.
    The wrapper sits *here*, not around the pool, so process-pool plumbing
    (which legitimately uses OS entropy for auth keys) stays untouched in
    both the parent and the workers.
    """
    from repro.lint.detsan import maybe_sanitize

    try:
        fn = CELL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {kind!r}; expected one of {sorted(CELL_KINDS)}"
        ) from None
    with maybe_sanitize():
        return fn(dict(params))


def scaled_harvard_trace(
    *, users: int, days: float, seed: int, base_size: int, n_nodes: int,
    scale_with_size: bool,
) -> Any:
    """The Harvard trace, replicated per Section 9.1, memoized per process."""
    from repro.experiments import common
    from repro.experiments.workload_cache import harvard_trace
    from repro.workloads.scale import copies_for_size, replicate_filesystem

    trace = harvard_trace(users=users, days=days, seed=seed)
    if not scale_with_size:
        return trace
    copies = copies_for_size(base_size, n_nodes)
    if copies == 0:
        return trace
    return common.cached(
        ("harvard-replicated", users, days, seed, copies),
        lambda: replicate_filesystem(trace, copies),
    )


@cell_kind("performance")
def performance_cell(params: Dict[str, Any]) -> Any:
    """One (system, mode, n_nodes, bandwidth) cell of the Figures 9–15 grid."""
    from repro.analysis.performance import run_performance

    return run_performance(
        scaled_harvard_trace(
            users=params["users"],
            days=params["days"],
            seed=params["seed"],
            base_size=params["base_size"],
            n_nodes=params["n_nodes"],
            scale_with_size=params["scale_with_size"],
        ),
        params["system"],
        mode=params["mode"],
        n_nodes=params["n_nodes"],
        bandwidth_kbps=params["bandwidth_kbps"],
        n_windows=params["n_windows"],
        seed=params["seed"],
    )


@cell_kind("harvard-balance")
def harvard_balance_cell(params: Dict[str, Any]) -> Any:
    """One system of the Harvard balance comparison (Fig 16, Tables 3–4)."""
    from repro.analysis.balance import run_harvard_balance
    from repro.experiments.workload_cache import harvard_trace

    trace = harvard_trace(
        users=params["users"], days=params["days"], seed=params["seed"]
    )
    return run_harvard_balance(
        trace, params["system"], n_nodes=params["n_nodes"], seed=params["seed"]
    )


@cell_kind("webcache-balance")
def webcache_balance_cell(params: Dict[str, Any]) -> Any:
    """One system of the webcache balance comparison (Fig 17, Table 3)."""
    from repro.analysis.balance import run_webcache_balance
    from repro.experiments.workload_cache import web_trace

    trace = web_trace(days=params["days"], seed=params["seed"])
    return run_webcache_balance(
        trace, params["system"], n_nodes=params["n_nodes"], seed=params["seed"]
    )


@cell_kind("scale")
def scale_cell(params: Dict[str, Any]) -> Any:
    """One cell of the million-user scale matrix (``python -m repro scale``).

    ``params["cell"]`` selects the shape: ``"routing"`` (bare ring,
    batched vs cold lookup throughput) or ``"read"`` (full deployment,
    cloned read stream through the batched read path).  These cells time
    themselves, so the driver runs them with the disk cache disabled —
    a cached wall-clock number would be a lie.
    """
    from repro.analysis.scale import run_scale_read, run_scale_routing

    if params["cell"] == "routing":
        return run_scale_routing(
            n_nodes=params["n_nodes"],
            ops=params["ops"],
            batch=params["batch"],
            cold_ops=params["cold_ops"],
            seed=params["seed"],
        )
    from repro.core.system import build_deployment
    from repro.workloads.scale import copies_for_size

    trace = scaled_harvard_trace(
        users=params["base_users"],
        days=params["days"],
        seed=params["seed"],
        base_size=params["base_size"],
        n_nodes=params["n_nodes"],
        scale_with_size=True,
    )
    import contextlib
    import os

    from repro.obs.stream import JsonlWriter

    deployment = build_deployment(
        params["system"], params["n_nodes"], seed=params["seed"]
    )
    deployment.load_initial_image(trace)
    # Sim-time health series at the replay cadence (one window per sim
    # second); node-level series are off — 10^3+ per-node series would
    # swamp the export without changing the cluster-level story.
    deployment.enable_health_monitoring(window=1.0, node_level=False)
    export_dir = os.environ.get("REPRO_SCALE_EXPORT_DIR", "").strip()
    with contextlib.ExitStack() as stack:
        span_writer = metrics_writer = health_writer = None
        if export_dir:
            stem = f"scale_read_{params['n_nodes']}x{params['users']}"
            span_writer = stack.enter_context(
                JsonlWriter(os.path.join(export_dir, f"{stem}_spans.jsonl"))
            )
            metrics_writer = stack.enter_context(
                JsonlWriter(os.path.join(export_dir, f"{stem}_metrics.jsonl"))
            )
            health_writer = stack.enter_context(
                JsonlWriter(os.path.join(export_dir, f"{stem}_health.jsonl"))
            )
        return run_scale_read(
            deployment,
            trace,
            copies=copies_for_size(params["base_size"], params["n_nodes"]),
            users=params["users"],
            ops_per_user=params["ops_per_user"],
            window=params["window"],
            seed=params["seed"],
            span_writer=span_writer,
            metrics_writer=metrics_writer,
            health_writer=health_writer,
        )


@cell_kind("accel")
def accel_cell(params: Dict[str, Any]) -> Any:
    """One (acceleration mode × shift scenario) cell of the accel matrix.

    Self-timing like the scale cells — the driver disables the disk
    cache — but the deterministic fingerprint in each result row is still
    byte-identical between serial and parallel runs.
    """
    from repro.analysis.accel import run_accel_cell

    return run_accel_cell(params)


@cell_kind("churn")
def churn_cell(params: Dict[str, Any]) -> Any:
    """One (storm level, correlated, trial) cell of the churn-storm matrix."""
    from repro.experiments.churn_storm import run_churn_cell

    return run_churn_cell(params)


@cell_kind("availability")
def availability_cell(params: Dict[str, Any]) -> Dict[float, Any]:
    """One (system, trial) availability replay, evaluated at every *inter*.

    The expensive replay runs once; the task-gap sweep reuses its log, so
    the cell returns ``{inter: AvailabilityResult}`` — mirroring the serial
    loop's structure and keeping one replay per cache entry.
    """
    import random

    from repro.analysis.availability import (
        evaluate_tasks,
        matching_failure_trace,
        run_availability_replay,
    )
    from repro.experiments.availability_runs import harsh_failure_config
    from repro.experiments.workload_cache import harvard_trace

    trace = harvard_trace(
        users=params["users"], days=params["days"], seed=params["seed"]
    )
    failures = matching_failure_trace(
        params["n_nodes"],
        random.Random(params["seed"] + 100 * params["trial"]),
        harsh_failure_config(params["days"]),
    )
    log = run_availability_replay(
        trace,
        failures,
        params["system"],
        trial=params["trial"],
        regeneration_delay=params["regeneration_delay"],
    )
    return {
        inter: evaluate_tasks(trace, log, inter) for inter in params["inters"]
    }
