"""Storage coordinator: write/remove paths, moves, pointers, migration traffic.

This is the glue between the ring, the block directory, and the load
balancer.  It implements the :class:`repro.dht.load_balance.BalanceCoordinator`
protocol and is the single place where *data actually moves*, so it is also
where migration traffic — the cost the paper quantifies in Table 4 — is
accounted.

Physical placement is tracked exactly: ``physical_at[key]`` names the node
holding the primary copy's bytes.  Responsibility is always derived from
the ring.  A *pointer* exists implicitly wherever responsibility and
physical placement disagree; pointer ranges record when a disagreement was
created so stabilization (the deferred fetch) can fire after the configured
delay.  Secondary replicas track the primary placement (footnote 3 of the
paper: balanced primaries imply balanced totals), so migration volumes are
reported for primaries and scaled by the replica count where total traffic
is needed.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.dht.ring import Ring
from repro.obs.events import MIGRATION, POINTER_CREATE, POINTER_FLUSH, EventTracer
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.store.block_store import BlockDirectory
from repro.store.pointers import PointerRange, PointerTable

SECONDS_PER_DAY = 86400.0


@dataclass
class TrafficLedger:
    """Byte counters for written / removed / migrated data, bucketed by day.

    Tables 3 and 4 of the paper report daily write volume ``W_i``, removal
    volume ``R_i``, and load-balancing (migration) volume ``L_i``; this
    ledger produces exactly those series.
    """

    written_by_day: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    removed_by_day: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    migrated_by_day: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    total_written: int = 0
    total_removed: int = 0
    total_migrated: int = 0

    def record_write(self, now: float, nbytes: int) -> None:
        self.written_by_day[int(now // SECONDS_PER_DAY)] += nbytes
        self.total_written += nbytes

    def record_remove(self, now: float, nbytes: int) -> None:
        self.removed_by_day[int(now // SECONDS_PER_DAY)] += nbytes
        self.total_removed += nbytes

    def record_migration(self, now: float, nbytes: int) -> None:
        self.migrated_by_day[int(now // SECONDS_PER_DAY)] += nbytes
        self.total_migrated += nbytes

    def daily_series(self, days: int) -> List[dict]:
        """Per-day ``{day, written, removed, migrated}`` rows for reports."""
        return [
            {
                "day": day + 1,
                "written": self.written_by_day.get(day, 0),
                "removed": self.removed_by_day.get(day, 0),
                "migrated": self.migrated_by_day.get(day, 0),
            }
            for day in range(days)
        ]


class StorageCoordinator:
    """Authoritative storage state machine for one simulated DHT deployment.

    Parameters
    ----------
    ring, sim:
        Shared ring membership and event engine.
    pointer_stabilization_time:
        Delay before an adopted range's blocks are actually fetched
        (paper: 1 hour).
    use_pointers:
        When False, moves transfer blocks immediately — the paper's
        "unnecessary data transfers" strawman (Figure 6), kept as an
        ablation.
    removal_delay:
        Grace period before a removed block leaves the directory
        (paper: 30 s, matching the write-back cache staleness bound).
    replica_count:
        ``r``; used when reporting total (primary + secondary) volumes.
    """

    def __init__(
        self,
        ring: Ring,
        sim: Simulator,
        *,
        pointer_stabilization_time: float = 3600.0,
        use_pointers: bool = True,
        removal_delay: float = 30.0,
        replica_count: int = 3,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        spans=None,
    ) -> None:
        self.ring = ring
        self.sim = sim
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self.spans = spans  # repro.obs.spans.Tracer; falsy/None when disabled
        self._span_parent = None
        self._c_writes = self.metrics.counter("store.writes")
        self._c_written_bytes = self.metrics.counter("store.written_bytes")
        self._c_removes = self.metrics.counter("store.removes")
        self._c_removed_bytes = self.metrics.counter("store.removed_bytes")
        self._c_migrations = self.metrics.counter("store.migrations")
        self._c_migrated_bytes = self.metrics.counter("store.migrated_bytes")
        self._c_moves = self.metrics.counter("store.moves")
        self._c_pointer_adopted = self.metrics.counter("pointer.adopted")
        self._c_pointer_stabilized = self.metrics.counter("pointer.stabilized")
        self.directory = BlockDirectory()
        self.pointer_table = PointerTable()
        self.ledger = TrafficLedger()
        self.physical_at: Dict[int, str] = {}
        self.pointer_stabilization_time = pointer_stabilization_time
        self.use_pointers = use_pointers
        self.removal_delay = removal_delay
        self.replica_count = replica_count
        self.moves_executed = 0
        self._expires_at: Dict[int, float] = {}
        self._removes_at: Dict[int, float] = {}
        self._h_stabilization = self.metrics.histogram("pointer.stabilization_seconds")
        # Optional repro.store.repair.ReplicaTracker: when a churn harness
        # attaches one, the write/remove/migrate paths keep it in sync so
        # crash protocols know exactly which copies each node held.
        self._replica_tracker = None
        # Optional (lo, hi) callback: balancing moves shift replica groups
        # (the mover enters and leaves successor groups), so an attached
        # repair scheduler must re-derive those arcs' replica placement.
        self._reconcile_ranges = None

    # ------------------------------------------------------------------
    # client-facing data path

    def write(self, key: int, size: int, *, ttl: Optional[float] = None) -> None:
        """Insert (or overwrite) a block; bytes land on the current owner.

        With *ttl*, the block is auto-removed when the TTL elapses without
        a :meth:`refresh` — the paper's safety net for removals lost to
        partitions (Section 3).  Writing again also refreshes.
        """
        delta = self.directory.put(key, size)
        self.physical_at[key] = self.ring.successor(key)
        self.ledger.record_write(self.sim.now, max(delta, size))
        self._c_writes.inc()
        self._c_written_bytes.inc(max(delta, size))
        # A write during a removal grace window rescues the block: the
        # pending removal event is disarmed (its deadline guard fails).
        self._removes_at.pop(key, None)
        if self._replica_tracker is not None:
            self._replica_tracker.place(key, self.holders(key))
        if ttl is not None:
            self._set_expiry(key, ttl)
        elif key in self._expires_at:
            del self._expires_at[key]

    def refresh(self, key: int, ttl: float) -> bool:
        """Extend a TTL-guarded block's life; False if it already expired."""
        if key not in self.directory:
            return False
        self._set_expiry(key, ttl)
        return True

    def expiry_of(self, key: int) -> Optional[float]:
        """Absolute expiry time of a TTL-guarded block, or None."""
        return self._expires_at.get(key)

    def _set_expiry(self, key: int, ttl: float) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        deadline = self.sim.now + ttl
        self._expires_at[key] = deadline
        self.sim.schedule(ttl, lambda: self._expire(key, deadline))

    def _expire(self, key: int, deadline: float) -> None:
        # Only the newest scheduled deadline is authoritative: refreshes
        # leave earlier events behind as no-ops.
        if self._expires_at.get(key) != deadline:
            return
        del self._expires_at[key]
        size = self.directory.discard(key)
        if size is not None:
            self.physical_at.pop(key, None)
            self.ledger.record_remove(self.sim.now, size)
            self._c_removes.inc()
            self._c_removed_bytes.inc(size)
            if self._replica_tracker is not None:
                self._replica_tracker.forget(key)

    def remove(self, key: int, *, delay: Optional[float] = None) -> None:
        """Remove a block after the grace period (default: removal_delay).

        Removal is idempotent with respect to the grace window: if the key
        is gone by the time the event fires, nothing happens.  A re-write
        during the grace window wins — it disarms the pending removal (the
        scheduled event carries a deadline and only the newest removal's
        deadline is authoritative, mirroring the TTL path's guard).
        Removing also clears any TTL state so a stale expiry event cannot
        later kill a re-written block.
        """
        wait = self.removal_delay if delay is None else delay
        self._expires_at.pop(key, None)

        def _discard() -> None:
            size = self.directory.discard(key)
            if size is not None:
                self.physical_at.pop(key, None)
                self.ledger.record_remove(self.sim.now, size)
                self._c_removes.inc()
                self._c_removed_bytes.inc(size)
                if self._replica_tracker is not None:
                    self._replica_tracker.forget(key)

        if wait <= 0:
            self._removes_at.pop(key, None)
            _discard()
            return

        deadline = self.sim.now + wait
        self._removes_at[key] = deadline

        def _expire() -> None:
            if self._removes_at.get(key) != deadline:
                return  # superseded by a re-write or a newer removal
            del self._removes_at[key]
            _discard()

        self.sim.schedule(wait, _expire)

    def holders(self, key: int) -> List[str]:
        """Replica group for *key*: its ``r`` distinct successors."""
        return self.ring.successors(key, self.replica_count)

    def physical_holder(self, key: int) -> str:
        """Node physically holding the primary copy (may lag the owner)."""
        try:
            return self.physical_at[key]
        except KeyError:
            raise KeyError(f"block {key:#x} has no physical placement") from None

    def is_pointer(self, key: int) -> bool:
        """True when the responsible node holds only a pointer for *key*."""
        return self.physical_at.get(key) != self.ring.successor(key)

    # ------------------------------------------------------------------
    # BalanceCoordinator protocol

    def primary_load(self, name: str) -> int:
        lo, hi = self.ring.range_of(name)
        if len(self.ring) == 1:
            return len(self.directory)
        return self.directory.count_in_range(lo, hi)

    def primary_keys(self, name: str) -> Sequence[int]:
        lo, hi = self.ring.range_of(name)
        if len(self.ring) == 1:
            return list(self.directory.keys())
        return self.directory.keys_in_range(lo, hi)

    def execute_move(self, mover: str, new_id: int) -> None:
        """Leave+rejoin of *mover* at *new_id*, with deferred data movement.

        Two ranges change hands: the mover's old range (adopted by its old
        successor) and the slice of the target's range below *new_id*
        (adopted by the mover).  With pointers enabled both adoptions are
        recorded and fetched after the stabilization delay; otherwise the
        bytes move immediately.
        """
        old_lo, old_hi = self.ring.range_of(mover)
        single_node = len(self.ring) == 1
        old_replica_range = (
            None
            if self._reconcile_ranges is None
            else self.ring.replica_range_of(mover, self.replica_count)
        )

        self.ring.change_position(mover, new_id)
        self.moves_executed += 1
        self._c_moves.inc()

        if not single_node:
            # Whoever owns the vacated arc now adopts it.  When the mover
            # slid within its own neighborhood (it was already the target's
            # predecessor) it still owns the old arc itself and no hand-off
            # is needed.
            adopter = self.ring.successor(old_hi)
            if adopter != mover:
                self._hand_off(old_lo, old_hi, adopter)
        new_lo, new_hi = self.ring.range_of(mover)
        self._hand_off(new_lo, new_hi, mover)
        if self._reconcile_ranges is not None:
            # The mover left the replica groups of its old neighborhood and
            # entered those of its new one; both arcs re-derive placement.
            self._reconcile_ranges(*old_replica_range)
            self._reconcile_ranges(
                *self.ring.replica_range_of(mover, self.replica_count)
            )

    # ------------------------------------------------------------------
    # movement mechanics

    @contextmanager
    def span_context(self, parent) -> Iterator[None]:
        """Parent all spans recorded inside the block under *parent*.

        Used by the balancer so pointer-adoption spans nest inside the
        ``balance.move`` span that caused them.  Stabilization fires later
        via the event queue, outside any such context, and records roots.
        """
        previous = self._span_parent
        self._span_parent = parent
        try:
            yield
        finally:
            self._span_parent = previous

    def _record_span(self, name: str, **attrs) -> None:
        """Instantaneous span at ``sim.now`` (child of the active context)."""
        if not self.spans:
            return
        now = self.sim.now
        if self._span_parent:
            span = self.spans.start_span(name, now, self._span_parent, **attrs)
        else:
            span = self.spans.start_trace(name, now, **attrs)
        self.spans.finish(span, now)

    def _hand_off(self, lo: int, hi: int, adopter: str) -> None:
        if self.use_pointers:
            record = self.pointer_table.adopt(lo, hi, adopter, self.sim.now)
            self._c_pointer_adopted.inc()
            self._record_span("pointer.adopt", lo=lo, hi=hi, owner=adopter)
            if self._tracer is not None:
                self._tracer.emit(
                    POINTER_CREATE, self.sim.now, lo=lo, hi=hi, owner=adopter
                )
            self.sim.schedule(
                self.pointer_stabilization_time, lambda: self._stabilize(record)
            )
        else:
            self._fetch_range(lo, hi)

    def _stabilize(self, record: PointerRange) -> None:
        """Pointer stabilization: pull in any bytes still held elsewhere.

        A record that fails to retire was already handled (force-flushed at
        teardown, or superseded): its arc has been fetched by whoever
        retired it, so re-scanning would only re-fire migration spans and
        events for work that never happens.  Skip it.
        """
        if not self.pointer_table.retire(record):
            return
        self._c_pointer_stabilized.inc()
        self._h_stabilization.observe(self.sim.now - record.adopted_at)
        self._record_span(
            "pointer.stabilize", lo=record.lo, hi=record.hi, owner=record.owner
        )
        if self._tracer is not None:
            self._tracer.emit(
                POINTER_FLUSH,
                self.sim.now,
                lo=record.lo,
                hi=record.hi,
                owner=record.owner,
            )
        self._fetch_range(record.lo, record.hi)

    def _fetch_range(self, lo: int, hi: int) -> None:
        """Materialize every block in ``(lo, hi]`` on its current owner.

        Blocks already co-located with their owner (e.g. written after the
        adoption, or never moved) cost nothing — this is exactly the saving
        pointers exist to capture.
        """
        migrated = 0
        for key in self.directory.keys_in_range(lo, hi):
            owner = self.ring.successor(key)
            if self.physical_at.get(key) != owner:
                migrated += self.directory.size_of(key)
                self.physical_at[key] = owner
                if self._replica_tracker is not None:
                    self._replica_tracker.add_copy(key, owner)
        if migrated:
            self.ledger.record_migration(self.sim.now, migrated)
            self._record_span("store.migrate", lo=lo, hi=hi, bytes=migrated)
            self._c_migrations.inc()
            self._c_migrated_bytes.inc(migrated)
            if self._tracer is not None:
                self._tracer.emit(MIGRATION, self.sim.now, lo=lo, hi=hi, bytes=migrated)

    def flush_all_pointers(self) -> None:
        """Force-stabilize everything (used at experiment teardown)."""
        for record in list(self.pointer_table.pending()):
            self._stabilize(record)

    # ------------------------------------------------------------------
    # membership support (repro.dht.membership / repro.store.repair)

    def attach_replica_tracker(self, tracker) -> None:
        """Keep *tracker* (:class:`repro.store.repair.ReplicaTracker`) in
        sync with the write/remove/migrate paths from now on."""
        self._replica_tracker = tracker

    def attach_range_reconciler(self, callback) -> None:
        """Invoke ``callback(lo, hi)`` whenever a move shifts replica groups.

        The repair scheduler registers its ``reconcile_range`` here so that
        balancing moves — which change successor groups just like joins and
        leaves do — restore every affected key's replica placement.
        """
        self._reconcile_ranges = callback

    def hand_off(self, lo: int, hi: int, adopter: str) -> None:
        """Public pointer-adoption entry point for membership changes.

        A graceful leave hands the departing node's arc to its successor;
        a join hands the split arc to the joining node — both ride the
        same deferred-migration path the load balancer's moves use.
        """
        self._hand_off(lo, hi, adopter)

    def drop_pointer_records_of(self, owner: str) -> List[PointerRange]:
        """Void every pending pointer record owned by *owner* (crashed).

        Returns the dropped records so the caller can re-adopt their arcs
        under the nodes now responsible.  The records' already-scheduled
        stabilization events become no-ops through the identity guard, and
        none of them count as stabilized.
        """
        dropped = list(self.pointer_table.pending_for(owner))
        for record in dropped:
            self.pointer_table.drop(record)
        return dropped

    def reassign_physical(self, key: int, holder: str) -> None:
        """Point the primary copy's physical placement at *holder*.

        Used by crash recovery (the primary's bytes now live on a
        surviving replica) and by repair completion (the owner finished
        re-materializing the primary copy).
        """
        self.physical_at[key] = holder

    def destroy_block(self, key: int) -> Optional[int]:
        """Drop a block whose last copy died; returns its size, or None.

        Data *loss* is not a removal: the ledger's daily removal series
        must not count destroyed bytes, so no removal accounting happens
        here — the repair scheduler keeps its own loss ledger.
        """
        size = self.directory.discard(key)
        if size is not None:
            self.physical_at.pop(key, None)
            self._expires_at.pop(key, None)
            self._removes_at.pop(key, None)
            if self._replica_tracker is not None:
                self._replica_tracker.forget(key)
        return size

    # ------------------------------------------------------------------
    # reporting

    def primary_loads(self) -> Dict[str, int]:
        """Primary block count per node (the balancer's load metric)."""
        return {name: self.primary_load(name) for name in self.ring.names()}

    def primary_bytes(self) -> Dict[str, int]:
        """Primary byte volume per node (storage-balance metric)."""
        result = {}
        for name in self.ring.names():
            lo, hi = self.ring.range_of(name)
            if len(self.ring) == 1:
                result[name] = self.directory.total_bytes
            else:
                result[name] = self.directory.bytes_in_range(lo, hi)
        return result

    def total_loads(self) -> Dict[str, int]:
        """Total (primary + secondary) block count per node.

        A node holds replicas for its own arc and its ``r - 1``
        predecessors' arcs.
        """
        primaries = self.primary_loads()
        names = list(self.ring.names())
        totals = {}
        for name in names:
            load = 0
            cursor = name
            for _ in range(min(self.replica_count, len(names))):
                load += primaries[cursor]
                cursor = self.ring.predecessor_of(cursor)
            totals[name] = load
        return totals

    def total_bytes_per_node(self) -> Dict[str, int]:
        """Total stored bytes per node (own arc plus r-1 predecessors').

        This is the storage-load metric Figures 16 and 17 plot the
        normalized standard deviation of.
        """
        primaries = self.primary_bytes()
        names = list(self.ring.names())
        totals = {}
        for name in names:
            volume = 0
            cursor = name
            for _ in range(min(self.replica_count, len(names))):
                volume += primaries[cursor]
                cursor = self.ring.predecessor_of(cursor)
            totals[name] = volume
        return totals

    def pointer_block_count(self) -> int:
        """Blocks whose owner currently holds only a pointer."""
        return sum(
            1
            for key in self.directory.keys()
            if self.physical_at.get(key) != self.ring.successor(key)
        )
