"""Authoritative block directory (what D2-Store collectively stores).

The directory is the simulation's ground truth for *logical* content: the
set of live block keys and their sizes.  Responsibility for a key is always
derived from the ring (``r`` successors), and the *physical* location of
each primary copy is tracked separately by
:class:`repro.store.migration.StorageCoordinator` so that block pointers
(deferred migration) can be modelled exactly.

The directory supports the range queries the load balancer needs — count,
median, and byte volume over an arc ``(lo, hi]`` — via a lazily rebuilt
sorted index, so bursts of writes between balancing rounds stay O(1) each.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dht.keyspace import validate_key


class BlockDirectoryError(Exception):
    """Raised on invalid directory operations (duplicate put, missing key)."""


class BlockDirectory:
    """Sorted index of live block keys and sizes with circular range queries."""

    def __init__(self) -> None:
        self._sizes: Dict[int, int] = {}
        self._sorted: List[int] = []
        self._dirty = False
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # mutation

    def add(self, key: int, size: int) -> None:
        """Record a new live block.  Re-adding an existing key is an error."""
        validate_key(key)
        if size < 0:
            raise BlockDirectoryError(f"negative block size {size}")
        if key in self._sizes:
            raise BlockDirectoryError(f"block {key:#x} already present")
        self._sizes[key] = size
        self.total_bytes += size
        self._dirty = True

    def put(self, key: int, size: int) -> int:
        """Upsert a block; returns the size delta (new - old)."""
        validate_key(key)
        if size < 0:
            raise BlockDirectoryError(f"negative block size {size}")
        old = self._sizes.get(key)
        self._sizes[key] = size
        if old is None:
            self._dirty = True
            self.total_bytes += size
            return size
        self.total_bytes += size - old
        return size - old

    def remove(self, key: int) -> int:
        """Delete a block; returns its size."""
        try:
            size = self._sizes.pop(key)
        except KeyError:
            raise BlockDirectoryError(f"block {key:#x} not present") from None
        self.total_bytes -= size
        self._dirty = True
        return size

    def discard(self, key: int) -> Optional[int]:
        """Delete a block if present; returns its size or None."""
        size = self._sizes.pop(key, None)
        if size is not None:
            self.total_bytes -= size
            self._dirty = True
        return size

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, key: int) -> bool:
        return key in self._sizes

    def size_of(self, key: int) -> int:
        try:
            return self._sizes[key]
        except KeyError:
            raise BlockDirectoryError(f"block {key:#x} not present") from None

    def keys(self) -> Iterator[int]:
        return iter(self._sizes)

    def _index(self) -> List[int]:
        if self._dirty:
            self._sorted = sorted(self._sizes)
            self._dirty = False
        return self._sorted

    def keys_in_range(self, lo: int, hi: int) -> List[int]:
        """Live keys in the circular arc ``(lo, hi]``, in clockwise order.

        ``lo == hi`` denotes the full ring (single-node system).
        """
        index = self._index()
        if not index:
            return []
        if lo == hi:
            # Full ring, clockwise starting just after lo.
            start = bisect.bisect_right(index, lo)
            return index[start:] + index[:start]
        if lo < hi:
            start = bisect.bisect_right(index, lo)
            stop = bisect.bisect_right(index, hi)
            return index[start:stop]
        # Wrapping arc: (lo, MAX] ++ [0, hi]
        start = bisect.bisect_right(index, lo)
        stop = bisect.bisect_right(index, hi)
        return index[start:] + index[:stop]

    def count_in_range(self, lo: int, hi: int) -> int:
        """Number of live keys in the arc ``(lo, hi]`` — the primary load."""
        index = self._index()
        if not index:
            return 0
        if lo == hi:
            return len(index)
        start = bisect.bisect_right(index, lo)
        stop = bisect.bisect_right(index, hi)
        if lo < hi:
            return stop - start
        return (len(index) - start) + stop

    def bytes_in_range(self, lo: int, hi: int) -> int:
        """Total byte volume of live blocks in the arc ``(lo, hi]``."""
        return sum(self._sizes[k] for k in self.keys_in_range(lo, hi))

    def median_key_in_range(self, lo: int, hi: int) -> Optional[int]:
        """Split point that leaves half the arc's keys at or below it.

        Returns None when the arc holds fewer than two keys, or when the
        median coincides with *hi* (splitting there would be a no-op).
        """
        keys = self.keys_in_range(lo, hi)
        if len(keys) < 2:
            return None
        median = keys[(len(keys) - 1) // 2]
        if median == hi:
            return None
        return median

    def snapshot_loads(self, boundaries: List[Tuple[int, int, str]]) -> Dict[str, int]:
        """Primary block count per node given ``(lo, hi, name)`` arcs."""
        return {name: self.count_in_range(lo, hi) for lo, hi, name in boundaries}
