"""Block-pointer bookkeeping for deferred migration (Section 6).

When a load-balancing ID change hands a key range to a new node, D2 does
not move the data immediately.  The adopting node records a *pointer
range*: it is now responsible for the range, but the bytes still sit on the
previous holder.  Only after the range has been held for the *pointer
stabilization time* does the node fetch the actual blocks.  If the range
changes hands again before stabilizing, only the (tiny) pointers move — the
blocks themselves transfer at most once, from the original holder to the
final destination.

The physical location of every primary copy is tracked exactly by the
coordinator (:mod:`repro.store.migration`); this module provides the
pending-stabilization records and range algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.dht.keyspace import in_interval


@dataclass(frozen=True)
class PointerRange:
    """A half-open circular arc ``(lo, hi]`` adopted at ``adopted_at``.

    ``owner`` is the node responsible for the arc when it was adopted; the
    stabilization event checks responsibility again before fetching, so a
    stale record is harmless.
    """

    lo: int
    hi: int
    owner: str
    adopted_at: float

    def covers(self, key: int) -> bool:
        return in_interval(key, self.lo, self.hi)


@dataclass
class PointerTable:
    """Pending pointer ranges awaiting stabilization, per storage system."""

    _ranges: List[PointerRange] = field(default_factory=list)
    adopted_count: int = 0
    stabilized_count: int = 0
    dropped_count: int = 0

    def adopt(self, lo: int, hi: int, owner: str, now: float) -> PointerRange:
        """Record that *owner* became responsible for ``(lo, hi]`` at *now*."""
        record = PointerRange(lo, hi, owner, now)
        self._ranges.append(record)
        self.adopted_count += 1
        return record

    def retire(self, record: PointerRange) -> bool:
        """Drop a range whose stabilization event has fired.

        Returns False when the range was already retired (e.g. superseded
        by a later adoption or a force-flush), True otherwise.

        Retirement matches by *identity*, not equality: two adoptions of
        the same ``(lo, hi, owner)`` arc at the same instant produce equal
        but distinct records, each with its own stabilization event, and
        each event must retire exactly its own record.
        """
        for index, existing in enumerate(self._ranges):
            if existing is record:
                del self._ranges[index]
                self.stabilized_count += 1
                return True
        return False  # already retired

    def drop(self, record: PointerRange) -> bool:
        """Remove a record without counting it as stabilized.

        Used when a pending range's owner crashes: the adoption is void
        (the arc re-adopts under the node now responsible), so it must not
        inflate ``stabilized_count``.  Identity-matched like :meth:`retire`;
        the record's already-scheduled stabilization event then no-ops.
        """
        for index, existing in enumerate(self._ranges):
            if existing is record:
                del self._ranges[index]
                self.dropped_count += 1
                return True
        return False

    def pending(self) -> Tuple[PointerRange, ...]:
        return tuple(self._ranges)

    def pending_for(self, owner: str) -> Iterator[PointerRange]:
        return (r for r in self._ranges if r.owner == owner)

    def covering(self, key: int) -> Iterator[PointerRange]:
        return (r for r in self._ranges if r.covers(key))

    def __len__(self) -> int:
        return len(self._ranges)
