"""Replica liveness tracking and bandwidth-capped repair under churn.

The static availability model (:mod:`repro.analysis.availability`) assumes
membership never shrinks and approximates regeneration with a closed-form
delay.  This module replaces that approximation with *actually simulated*
repair, per Leslie's *Reliable Data Storage in Distributed Hash Tables*:

* :class:`ReplicaTracker` knows, for every block, which nodes physically
  hold a live copy.  Writes place ``r`` copies on the key's successor
  group; crashes destroy the copies on the dead node.
* :class:`RepairScheduler` restores redundancy after membership changes.
  Each missing copy becomes a repair job that streams the block from a
  surviving holder through that holder's bandwidth-capped token bucket
  (the paper's 750 kbps per-node migration cap).  Jobs whose source or
  target dies mid-transfer retry with exponential backoff; a block whose
  last copy dies before repair lands is *lost*, and the scheduler keeps a
  per-key loss ledger (key, time, bytes) — the data-loss probability the
  churn-storm experiments report.

Determinism: all iteration is over sorted keys or insertion-ordered
dicts, all timing flows through the simulator, and the only randomness is
the caller's seeded RNG — serial and parallel experiment runs are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import EventTracer, register_kind
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator, TokenBucket
from repro.store.migration import StorageCoordinator

REPAIR_SCHEDULE = register_kind("repair.schedule")
REPAIR_COMPLETE = register_kind("repair.complete")
REPAIR_RETRY = register_kind("repair.retry")
REPAIR_LOSS = register_kind("repair.loss")


class ReplicaTracker:
    """Ground truth for which nodes hold a live physical copy of each block.

    The coordinator's ``physical_at`` tracks only the *primary* copy (for
    pointer/migration accounting); this tracker covers all ``r`` copies so
    crash protocols can answer "did the last copy just die?".  Holder
    lists are insertion-ordered and the reverse index is an
    insertion-ordered dict-of-dicts, so every traversal is deterministic.
    """

    def __init__(self) -> None:
        self._copies: Dict[int, List[str]] = {}
        self._keys_on: Dict[str, Dict[int, None]] = {}

    def place(self, key: int, holders: List[str]) -> None:
        """A (re)write lands *key* on *holders* (its current replica group)."""
        self.forget(key)
        self._copies[key] = []
        for holder in holders:
            self.add_copy(key, holder)

    def add_copy(self, key: int, holder: str) -> bool:
        """Record a finished copy; returns False if *holder* already had one."""
        holders = self._copies.setdefault(key, [])
        if holder in holders:
            return False
        holders.append(holder)
        self._keys_on.setdefault(holder, {})[key] = None
        return True

    def remove_copy(self, key: int, holder: str) -> bool:
        holders = self._copies.get(key)
        if holders is None or holder not in holders:
            return False
        holders.remove(holder)
        on_node = self._keys_on.get(holder)
        if on_node is not None:
            on_node.pop(key, None)
        return True

    def drop_node(self, node: str) -> List[int]:
        """Remove every copy held by *node*; returns the affected keys sorted."""
        keys = sorted(self._keys_on.pop(node, {}))
        for key in keys:
            holders = self._copies.get(key)
            if holders is not None and node in holders:
                holders.remove(node)
        return keys

    def forget(self, key: int) -> None:
        """The block left the directory (removed, expired, or lost)."""
        holders = self._copies.pop(key, None)
        if not holders:
            return
        for holder in holders:
            on_node = self._keys_on.get(holder)
            if on_node is not None:
                on_node.pop(key, None)

    def holders_of(self, key: int) -> Tuple[str, ...]:
        return tuple(self._copies.get(key, ()))

    def has_copy(self, key: int, holder: str) -> bool:
        return holder in self._copies.get(key, ())

    def live_count(self, key: int) -> int:
        return len(self._copies.get(key, ()))

    def keys_on(self, node: str) -> List[int]:
        return sorted(self._keys_on.get(node, ()))

    def tracked_keys(self) -> List[int]:
        return sorted(self._copies)

    def __len__(self) -> int:
        return len(self._copies)


@dataclass
class RepairJob:
    """One in-flight re-replication: *key* streaming toward *target*."""

    key: int
    target: str
    source: str
    size: int
    attempts: int = 0


@dataclass
class LossRecord:
    """A block whose last live copy died before repair could land."""

    key: int
    time: float
    size: int


@dataclass
class RepairStats:
    """Aggregate outcome of one churn run, JSON-ready for experiment rows."""

    scheduled: int = 0
    completed: int = 0
    retries: int = 0
    requeued: int = 0
    abandoned: int = 0
    repaired_bytes: int = 0
    handoff_bytes: int = 0
    gc_bytes: int = 0
    lost_keys: int = 0
    lost_bytes: int = 0
    max_backlog: int = 0
    losses: List[LossRecord] = field(default_factory=list)

    def to_row(self) -> Dict[str, object]:
        return {
            "repair_scheduled": self.scheduled,
            "repair_completed": self.completed,
            "repair_retries": self.retries,
            "repair_requeued": self.requeued,
            "repair_abandoned": self.abandoned,
            "repaired_bytes": self.repaired_bytes,
            "handoff_bytes": self.handoff_bytes,
            "gc_bytes": self.gc_bytes,
            "lost_keys": self.lost_keys,
            "lost_bytes": self.lost_bytes,
            "max_backlog": self.max_backlog,
        }


class RepairScheduler:
    """Restores ``r`` live copies per block after joins, leaves, and crashes.

    Parameters
    ----------
    bandwidth_bps:
        Per-source-node repair bandwidth cap (paper: 750 kbps).  Each
        source node serializes its outgoing repairs through one
        :class:`TokenBucket`.
    retry_delay, max_retries:
        First retry backoff and attempt cap for jobs whose source or
        target died mid-transfer; backoff doubles per attempt.
    """

    def __init__(
        self,
        store: StorageCoordinator,
        sim: Simulator,
        *,
        bandwidth_bps: float = 93750.0,  # 750 kbps
        retry_delay: float = 60.0,
        max_retries: int = 8,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        spans=None,
    ) -> None:
        self.store = store
        self.sim = sim
        self.ring = store.ring
        self.tracker = ReplicaTracker()
        self.bandwidth_bps = bandwidth_bps
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.stats = RepairStats()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self._spans = spans
        self._c_scheduled = self.metrics.counter("repair.scheduled")
        self._c_completed = self.metrics.counter("repair.completed")
        self._c_retries = self.metrics.counter("repair.retries")
        self._c_lost = self.metrics.counter("repair.lost_keys")
        self._c_repaired_bytes = self.metrics.counter("repair.repaired_bytes")
        self._g_backlog = self.metrics.gauge("repair.backlog")
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight: Dict[Tuple[int, str], RepairJob] = {}
        self._backlog_series = None
        self._deficit_series = None
        store.attach_replica_tracker(self.tracker)
        store.attach_range_reconciler(self.reconcile_range)

    def attach_timeseries(self, bank) -> None:
        """Push backlog/deficit samples into a health time-series bank.

        Repairs at 8 KB blocks complete in well under a window, so a
        boundary-only scan would read a backlog of ~0 even mid-storm;
        ``max``-aggregated push samples from every in-flight mutation
        preserve the intra-window peak, while the monitor's boundary
        samples of the same series supply the zeros that let alerts
        resolve once the backlog drains.
        """
        self._backlog_series = bank.series("repair.backlog", agg="max")
        self._deficit_series = bank.series("repair.deficit", agg="max")
        self._update_backlog()

    # ------------------------------------------------------------------
    # membership entry points

    def on_node_crashed(self, node: str) -> None:
        """Copies on *node* are destroyed; re-replicate or record loss.

        Must run *after* the ring removal, so desired groups and physical
        reassignment see the post-crash membership.
        """
        for key in self.tracker.drop_node(node):
            survivors = self.tracker.holders_of(key)
            if not survivors:
                self._record_loss(key)
                continue
            if self.store.physical_at.get(key) == node:
                # The primary's bytes died with the node; a surviving
                # replica is the copy of record until repair re-materializes
                # the primary on the new owner.
                self.store.reassign_physical(key, survivors[0])
            self.reconcile(key)

    def on_node_left(self, node: str) -> None:
        """Graceful departure: *node* streams its copies out before leaving.

        Data on a graceful leaver is never at risk — the node stays online
        until its hand-offs complete — so deficits it leaves behind with no
        other surviving copy are transferred synchronously (accounted as
        hand-off bytes), and the rest repair normally from survivors.
        """
        for key in self.tracker.drop_node(node):
            if key not in self.store.directory:
                continue
            if not self.tracker.holders_of(key):
                target = self.ring.successor(key)
                size = self.store.directory.size_of(key)
                self.tracker.add_copy(key, target)
                self.stats.handoff_bytes += size
                if self.store.physical_at.get(key) == node:
                    self.store.reassign_physical(key, target)
            else:
                if self.store.physical_at.get(key) == node:
                    self.store.reassign_physical(key, self.tracker.holders_of(key)[0])
                self.reconcile(key)

    def on_node_joined(self, node: str) -> None:
        """Reconcile the arc *node* now replicates (it entered those groups)."""
        replicas = self.store.replica_count
        lo, hi = self.ring.replica_range_of(node, replicas)
        self.reconcile_range(lo, hi)

    def reconcile_range(self, lo: int, hi: int) -> None:
        """Reconcile every directory key in ``(lo, hi]``.

        Departures call this with the *pre-leave* replica range of the
        departed node: every key in that arc just gained a new tail group
        member, including keys the departed node held no copy of (its copy
        still pointer-owed or in flight), which :meth:`on_node_crashed` /
        :meth:`on_node_left` cannot see via the tracker.
        """
        for key in self.store.directory.keys_in_range(lo, hi):
            self.reconcile(key)

    # ------------------------------------------------------------------
    # per-key reconciliation

    def reconcile(self, key: int) -> None:
        """Drive *key* toward exactly ``r`` copies on its successor group.

        Missing group members get repair jobs; out-of-group copies are
        garbage-collected once at least one in-group copy exists (an
        out-of-group survivor is kept alive while it is the only source).
        """
        if key not in self.store.directory:
            return
        group = self.ring.successors(key, self.store.replica_count)
        holders = self.tracker.holders_of(key)
        in_group = [h for h in holders if h in group]
        if in_group:
            for holder in holders:
                if holder not in group:
                    self.tracker.remove_copy(key, holder)
                    self.stats.gc_bytes += self.store.directory.size_of(key)
        owner = group[0]
        for member in group:
            if self.tracker.has_copy(key, member):
                continue
            if member == owner and any(
                r.owner == member for r in self.store.pointer_table.covering(key)
            ):
                # A pending pointer adoption already owes the primary copy
                # to this node; its stabilization fetch delivers the bytes.
                continue
            self._schedule(key, member)

    def _schedule(self, key: int, target: str) -> None:
        if (key, target) in self._in_flight:
            return
        holders = self.tracker.holders_of(key)
        if not holders:
            return  # loss already recorded (or write in flight)
        size = self.store.directory.size_of(key)
        job = RepairJob(key=key, target=target, source=holders[0], size=size)
        self._in_flight[(key, target)] = job
        self.stats.scheduled += 1
        self._c_scheduled.inc()
        self._update_backlog()
        if self._tracer is not None:
            self._tracer.emit(
                REPAIR_SCHEDULE, self.sim.now, key=key, target=target,
                source=job.source, bytes=size,
            )
        self._launch(job)

    def _launch(self, job: RepairJob) -> None:
        bucket = self._buckets.get(job.source)
        if bucket is None:
            bucket = TokenBucket(rate_bytes_per_sec=self.bandwidth_bps)
            self._buckets[job.source] = bucket
        done_at = bucket.reserve(self.sim.now, job.size)
        self.sim.schedule_at(done_at, lambda: self._finish(job))

    def _finish(self, job: RepairJob) -> None:
        key, target = job.key, job.target
        if self._in_flight.get((key, target)) is not job:
            return  # superseded
        if key not in self.store.directory:
            del self._in_flight[(key, target)]  # removed or lost meanwhile
            self._update_backlog()
            return
        group = self.ring.successors(key, self.store.replica_count)
        if target not in self.ring or target not in group:
            # Target died or the group shifted past it; drop this job and
            # re-derive what the key actually needs now.
            del self._in_flight[(key, target)]
            self.stats.requeued += 1
            self._update_backlog()
            self.reconcile(key)
            return
        if not self.tracker.has_copy(key, job.source):
            # Source died mid-transfer: retry from another survivor.
            self._retry(job)
            return
        del self._in_flight[(key, target)]
        self.tracker.add_copy(key, target)
        self.stats.completed += 1
        self.stats.repaired_bytes += job.size
        self._c_completed.inc()
        self._c_repaired_bytes.inc(job.size)
        self._update_backlog()
        if target == self.ring.successor(key):
            # The owner just finished re-materializing the primary copy, so
            # the primary's physical placement converges here (a crash may
            # have parked it on a surviving secondary).
            self.store.reassign_physical(key, target)
        if self._spans:
            span = self._spans.start_trace(
                "repair.copy", self.sim.now, key=key, target=target, bytes=job.size
            )
            self._spans.finish(span, self.sim.now)
        if self._tracer is not None:
            self._tracer.emit(
                REPAIR_COMPLETE, self.sim.now, key=key, target=target,
                bytes=job.size, attempts=job.attempts,
            )

    def _retry(self, job: RepairJob) -> None:
        key, target = job.key, job.target
        survivors = self.tracker.holders_of(key)
        if not survivors:
            del self._in_flight[(key, target)]
            self._update_backlog()
            return  # loss recorded by the crash path
        job.attempts += 1
        if job.attempts > self.max_retries:
            del self._in_flight[(key, target)]
            self.stats.abandoned += 1
            self._update_backlog()
            return
        job.source = survivors[0]
        self.stats.retries += 1
        self._c_retries.inc()
        if self._tracer is not None:
            self._tracer.emit(
                REPAIR_RETRY, self.sim.now, key=key, target=target,
                source=job.source, attempt=job.attempts,
            )
        backoff = self.retry_delay * (2 ** (job.attempts - 1))
        self.sim.schedule(backoff, lambda: self._relaunch(job))

    def _relaunch(self, job: RepairJob) -> None:
        if self._in_flight.get((job.key, job.target)) is not job:
            return
        self._launch(job)

    # ------------------------------------------------------------------
    # loss ledger

    def _record_loss(self, key: int) -> None:
        size = self.store.destroy_block(key)
        if size is None:
            return
        self.stats.lost_keys += 1
        self.stats.lost_bytes += size
        self.stats.losses.append(LossRecord(key=key, time=self.sim.now, size=size))
        self._c_lost.inc()
        if self._tracer is not None:
            self._tracer.emit(REPAIR_LOSS, self.sim.now, key=key, bytes=size)

    @property
    def lost_keys(self) -> List[int]:
        return [record.key for record in self.stats.losses]

    # ------------------------------------------------------------------

    def backlog(self) -> int:
        """In-flight repair jobs (scheduled or backing off)."""
        return len(self._in_flight)

    def _update_backlog(self) -> None:
        backlog = len(self._in_flight)
        self._g_backlog.set(backlog)
        if backlog > self.stats.max_backlog:
            self.stats.max_backlog = backlog
        if self._backlog_series is not None:
            now = self.sim.now
            self._backlog_series.sample(now, float(backlog))
            # Distinct keys with a repair in flight == keys currently
            # known to be under-replicated.
            deficit = len({key for key, _target in self._in_flight})
            self._deficit_series.sample(now, float(deficit))

    def seed_from_directory(self) -> None:
        """Adopt an already-loaded image: every block sits on its group.

        Called once when a churn run starts against a pre-loaded
        deployment, before any membership change.
        """
        for key in sorted(self.store.directory.keys()):
            self.tracker.place(
                key, self.ring.successors(key, self.store.replica_count)
            )
