"""Retrieval caches for request-load balancing (Section 6).

Storage balance says nothing about *request* load: a single hot file sits
on one replica group no matter how flat the byte distribution is.  The
paper's answer is the classic DHT one — "D2 alleviates temporary hot spots
using retrieval caches like traditional DHTs [PAST], thereby balancing
both storage and request load."

This module models that layer.  When a client fetches a block, the reply
travels back through the client's gateway node, which caches the block for
a TTL; later requests may be served by any node currently caching the
block instead of the replica group.  The hotter an object, the more caches
hold it, so per-node service load flattens as popularity grows — exactly
the property the hot-spot extension experiment measures.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dht.ring import Ring


@dataclass
class RetrievalCacheStats:
    requests: int = 0
    served_by_cache: int = 0
    served_by_replica: int = 0
    insertions: int = 0
    expirations: int = 0

    @property
    def cache_fraction(self) -> float:
        return self.served_by_cache / self.requests if self.requests else 0.0


class RetrievalCacheLayer:
    """Block-level retrieval caching across the node population.

    ``serve(key, client_node, now)`` returns the node that answers the
    request: a fresh cache holder when one exists (chosen uniformly so the
    load spreads), otherwise a replica.  The client's gateway node then
    caches the block.  Per-node served-request counts are tracked for the
    hot-spot analysis.
    """

    def __init__(
        self,
        ring: Ring,
        *,
        replica_count: int = 3,
        cache_ttl: float = 300.0,
        max_cached_blocks: int = 256,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.ring = ring
        self.replica_count = replica_count
        self.cache_ttl = cache_ttl
        self.max_cached_blocks = max_cached_blocks
        self._rng = rng if rng is not None else random.Random(0)
        # key -> {node: cached_at}
        self._holders: Dict[int, Dict[str, float]] = defaultdict(dict)
        # node -> number of blocks it caches (for the capacity bound)
        self._node_blocks: Counter = Counter()
        self.served: Counter = Counter()
        self.stats = RetrievalCacheStats()

    def serve(self, key: int, client_node: str, now: float) -> str:
        """Process one request for *key* from *client_node*; returns server."""
        self.stats.requests += 1
        holders = self._fresh_holders(key, now)
        if holders:
            server = holders[self._rng.randrange(len(holders))]
            self.stats.served_by_cache += 1
        else:
            replicas = self.ring.successors(key, self.replica_count)
            server = replicas[self._rng.randrange(len(replicas))]
            self.stats.served_by_replica += 1
        self.served[server] += 1
        self._insert(key, client_node, now)
        return server

    def _fresh_holders(self, key: int, now: float) -> List[str]:
        holders = self._holders.get(key)
        if not holders:
            return []
        fresh = []
        stale = []
        for node, cached_at in holders.items():
            if now - cached_at < self.cache_ttl:
                fresh.append(node)
            else:
                stale.append(node)
        for node in stale:
            del holders[node]
            self._node_blocks[node] -= 1
            self.stats.expirations += 1
        return fresh

    def _insert(self, key: int, node: str, now: float) -> None:
        holders = self._holders[key]
        if node not in holders and self._node_blocks[node] >= self.max_cached_blocks:
            return  # node's cache is full; skip (simple admission policy)
        if node not in holders:
            self._node_blocks[node] += 1
            self.stats.insertions += 1
        holders[node] = now

    # ------------------------------------------------------------------
    # analysis helpers

    def served_counts(self) -> Dict[str, int]:
        counts = dict(self.served)
        for name in self.ring.names():
            counts.setdefault(name, 0)
        return counts

    def hot_spot_factor(self) -> float:
        """Max served-requests over mean — 1.0 means perfectly spread."""
        counts = list(self.served_counts().values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0


def replica_only_service(
    ring: Ring,
    requests: Sequence[Tuple[int, str]],
    *,
    replica_count: int = 3,
    rng: Optional[random.Random] = None,
) -> Counter:
    """Baseline: every request served by a random replica (no caching)."""
    rng = rng if rng is not None else random.Random(0)
    served: Counter = Counter()
    for key, _client in requests:
        replicas = ring.successors(key, replica_count)
        served[replicas[rng.randrange(len(replicas))]] += 1
    for name in ring.names():
        served.setdefault(name, 0)
    return served
