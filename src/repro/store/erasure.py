"""Erasure-coded redundancy as an alternative to whole-block replication.

Section 3: "Erasure coding (with r fragments) could be used instead of
whole block replication to save storage space at the cost of read/write
performance and complexity.  However, whether we use replication or
erasure coding, defragmenting k objects so that they reside on r nodes
instead of k*r nodes achieves a similar availability improvement."

This module provides the (m, k) erasure model — a block is split into
``k`` data fragments encoded into ``m`` total fragments placed on the
``m`` successors of its key; any ``k`` fragments reconstruct the block —
plus the availability and cost arithmetic, so the extension experiment can
verify the paper's claim that D2's advantage is redundancy-scheme
agnostic.

No actual coding math is needed at simulation granularity: what matters is
*which nodes hold fragments* and *how many must be reachable*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set

from repro.dht.ring import Ring


@dataclass(frozen=True)
class ErasureConfig:
    """(m, k) code: *total* fragments stored, *needed* to reconstruct.

    Replication with r copies is the degenerate code (m=r, k=1).
    """

    total: int
    needed: int

    def __post_init__(self) -> None:
        if self.needed < 1:
            raise ValueError("needed must be at least 1")
        if self.total < self.needed:
            raise ValueError("total fragments must be >= needed")

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per byte of data (replication r=3 -> 3.0)."""
        return self.total / self.needed

    def fragment_size(self, block_size: int) -> int:
        """Bytes per fragment for a block of *block_size* bytes."""
        return -(-block_size // self.needed)

    @classmethod
    def replication(cls, copies: int) -> "ErasureConfig":
        return cls(total=copies, needed=1)


def fragment_holders(ring: Ring, key: int, config: ErasureConfig) -> List[str]:
    """Nodes holding a block's fragments: its ``m`` distinct successors.

    Like replicas, fragments live on consecutive successors so that D2's
    locality argument carries over unchanged: a task's blocks still map to
    a handful of *fragment groups*.
    """
    return ring.successors(key, config.total)


def key_available_erasure(
    ring: Ring, key: int, config: ErasureConfig, alive: Set[str]
) -> bool:
    """A block is readable while >= k of its m fragment holders are up."""
    holders = fragment_holders(ring, key, config)
    up = sum(1 for h in holders if h in alive)
    return up >= config.needed


def group_availability_probability(
    config: ErasureConfig, node_availability: float
) -> float:
    """Analytic P(block readable) with i.i.d. node availability *p*.

    P = sum_{i=k}^{m} C(m, i) p^i (1-p)^{m-i} — the standard (m, k) code
    availability, used by tests to validate the simulation and by
    capacity-planning helpers.
    """
    if not 0.0 <= node_availability <= 1.0:
        raise ValueError("node availability must be a probability")
    p = node_availability
    m, k = config.total, config.needed
    return sum(
        math.comb(m, i) * p**i * (1.0 - p) ** (m - i) for i in range(k, m + 1)
    )


def task_availability_probability(
    config: ErasureConfig, node_availability: float, groups: int
) -> float:
    """Analytic P(task succeeds) needing *groups* independent groups.

    This is the paper's Section 8.2 back-of-envelope (p^10..p^23 vs p^2..
    p^4) generalized to erasure codes: D2's improvement comes from needing
    fewer groups, whatever redundancy each group uses internally.
    """
    return group_availability_probability(config, node_availability) ** groups


def equivalent_configs(storage_budget: float, max_total: int = 12) -> List[ErasureConfig]:
    """All (m, k) codes whose storage overhead is within the budget.

    Useful for exploring the replication-vs-coding trade at fixed cost:
    e.g. budget 3.0 admits 3x replication, (6, 2), (9, 3), ...
    """
    configs = []
    for total in range(1, max_total + 1):
        for needed in range(1, total + 1):
            config = ErasureConfig(total, needed)
            if config.storage_overhead <= storage_budget + 1e-9:
                configs.append(config)
    return configs
