"""D2-Store: block directory, pointers, migration, redundancy, caching."""

from repro.store.block_store import BlockDirectory
from repro.store.erasure import ErasureConfig, key_available_erasure
from repro.store.migration import StorageCoordinator, TrafficLedger
from repro.store.pointers import PointerRange, PointerTable
from repro.store.retrieval_cache import RetrievalCacheLayer

__all__ = [
    "BlockDirectory",
    "StorageCoordinator",
    "TrafficLedger",
    "PointerRange",
    "PointerTable",
    "ErasureConfig",
    "key_available_erasure",
    "RetrievalCacheLayer",
]
