"""D2-FS block model (Figure 2 of the paper).

D2-FS maintains four kinds of blocks, all at most 8 KB:

* the **root block** of a volume (mutable, updated in place, signed),
* **directory blocks** holding name → (key, content-hash) entries,
* **file inodes** holding per-file metadata and data-block references,
* **data blocks**.

All blocks except the root are immutable — an update writes new versions
under new keys (the 4-byte version field of the key encoding) and the
metadata path up to the root is re-written so readers always see an
internally consistent volume.

This reproduction never materializes payload bytes; blocks carry sizes and
synthetic content hashes (sufficient for the integrity-chain invariants the
tests check and for all traffic accounting).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

BLOCK_SIZE = 8192
# Files at or below this size are stored inline in their inode ("when the
# amount of file data in a data block is small enough, D2-FS stores the
# data directly in the parent metadata block").
INLINE_DATA_THRESHOLD = 512
# Bytes a directory entry occupies in a directory block (name, slot, key,
# content hash, flags) — sets how many entries fit per 8 KB block.
DIRECTORY_ENTRY_BYTES = 64
INODE_BASE_BYTES = 256
# Each data-block reference in an inode: 64-byte key + 20-byte hash + size.
BLOCK_REF_BYTES = 96


class BlockKind(enum.Enum):
    ROOT = "root"
    DIRECTORY = "directory"
    INODE = "inode"
    DATA = "data"


def synthetic_content_hash(identity: str, version: int) -> int:
    """Deterministic stand-in for a block's content hash.

    Real D2 hashes the 8 KB payload; hashing the logical identity plus the
    version preserves the property the integrity chain needs — the hash
    changes exactly when the content does.
    """
    digest = hashlib.sha256(f"{identity}#{version}".encode("utf-8")).digest()
    return int.from_bytes(digest[:20], "big")


@dataclass(frozen=True)
class BlockRef:
    """A pointer stored in a metadata block: child key + integrity hash.

    Keys in D2 are not content hashes (they encode name-space position), so
    every metadata block keeps the content hash of each block it points to;
    signing the root then transitively signs all metadata (Section 3).
    """

    key: int
    content_hash: int
    size: int


def data_block_count(file_size: int) -> int:
    """Number of data blocks for a file of *file_size* bytes.

    Small files are inlined into the inode and use zero data blocks.
    """
    if file_size < 0:
        raise ValueError(f"negative file size {file_size}")
    if file_size <= INLINE_DATA_THRESHOLD:
        return 0
    return -(-file_size // BLOCK_SIZE)  # ceil division


def data_block_sizes(file_size: int) -> List[int]:
    """Sizes of each data block; the last block may be partial."""
    count = data_block_count(file_size)
    if count == 0:
        return []
    sizes = [BLOCK_SIZE] * (count - 1)
    last = file_size - BLOCK_SIZE * (count - 1)
    sizes.append(last)
    return sizes


@lru_cache(maxsize=8192)
def data_block_sizes_table(file_size: int) -> Tuple[int, ...]:
    """Immutable, process-cached form of :func:`data_block_sizes`.

    Replay hot paths size the same file populations millions of times; the
    tuple is computed once per distinct file size and shared, eliminating a
    per-read list allocation.  Values are identical to
    ``tuple(data_block_sizes(file_size))``.
    """
    return tuple(data_block_sizes(file_size))


def blocks_covering(offset: int, length: int, file_size: int) -> range:
    """1-based data-block numbers a byte range ``[offset, offset+length)`` touches.

    Returns an empty range for inlined files (the inode carries the data).
    """
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    if file_size <= INLINE_DATA_THRESHOLD or length == 0 or offset >= file_size:
        return range(0)
    end = min(offset + length, file_size)
    first = offset // BLOCK_SIZE + 1
    last = (end - 1) // BLOCK_SIZE + 1
    return range(first, last + 1)


def inode_size(file_size: int) -> int:
    """On-DHT size of an inode block, including inlined data if small."""
    if file_size <= INLINE_DATA_THRESHOLD:
        return min(BLOCK_SIZE, INODE_BASE_BYTES + file_size)
    refs = data_block_count(file_size) * BLOCK_REF_BYTES
    return min(BLOCK_SIZE, INODE_BASE_BYTES + refs)


def directory_block_count(n_entries: int) -> int:
    """Number of 8 KB blocks a directory's entry table occupies."""
    if n_entries <= 0:
        return 1
    per_block = BLOCK_SIZE // DIRECTORY_ENTRY_BYTES
    return -(-n_entries // per_block)


def directory_block_sizes(n_entries: int) -> List[int]:
    """Sizes of a directory's metadata blocks."""
    count = directory_block_count(n_entries)
    total = max(DIRECTORY_ENTRY_BYTES, n_entries * DIRECTORY_ENTRY_BYTES)
    sizes = [BLOCK_SIZE] * (count - 1)
    sizes.append(total - BLOCK_SIZE * (count - 1))
    return sizes


@dataclass
class RootBlock:
    """A volume's mutable, signed root block (updated in place)."""

    volume: bytes
    version: int = 0
    directory_ref: Optional[BlockRef] = None
    signature: Optional[int] = None

    def sign(self, publisher: str) -> None:
        """Simulated publisher signature over (volume, version, root ref)."""
        payload = f"{self.volume.hex()}:{self.version}:{self.directory_ref}"
        digest = hashlib.sha256(f"{publisher}|{payload}".encode("utf-8")).digest()
        self.signature = int.from_bytes(digest[:20], "big")

    def verify(self, publisher: str) -> bool:
        if self.signature is None:
            return False
        payload = f"{self.volume.hex()}:{self.version}:{self.directory_ref}"
        digest = hashlib.sha256(f"{publisher}|{payload}".encode("utf-8")).digest()
        return self.signature == int.from_bytes(digest[:20], "big")
