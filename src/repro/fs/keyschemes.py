"""Key-assignment schemes: D2 locality keys vs consistent-hashing baselines.

The three systems the paper compares differ *only* in how blocks map to DHT
keys; the file-system organization above them is identical (Section 7: "the
traditional DHT we compare D2 against uses the same code base ... but uses
hashed keys").  Each scheme maps a block's *logical identity* — its storage
location in the namespace (which rename never changes, mimicking content
hashes) plus block number and version — to a 64-byte ring key:

* :class:`D2KeyScheme` — the Figure-4 locality-preserving encoding: blocks
  of one file, and files of one directory, get contiguous keys.
* :class:`TraditionalKeyScheme` — every block hashes to an independent
  uniform key (CFS-style; one key per 8 KB block).
* :class:`TraditionalFileKeyScheme` — all blocks of a file share one hashed
  key (PAST-style; a whole file lands on one replica group, but distinct
  files scatter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Tuple

from repro.core.keys import compose_block_key, encode_path_key, version_hash, volume_id
from repro.dht.consistent_hashing import hashed_key
from repro.fs.namespace import Directory, FileNode


def storage_identity(slot_path: Tuple[int, ...], overflow: Tuple[str, ...]) -> str:
    """Stable logical identity of a namespace object.

    Derived from the object's *original* storage location, which rename
    preserves — so, like a content hash, it never changes when the file
    moves.
    """
    slots = ".".join(str(s) for s in slot_path)
    extra = "/".join(overflow)
    return f"{slots}|{extra}"


class KeyScheme(ABC):
    """Maps FS blocks to ring keys.  One instance per volume per system."""

    name: str

    @abstractmethod
    def file_block_key(self, node: FileNode, block_number: int, version: int) -> int:
        """Key of one block of a file (block 0 is the inode)."""

    @abstractmethod
    def directory_block_key(self, directory: Directory, block_number: int, version: int) -> int:
        """Key of one metadata block of a directory."""

    @abstractmethod
    def root_key(self) -> int:
        """Key of the volume's root block (stable; updated in place)."""

    def file_key_maker(self, node: FileNode) -> Callable[[int, int], int]:
        """Per-file key function ``(block_number, version) -> key``.

        Keys every block of one file without redoing the per-file work
        (prefix encoding, identity hashing) on each call — the replay hot
        path keys every block of every read.  The default defers to
        :meth:`file_block_key`; schemes override it with a hoisted prefix.
        Results are always identical to calling :meth:`file_block_key`.
        """
        return lambda block_number, version: self.file_block_key(node, block_number, version)


class D2KeyScheme(KeyScheme):
    """Locality-preserving keys (the paper's contribution, Section 4.2)."""

    name = "d2"

    def __init__(self, volume_name: str) -> None:
        self.volume_name = volume_name
        self.volume = volume_id(volume_name)

    def file_block_key(self, node: FileNode, block_number: int, version: int) -> int:
        return encode_path_key(
            self.volume,
            node.slot_path,
            overflow_components=node.overflow,
            block_number=block_number,
            version=version_hash(version),
        )

    def directory_block_key(self, directory: Directory, block_number: int, version: int) -> int:
        return encode_path_key(
            self.volume,
            directory.slot_path,
            overflow_components=directory.overflow,
            block_number=block_number,
            version=version_hash(version),
        )

    def file_key_maker(self, node: FileNode) -> Callable[[int, int], int]:
        # Encode the volume/slot/remainder prefix once; per block only the
        # trailing block-number and version fields change.
        prefix = encode_path_key(
            self.volume, node.slot_path, overflow_components=node.overflow
        )
        return lambda block_number, version: compose_block_key(
            prefix, block_number, version_hash(version)
        )

    def root_key(self) -> int:
        # Block 0 / version 0 at the empty slot path: the volume's lowest
        # key, immediately before all of its contents on the ring.
        return encode_path_key(self.volume, (), block_number=0, version=0)


class TraditionalKeyScheme(KeyScheme):
    """One uniform hashed key per block (the paper's *traditional* DHT)."""

    name = "traditional"

    def __init__(self, volume_name: str) -> None:
        self.volume_name = volume_name

    def file_block_key(self, node: FileNode, block_number: int, version: int) -> int:
        ident = storage_identity(node.slot_path, node.overflow)
        return hashed_key(f"{self.volume_name}|{ident}|b{block_number}|v{version}")

    def file_key_maker(self, node: FileNode) -> Callable[[int, int], int]:
        # Build the volume|identity prefix string once per file.
        prefix = f"{self.volume_name}|{storage_identity(node.slot_path, node.overflow)}"
        return lambda block_number, version: hashed_key(f"{prefix}|b{block_number}|v{version}")

    def directory_block_key(self, directory: Directory, block_number: int, version: int) -> int:
        ident = storage_identity(directory.slot_path, directory.overflow)
        return hashed_key(f"{self.volume_name}|{ident}|d{block_number}|v{version}")

    def root_key(self) -> int:
        return hashed_key(f"{self.volume_name}|<root>")


class TraditionalFileKeyScheme(KeyScheme):
    """One hashed key per *file* (the paper's *traditional-file* DHT).

    Every block of a file shares the file's key, so the whole file lives on
    one replica group and a single lookup locates it; partial reads and
    writes still transfer only the touched blocks (Section 9.1).
    Directory metadata likewise keys by directory.
    """

    name = "traditional-file"

    def __init__(self, volume_name: str) -> None:
        self.volume_name = volume_name

    def file_block_key(self, node: FileNode, block_number: int, version: int) -> int:
        ident = storage_identity(node.slot_path, node.overflow)
        return hashed_key(f"{self.volume_name}|{ident}|file")

    def file_key_maker(self, node: FileNode) -> Callable[[int, int], int]:
        # One key per file: hash it once, every block reuses it.
        key = self.file_block_key(node, 0, 0)
        return lambda _block_number, _version: key

    def directory_block_key(self, directory: Directory, block_number: int, version: int) -> int:
        ident = storage_identity(directory.slot_path, directory.overflow)
        return hashed_key(f"{self.volume_name}|{ident}|dir")

    def root_key(self) -> int:
        return hashed_key(f"{self.volume_name}|<root>")


def make_scheme(system: str, volume_name: str) -> KeyScheme:
    """Factory keyed by the system names used throughout the evaluation."""
    schemes = {
        "d2": D2KeyScheme,
        "traditional": TraditionalKeyScheme,
        "traditional-file": TraditionalFileKeyScheme,
    }
    try:
        return schemes[system](volume_name)
    except KeyError:
        raise ValueError(
            f"unknown system {system!r}; expected one of {sorted(schemes)}"
        ) from None
