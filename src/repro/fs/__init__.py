"""D2-FS: blocks, namespace, key schemes, FS layer, write-back cache."""

from repro.fs.blocks import BLOCK_SIZE, BlockKind
from repro.fs.fslayer import BlockOp, DhtFileSystem, apply_ops
from repro.fs.keyschemes import (
    D2KeyScheme,
    KeyScheme,
    TraditionalFileKeyScheme,
    TraditionalKeyScheme,
    make_scheme,
)
from repro.fs.namespace import Namespace, NamespaceError
from repro.fs.writeback_cache import WritebackCache

__all__ = [
    "BLOCK_SIZE",
    "BlockKind",
    "BlockOp",
    "DhtFileSystem",
    "apply_ops",
    "D2KeyScheme",
    "KeyScheme",
    "TraditionalFileKeyScheme",
    "TraditionalKeyScheme",
    "make_scheme",
    "Namespace",
    "NamespaceError",
    "WritebackCache",
]
