"""Integrity chain: signing the root transitively signs all metadata.

Section 3: D2-FS keys are not content hashes (they encode name-space
position), so integrity comes from a hash chain instead — every metadata
block stores the content hash of each block it points to, and the
publisher signs the root block.  A reader can then verify any block by
walking hashes downward from the signed root.

This module builds that chain over a :class:`DhtFileSystem`'s current
state and verifies fetched snapshots, detecting any tampering (a modified
block, a swapped child, a replayed old version) without trusting the
storage nodes.  Hashes are over logical content descriptors, which is
exactly as strong at simulation granularity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.fs.blocks import data_block_count
from repro.fs.fslayer import DhtFileSystem
from repro.fs.namespace import Directory, FileNode


class IntegrityError(Exception):
    """Raised when verification fails (tampering or corruption)."""


def _h(*parts: object) -> str:
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class FileManifest:
    """The verifiable description of one file."""

    name: str
    size: int
    version: int
    block_hashes: Tuple[str, ...]

    def content_hash(self) -> str:
        return _h("file", self.name, self.size, self.version, *self.block_hashes)


@dataclass
class DirectoryManifest:
    """The verifiable description of one directory."""

    name: str
    version: int
    entries: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    # name -> (kind, child content hash); kind in {"file", "dir"}

    def content_hash(self) -> str:
        items = [
            _h("entry", name, kind, child_hash)
            for name, (kind, child_hash) in sorted(self.entries.items())
        ]
        return _h("dir", self.name, self.version, *items)


@dataclass
class VolumeSnapshot:
    """A complete signed snapshot of a volume's metadata tree."""

    publisher: str
    root_version: int
    root_hash: str
    signature: str
    directories: Dict[str, DirectoryManifest] = field(default_factory=dict)
    files: Dict[str, FileManifest] = field(default_factory=dict)


def _file_manifest(path: str, node: FileNode) -> FileManifest:
    hashes = []
    for number in range(1, data_block_count(node.size) + 1):
        version = node.block_versions.get(number, node.version)
        hashes.append(_h("block", path, number, version))
    return FileManifest(
        name=path.rsplit("/", 1)[-1],
        size=node.size,
        version=node.version,
        block_hashes=tuple(hashes),
    )


def snapshot_volume(fs: DhtFileSystem, publisher: str) -> VolumeSnapshot:
    """Build the hash chain bottom-up and sign the root.

    Mirrors what D2-FS does on every flush: each directory block carries
    its children's hashes, so one signature over the root hash covers the
    whole tree.
    """
    directories: Dict[str, DirectoryManifest] = {}
    files: Dict[str, FileManifest] = {}

    def walk(path: str, directory: Directory) -> str:
        manifest = DirectoryManifest(name=directory.name, version=directory.version)
        base = path.rstrip("/")
        for name, child in sorted(directory.children.items()):
            child_path = f"{base}/{name}"
            if isinstance(child, Directory):
                manifest.entries[name] = ("dir", walk(child_path, child))
            else:
                file_manifest = _file_manifest(child_path, child)
                files[child_path] = file_manifest
                manifest.entries[name] = ("file", file_manifest.content_hash())
        directories[path or "/"] = manifest
        return manifest.content_hash()

    root_hash = walk("/", fs.namespace.root)
    signature = _h("sign", publisher, fs.root_version, root_hash)
    return VolumeSnapshot(
        publisher=publisher,
        root_version=fs.root_version,
        root_hash=root_hash,
        signature=signature,
        directories=directories,
        files=files,
    )


def verify_snapshot(snapshot: VolumeSnapshot, publisher: str) -> bool:
    """Verify the full chain: signature, root hash, and every directory.

    Raises :class:`IntegrityError` naming the first inconsistency; returns
    True when everything checks out.
    """
    expected_signature = _h("sign", publisher, snapshot.root_version, snapshot.root_hash)
    if snapshot.signature != expected_signature:
        raise IntegrityError("root signature does not verify")

    recomputed: Dict[str, str] = {}

    def recompute(path: str) -> str:
        manifest = snapshot.directories.get(path)
        if manifest is None:
            raise IntegrityError(f"missing directory manifest for {path!r}")
        fresh = DirectoryManifest(name=manifest.name, version=manifest.version)
        base = path.rstrip("/")
        for name, (kind, claimed) in sorted(manifest.entries.items()):
            child_path = f"{base}/{name}"
            if kind == "dir":
                actual = recompute(child_path)
            elif kind == "file":
                file_manifest = snapshot.files.get(child_path)
                if file_manifest is None:
                    raise IntegrityError(f"missing file manifest for {child_path!r}")
                actual = file_manifest.content_hash()
            else:
                raise IntegrityError(f"unknown entry kind {kind!r}")
            if actual != claimed:
                raise IntegrityError(
                    f"hash mismatch at {child_path!r}: chain is broken"
                )
            fresh.entries[name] = (kind, actual)
        recomputed[path] = fresh.content_hash()
        return recomputed[path]

    root = recompute("/")
    if root != snapshot.root_hash:
        raise IntegrityError("root hash does not match directory tree")
    return True


def verify_block(
    snapshot: VolumeSnapshot, path: str, block_number: int, observed_version: int
) -> bool:
    """Verify a fetched data block against the signed snapshot.

    A storage node serving a stale or substituted version fails this check
    — the defense the paper gets from storing hashes alongside pointers.
    """
    manifest = snapshot.files.get(path)
    if manifest is None:
        raise IntegrityError(f"no manifest for {path!r}")
    if not 1 <= block_number <= len(manifest.block_hashes):
        raise IntegrityError(f"{path!r} has no block {block_number}")
    expected = manifest.block_hashes[block_number - 1]
    observed = _h("block", path, block_number, observed_version)
    return observed == expected
