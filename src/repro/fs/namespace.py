"""Directory-tree namespace with per-directory 2-byte slot allocation.

Every file or directory created inside a directory is assigned an unused
2-byte *slot* (Section 4.2: "an unused value is found by examining the
existing file list in the directory block"), and the concatenation of slots
from the root is the file's position in the key encoding.  Two properties
matter and are enforced here:

* **Slots are never reused while their keys may be live.**  A rename keeps
  the object's original keys ("the file's new parent directory simply
  points to the file's original location"), so a renamed-away slot stays
  reserved in its original parent; reusing it would collide with the
  renamed file's blocks.
* **Depth overflow.**  Only 12 path levels fit the key; deeper components
  are carried as *overflow* strings and hashed into the key's remainder
  field, sacrificing locality past level 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

from repro.core.keys import FIRST_USABLE_SLOT, MAX_PATH_LEVELS, SLOT_SPACE


class NamespaceError(Exception):
    """Raised on invalid path operations (missing files, duplicates, ...)."""


def split_path(path: str) -> List[str]:
    """Normalize an absolute path into its components."""
    if not path.startswith("/"):
        raise NamespaceError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


@dataclass
class FileNode:
    """A regular file.  ``slot_path``/``overflow`` locate its blocks forever.

    ``block_versions`` maps data-block number → the file version at which
    that block was last rewritten, so readers fetch the live version of
    every block even when later writes only touched part of the file.
    """

    name: str
    slot_path: Tuple[int, ...]
    overflow: Tuple[str, ...]
    size: int = 0
    version: int = 0
    block_versions: Dict[int, int] = field(default_factory=dict)


@dataclass
class Directory:
    """A directory and its slot table."""

    name: str
    slot_path: Tuple[int, ...]
    overflow: Tuple[str, ...]
    version: int = 0
    children: Dict[str, Union["Directory", FileNode]] = field(default_factory=dict)
    child_slots: Dict[str, int] = field(default_factory=dict)
    _used_slots: set = field(default_factory=set)
    _freed_slots: List[int] = field(default_factory=list)
    _next_slot: int = FIRST_USABLE_SLOT

    def allocate_slot(self) -> int:
        """An unused slot, preferring freed ones (the paper examines the
        existing file list for an unused value); raises when full."""
        while self._freed_slots:
            slot = self._freed_slots.pop()
            if slot not in self._used_slots:
                self._used_slots.add(slot)
                return slot
        if len(self._used_slots) >= SLOT_SPACE - FIRST_USABLE_SLOT:
            raise NamespaceError(f"directory {self.name!r} is full (64K entries)")
        slot = self._next_slot
        while slot in self._used_slots:
            slot += 1
            if slot >= SLOT_SPACE:
                slot = FIRST_USABLE_SLOT
        self._used_slots.add(slot)
        self._next_slot = slot + 1 if slot + 1 < SLOT_SPACE else FIRST_USABLE_SLOT
        return slot

    def release_slot(self, slot: int) -> None:
        """Free a slot whose keys are provably dead (true delete, not rename)."""
        if slot in self._used_slots:
            self._used_slots.discard(slot)
            self._freed_slots.append(slot)

    @property
    def entry_count(self) -> int:
        return len(self.children)


class Namespace:
    """The mutable directory tree of one D2 volume."""

    def __init__(self) -> None:
        self.root = Directory(name="/", slot_path=(), overflow=())
        self.renames = 0

    # ------------------------------------------------------------------
    # resolution

    def resolve(self, path: str) -> Union[Directory, FileNode]:
        """Walk *path* from the root; raises NamespaceError when missing."""
        node: Union[Directory, FileNode] = self.root
        for part in split_path(path):
            if not isinstance(node, Directory):
                raise NamespaceError(f"{path!r}: not a directory at {part!r}")
            try:
                node = node.children[part]
            except KeyError:
                raise NamespaceError(f"{path!r}: no entry {part!r}") from None
        return node

    def resolve_file(self, path: str) -> FileNode:
        node = self.resolve(path)
        if not isinstance(node, FileNode):
            raise NamespaceError(f"{path!r} is a directory, not a file")
        return node

    def resolve_dir(self, path: str) -> Directory:
        node = self.resolve(path)
        if not isinstance(node, Directory):
            raise NamespaceError(f"{path!r} is a file, not a directory")
        return node

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except NamespaceError:
            return False

    def parent_of(self, path: str) -> Tuple[Directory, str]:
        parts = split_path(path)
        if not parts:
            raise NamespaceError("the root has no parent")
        parent = self.resolve_dir("/" + "/".join(parts[:-1]))
        return parent, parts[-1]

    def ancestors_of(self, path: str) -> List[Directory]:
        """Directories from the root down to the parent of *path*.

        These are exactly the metadata blocks re-versioned on every flushed
        write (Section 3: "inserts new versions of all the metadata blocks
        along the full path to the root").
        """
        parts = split_path(path)
        chain = [self.root]
        node: Union[Directory, FileNode] = self.root
        for part in parts[:-1]:
            if not isinstance(node, Directory):
                raise NamespaceError(f"{path!r}: not a directory at {part!r}")
            node = node.children[part]
            if not isinstance(node, Directory):
                raise NamespaceError(f"{path!r}: {part!r} is not a directory")
            chain.append(node)
        return chain

    # ------------------------------------------------------------------
    # mutation

    def _storage_location(
        self, parent: Directory, slot: int, name: str
    ) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
        """Where a fresh child's keys live, honoring the 12-level limit."""
        if len(parent.slot_path) < MAX_PATH_LEVELS and not parent.overflow:
            return parent.slot_path + (slot,), ()
        return parent.slot_path, parent.overflow + (name,)

    def mkdir(self, path: str) -> Directory:
        parent, name = self.parent_of(path)
        if name in parent.children:
            raise NamespaceError(f"{path!r} already exists")
        slot = parent.allocate_slot()
        slot_path, overflow = self._storage_location(parent, slot, name)
        child = Directory(name=name, slot_path=slot_path, overflow=overflow)
        parent.children[name] = child
        parent.child_slots[name] = slot
        return child

    def makedirs(self, path: str) -> Directory:
        """mkdir -p: create missing ancestors, return the leaf directory."""
        parts = split_path(path)
        current = "/"
        node: Directory = self.root
        for part in parts:
            current = current.rstrip("/") + "/" + part
            existing = node.children.get(part)
            if existing is None:
                node = self.mkdir(current)
            elif isinstance(existing, Directory):
                node = existing
            else:
                raise NamespaceError(f"{current!r} exists and is a file")
        return node

    def create_file(self, path: str, size: int = 0) -> FileNode:
        parent, name = self.parent_of(path)
        if name in parent.children:
            raise NamespaceError(f"{path!r} already exists")
        slot = parent.allocate_slot()
        slot_path, overflow = self._storage_location(parent, slot, name)
        node = FileNode(name=name, slot_path=slot_path, overflow=overflow, size=size)
        parent.children[name] = node
        parent.child_slots[name] = slot
        return node

    def remove(self, path: str) -> Union[Directory, FileNode]:
        """Unlink a file or an empty directory; frees its slot."""
        parent, name = self.parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise NamespaceError(f"{path!r} does not exist")
        if isinstance(node, Directory) and node.children:
            raise NamespaceError(f"{path!r} is a non-empty directory")
        slot = parent.child_slots.pop(name)
        del parent.children[name]
        # The slot may be reused only when the dying object's keys embedded
        # it: either the object was created here (its last slot-path entry
        # is this slot) or it is an overflow child whose keys embed names,
        # not slots.  A renamed-in object's keys use its *original* parent's
        # slot, so this slot never appeared in any key and is safe to free;
        # a renamed-away object's slot was already preserved by rename().
        if node.overflow or (node.slot_path and node.slot_path[-1] == slot):
            parent.release_slot(slot)
        return node

    def rename(self, src: str, dst: str) -> Union[Directory, FileNode]:
        """Move *src* to *dst*, keeping the object's original keys.

        Only the two parent directories' metadata changes; none of the
        object's blocks move (Section 4.2).  The vacated slot in the source
        parent stays reserved because the object's keys still use it.
        """
        node = self.resolve(src)
        src_parent, src_name = self.parent_of(src)
        dst_parent, dst_name = self.parent_of(dst)
        if dst_name in dst_parent.children:
            raise NamespaceError(f"{dst!r} already exists")
        if isinstance(node, Directory):
            # Renaming a directory above dst into itself would loop.
            probe = dst_parent
            while True:
                if probe is node:
                    raise NamespaceError("cannot rename a directory into itself")
                if probe is self.root:
                    break
                probe = self._find_parent_dir(probe)
        del src_parent.children[src_name]
        src_parent.child_slots.pop(src_name)
        # NOTE: the slot is deliberately NOT released — the moved object's
        # keys still embed it.
        dst_slot = dst_parent.allocate_slot()
        node.name = dst_name
        dst_parent.children[dst_name] = node
        dst_parent.child_slots[dst_name] = dst_slot
        self.renames += 1
        return node

    def _find_parent_dir(self, target: Directory) -> Directory:
        stack = [self.root]
        while stack:
            current = stack.pop()
            for child in current.children.values():
                if child is target:
                    return current
                if isinstance(child, Directory):
                    stack.append(child)
        raise NamespaceError("directory detached from tree")

    # ------------------------------------------------------------------
    # traversal

    def walk(self) -> Iterator[Tuple[str, Union[Directory, FileNode]]]:
        """Preorder traversal yielding (path, node), root first."""
        stack: List[Tuple[str, Union[Directory, FileNode]]] = [("/", self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            if isinstance(node, Directory):
                base = path.rstrip("/")
                for name in sorted(node.children, reverse=True):
                    stack.append((f"{base}/{name}", node.children[name]))

    def files(self) -> Iterator[Tuple[str, FileNode]]:
        for path, node in self.walk():
            if isinstance(node, FileNode):
                yield path, node

    def total_file_bytes(self) -> int:
        return sum(node.size for _, node in self.files())

    def file_count(self) -> int:
        return sum(1 for _ in self.files())
