"""D2-FS: translating file-system operations into keyed block operations.

This layer owns the namespace, per-file versioning, and the CFS-like
metadata discipline of Section 3:

* all blocks except the root are immutable — every flushed change writes
  *new versions* (new keys) of the changed data blocks, the file's inode,
  and every directory block on the path up to the root;
* the root block is updated in place and (conceptually) signed, which
  transitively signs all metadata via stored content hashes;
* superseded block versions are removed after a grace period so stale
  (≤ 30 s) readers can still finish.

The layer is *scheme-parameterized*: the same code drives D2 and both
consistent-hashing baselines, differing only in the
:class:`repro.fs.keyschemes.KeyScheme` used — exactly how the paper built
its comparison systems from one code base.

Operations return the list of :class:`BlockOp` they imply; callers replay
those against a :class:`repro.store.migration.StorageCoordinator` (see
:func:`apply_ops`), feed them to the latency harness, or pass them through
the write-back cache.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.fs.blocks import (
    BLOCK_SIZE,
    INLINE_DATA_THRESHOLD,
    BlockKind,
    blocks_covering,
    data_block_count,
    data_block_sizes,
    directory_block_sizes,
    inode_size,
)
from repro.fs.keyschemes import KeyScheme, storage_identity
from repro.fs.namespace import Directory, FileNode, Namespace

ROOT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class BlockOp:
    """One block-level operation implied by a file-system call.

    ``ident`` is the block's version-independent logical identity (used by
    the write-back cache to coalesce rewrites); ``key`` is the ring key of
    this specific version under the active scheme.
    """

    action: str  # 'put' | 'get' | 'remove'
    key: int
    size: int
    kind: BlockKind
    ident: str
    version: int = 0

    @property
    def is_metadata(self) -> bool:
        return self.kind is not BlockKind.DATA


class DhtFileSystem:
    """One writer's view of a D2 (or baseline) file-system volume."""

    def __init__(self, scheme: KeyScheme, publisher: str = "publisher") -> None:
        self.scheme = scheme
        self.namespace = Namespace()
        self.publisher = publisher
        self.root_version = 0

    # ------------------------------------------------------------------
    # helpers

    def _ident(self, slot_path: Tuple[int, ...], overflow: Tuple[str, ...], tag: str) -> str:
        return f"{storage_identity(slot_path, overflow)}:{tag}"

    def _file_ident(self, node: FileNode, block_number: int) -> str:
        return self._ident(node.slot_path, node.overflow, f"b{block_number}")

    def _dir_ident(self, directory: Directory, block_number: int) -> str:
        return self._ident(directory.slot_path, directory.overflow, f"d{block_number}")

    def _root_op(self) -> BlockOp:
        """In-place root update (same key every time)."""
        self.root_version += 1
        return BlockOp(
            action="put",
            key=self.scheme.root_key(),
            size=ROOT_BLOCK_SIZE,
            kind=BlockKind.ROOT,
            ident="<root>",
            version=0,
        )

    def _reversion_directory(self, directory: Directory) -> List[BlockOp]:
        """Write new versions of a directory's metadata blocks, retire old.

        Returns puts of every metadata block at the bumped version plus
        removes of the previous version's blocks.
        """
        old_version = directory.version
        old_sizes = directory_block_sizes(directory.entry_count)
        directory.version += 1
        ops: List[BlockOp] = []
        for number, size in enumerate(directory_block_sizes(directory.entry_count)):
            ops.append(
                BlockOp(
                    action="put",
                    key=self.scheme.directory_block_key(directory, number, directory.version),
                    size=size,
                    kind=BlockKind.DIRECTORY,
                    ident=self._dir_ident(directory, number),
                    version=directory.version,
                )
            )
        if old_version > 0:  # version 0 means the directory was never flushed
            for number, size in enumerate(old_sizes):
                ops.append(
                    BlockOp(
                        action="remove",
                        key=self.scheme.directory_block_key(directory, number, old_version),
                        size=size,
                        kind=BlockKind.DIRECTORY,
                        ident=self._dir_ident(directory, number),
                        version=old_version,
                    )
                )
        return ops

    def _reversion_path(self, path: str) -> List[BlockOp]:
        """Re-version every directory from the root to *path*'s parent."""
        ops: List[BlockOp] = []
        for directory in reversed(self.namespace.ancestors_of(path)):
            ops.extend(self._reversion_directory(directory))
        ops.append(self._root_op())
        return ops

    def _inode_put(self, node: FileNode) -> BlockOp:
        return BlockOp(
            action="put",
            key=self.scheme.file_block_key(node, 0, node.version),
            size=inode_size(node.size),
            kind=BlockKind.INODE,
            ident=self._file_ident(node, 0),
            version=node.version,
        )

    def _inode_remove(self, node: FileNode, version: int, size_at_version: int) -> BlockOp:
        return BlockOp(
            action="remove",
            key=self.scheme.file_block_key(node, 0, version),
            size=inode_size(size_at_version),
            kind=BlockKind.INODE,
            ident=self._file_ident(node, 0),
            version=version,
        )

    # ------------------------------------------------------------------
    # volume lifecycle

    def format(self) -> List[BlockOp]:
        """Initialize an empty volume: root block plus empty root directory."""
        ops = [
            BlockOp(
                action="put",
                key=self.scheme.root_key(),
                size=ROOT_BLOCK_SIZE,
                kind=BlockKind.ROOT,
                ident="<root>",
                version=0,
            )
        ]
        root_dir = self.namespace.root
        root_dir.version = 1
        for number, size in enumerate(directory_block_sizes(0)):
            ops.append(
                BlockOp(
                    action="put",
                    key=self.scheme.directory_block_key(root_dir, number, root_dir.version),
                    size=size,
                    kind=BlockKind.DIRECTORY,
                    ident=self._dir_ident(root_dir, number),
                    version=root_dir.version,
                )
            )
        return ops

    # ------------------------------------------------------------------
    # namespace operations

    def mkdir(self, path: str) -> List[BlockOp]:
        directory = self.namespace.mkdir(path)
        directory.version = 1
        ops: List[BlockOp] = []
        for number, size in enumerate(directory_block_sizes(0)):
            ops.append(
                BlockOp(
                    action="put",
                    key=self.scheme.directory_block_key(directory, number, directory.version),
                    size=size,
                    kind=BlockKind.DIRECTORY,
                    ident=self._dir_ident(directory, number),
                    version=directory.version,
                )
            )
        ops.extend(self._reversion_path(path))
        return ops

    def makedirs(self, path: str) -> List[BlockOp]:
        """mkdir -p; emits ops only for directories actually created."""
        ops: List[BlockOp] = []
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if not self.namespace.exists(current):
                ops.extend(self.mkdir(current))
        return ops

    def create(self, path: str, size: int = 0) -> List[BlockOp]:
        """Create a file of *size* bytes (contents written immediately)."""
        node = self.namespace.create_file(path, size)
        node.version = 1
        ops: List[BlockOp] = []
        for number, block_size in enumerate(data_block_sizes(size), start=1):
            node.block_versions[number] = node.version
            ops.append(
                BlockOp(
                    action="put",
                    key=self.scheme.file_block_key(node, number, node.version),
                    size=block_size,
                    kind=BlockKind.DATA,
                    ident=self._file_ident(node, number),
                    version=node.version,
                )
            )
        ops.append(self._inode_put(node))
        ops.extend(self._reversion_path(path))
        return ops

    def write(self, path: str, offset: int, length: int) -> List[BlockOp]:
        """Overwrite/extend ``[offset, offset+length)`` of an existing file.

        Emits new versions of the touched data blocks and the inode, plus
        removes of the superseded versions and the metadata path rewrite.
        """
        if length <= 0:
            return []
        node = self.namespace.resolve_file(path)
        old_size = node.size
        old_version = node.version
        new_size = max(old_size, offset + length)
        node.version += 1
        ops: List[BlockOp] = []

        was_inline = old_size <= INLINE_DATA_THRESHOLD
        now_inline = new_size <= INLINE_DATA_THRESHOLD
        node.size = new_size
        if not now_inline:
            sizes = data_block_sizes(new_size)
            touched = set(blocks_covering(offset, length, new_size))
            if was_inline and old_size > 0:
                # Data leaves the inode: every block of the file is new.
                touched.update(range(1, data_block_count(new_size) + 1))
            for number in sorted(touched):
                previous = node.block_versions.get(number)
                node.block_versions[number] = node.version
                block_size = sizes[number - 1]
                ops.append(
                    BlockOp(
                        action="put",
                        key=self.scheme.file_block_key(node, number, node.version),
                        size=block_size,
                        kind=BlockKind.DATA,
                        ident=self._file_ident(node, number),
                        version=node.version,
                    )
                )
                if previous is not None:
                    ops.append(
                        BlockOp(
                            action="remove",
                            key=self.scheme.file_block_key(node, number, previous),
                            size=min(block_size, BLOCK_SIZE),
                            kind=BlockKind.DATA,
                            ident=self._file_ident(node, number),
                            version=previous,
                        )
                    )
        ops.append(self._inode_put(node))
        ops.append(self._inode_remove(node, old_version, old_size))
        ops.extend(self._reversion_path(path))
        return ops

    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> List[BlockOp]:
        """Blocks a reader must fetch for ``[offset, offset+length)``.

        Emits the metadata path (root, directories, inode) followed by the
        covered data blocks; callers apply their buffer cache to absorb
        repeated metadata fetches, as real clients do.
        """
        node = self.namespace.resolve_file(path)
        if length is None:
            length = max(node.size - offset, 0)
        ops: List[BlockOp] = [
            BlockOp(
                action="get",
                key=self.scheme.root_key(),
                size=ROOT_BLOCK_SIZE,
                kind=BlockKind.ROOT,
                ident="<root>",
                version=0,
            )
        ]
        for directory in self.namespace.ancestors_of(path):
            for number, size in enumerate(directory_block_sizes(directory.entry_count)):
                ops.append(
                    BlockOp(
                        action="get",
                        key=self.scheme.directory_block_key(directory, number, directory.version),
                        size=size,
                        kind=BlockKind.DIRECTORY,
                        ident=self._dir_ident(directory, number),
                        version=directory.version,
                    )
                )
        ops.append(
            BlockOp(
                action="get",
                key=self.scheme.file_block_key(node, 0, node.version),
                size=inode_size(node.size),
                kind=BlockKind.INODE,
                ident=self._file_ident(node, 0),
                version=node.version,
            )
        )
        if node.size > INLINE_DATA_THRESHOLD:
            sizes = data_block_sizes(node.size)
            for number in blocks_covering(offset, length, node.size):
                ops.append(
                    BlockOp(
                        action="get",
                        key=self.scheme.file_block_key(
                            node, number, node.block_versions.get(number, node.version)
                        ),
                        size=sizes[number - 1],
                        kind=BlockKind.DATA,
                        ident=self._file_ident(node, number),
                        version=node.block_versions.get(number, node.version),
                    )
                )
        return ops

    def remove(self, path: str) -> List[BlockOp]:
        """Delete a file (or empty directory) and retire all its blocks.

        Quick removal matters for locality: dead blocks left between live
        ones fragment active data over more nodes (Section 3).
        """
        node = self.namespace.resolve(path)
        ops: List[BlockOp] = []
        if isinstance(node, FileNode):
            if node.size > INLINE_DATA_THRESHOLD:
                sizes = data_block_sizes(node.size)
                for number in range(1, data_block_count(node.size) + 1):
                    version = node.block_versions.get(number, node.version)
                    ops.append(
                        BlockOp(
                            action="remove",
                            key=self.scheme.file_block_key(node, number, version),
                            size=sizes[number - 1],
                            kind=BlockKind.DATA,
                            ident=self._file_ident(node, number),
                            version=version,
                        )
                    )
            ops.append(self._inode_remove(node, node.version, node.size))
        else:
            for number, size in enumerate(directory_block_sizes(node.entry_count)):
                ops.append(
                    BlockOp(
                        action="remove",
                        key=self.scheme.directory_block_key(node, number, node.version),
                        size=size,
                        kind=BlockKind.DIRECTORY,
                        ident=self._dir_ident(node, number),
                        version=node.version,
                    )
                )
        self.namespace.remove(path)
        ops.extend(self._reversion_path(path))
        return ops

    def rename(self, src: str, dst: str) -> List[BlockOp]:
        """Move a file/directory; only the two parents' metadata changes.

        The object keeps its original keys (Section 4.2), so no data moves
        even for a large directory tree.
        """
        src_parents = self.namespace.ancestors_of(src)
        self.namespace.rename(src, dst)
        ops: List[BlockOp] = []
        touched = set()
        for directory in reversed(src_parents):
            if id(directory) not in touched:
                touched.add(id(directory))
                ops.extend(self._reversion_directory(directory))
        for directory in reversed(self.namespace.ancestors_of(dst)):
            if id(directory) not in touched:
                touched.add(id(directory))
                ops.extend(self._reversion_directory(directory))
        ops.append(self._root_op())
        return ops

    def readdir(self, path: str) -> List[BlockOp]:
        """Blocks a reader must fetch to list *path* (metadata path + the
        directory's own blocks) — the NFS READDIR equivalent."""
        directory = self.namespace.resolve_dir(path)
        ops: List[BlockOp] = [
            BlockOp(
                action="get",
                key=self.scheme.root_key(),
                size=ROOT_BLOCK_SIZE,
                kind=BlockKind.ROOT,
                ident="<root>",
                version=0,
            )
        ]
        chain = self.namespace.ancestors_of(path + "/.") if path != "/" else []
        for ancestor in chain:
            for number, size in enumerate(directory_block_sizes(ancestor.entry_count)):
                ops.append(
                    BlockOp(
                        action="get",
                        key=self.scheme.directory_block_key(ancestor, number, ancestor.version),
                        size=size,
                        kind=BlockKind.DIRECTORY,
                        ident=self._dir_ident(ancestor, number),
                        version=ancestor.version,
                    )
                )
        if not chain or chain[-1] is not directory:
            for number, size in enumerate(directory_block_sizes(directory.entry_count)):
                ops.append(
                    BlockOp(
                        action="get",
                        key=self.scheme.directory_block_key(directory, number, directory.version),
                        size=size,
                        kind=BlockKind.DIRECTORY,
                        ident=self._dir_ident(directory, number),
                        version=directory.version,
                    )
                )
        return ops

    def stat(self, path: str) -> Dict[str, object]:
        """File/directory attributes from the namespace (NFS GETATTR).

        Served from the client's metadata without extra block fetches
        beyond what :meth:`read`/:meth:`readdir` already pulled.
        """
        node = self.namespace.resolve(path)
        if isinstance(node, FileNode):
            return {
                "type": "file",
                "size": node.size,
                "version": node.version,
                "blocks": data_block_count(node.size),
                "inline": node.size <= INLINE_DATA_THRESHOLD,
            }
        return {
            "type": "directory",
            "entries": node.entry_count,
            "version": node.version,
            "blocks": len(directory_block_sizes(node.entry_count)),
        }

    # ------------------------------------------------------------------
    # introspection

    def file_data_keys(self, path: str) -> List[int]:
        """Current-version data-block keys of a file (inode excluded)."""
        node = self.namespace.resolve_file(path)
        return [
            self.scheme.file_block_key(node, number, node.block_versions.get(number, node.version))
            for number in range(1, data_block_count(node.size) + 1)
        ]

    def total_bytes(self) -> int:
        return self.namespace.total_file_bytes()


def apply_ops(store, ops: Iterable[BlockOp]) -> Dict[str, int]:
    """Replay block ops against a :class:`StorageCoordinator`.

    Under the traditional-file scheme many blocks share one key; their puts
    are grouped into a single directory entry whose size is the sum (the
    whole file is one storage object on its replica group).  Returns byte
    counters per action for assertions and traffic accounting.
    """
    put_sizes: Dict[int, int] = defaultdict(int)
    put_order: List[int] = []
    counters = {"put": 0, "get": 0, "remove": 0}
    removes: List[BlockOp] = []
    # One root span per BlockOp batch (coordinator-owned tracer; test fakes
    # without .spans/.sim simply skip tracing).
    spans = getattr(store, "spans", None)
    sim = getattr(store, "sim", None)
    root = None
    if spans and sim is not None:
        root = spans.start_trace("fs.apply_ops", sim.now)
    for op in ops:
        counters[op.action] += op.size
        if op.action == "put":
            if op.key not in put_sizes:
                put_order.append(op.key)
            put_sizes[op.key] += op.size
        elif op.action == "remove":
            removes.append(op)
    for key in put_order:
        store.write(key, put_sizes[key])
    seen_remove = set()
    for op in removes:
        if op.key in seen_remove:
            continue
        seen_remove.add(op.key)
        if op.key in put_sizes:
            continue  # same flush wrote this key (shared traditional-file key)
        if op.key in store.directory:
            store.remove(op.key)
    if root:
        root.annotate(
            put_bytes=counters["put"],
            get_bytes=counters["get"],
            remove_bytes=counters["remove"],
            puts=len(put_order),
            removes=len(seen_remove),
        )
        spans.finish(root, sim.now)
    return counters
