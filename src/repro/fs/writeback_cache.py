"""30-second write-back / buffer cache (Section 3).

D2-FS batches writes for 30 seconds before inserting them into the DHT, so
temporary files and rapid rewrites never reach the network, and repeated
reads of one block within a 30-second window fetch it once.  Data seen by
other users may be stale by up to the flush delay, but never partially
written: a flush emits a file's final state, not the intermediate ones.

The cache operates on :class:`repro.fs.fslayer.BlockOp` streams:

* ``put`` ops are buffered keyed by logical identity; a later put of the
  same identity *supersedes* the buffered one (only the last version is
  ever flushed — the paper's temporary-file optimization);
* ``remove`` ops cancel a buffered put of the same identity (the block
  never existed outside the cache); removes of already-flushed versions
  pass through on flush;
* ``get`` ops are absorbed when the identity is dirty in the cache or was
  read within the TTL (buffer-cache hit), and recorded otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.fs.fslayer import BlockOp

DEFAULT_FLUSH_DELAY = 30.0


@dataclass
class CacheStats:
    puts_in: int = 0
    puts_out: int = 0
    puts_superseded: int = 0
    removes_in: int = 0
    removes_cancelled: int = 0
    read_hits: int = 0
    read_misses: int = 0

    @property
    def write_absorption(self) -> float:
        """Fraction of put operations the cache absorbed."""
        if self.puts_in == 0:
            return 0.0
        return 1.0 - self.puts_out / self.puts_in


@dataclass
class _PendingWrite:
    op: BlockOp
    first_dirtied: float
    removes: List[BlockOp] = field(default_factory=list)
    # Keys of versions superseded while still in the cache: they never hit
    # the DHT, so removes targeting them are dropped.
    absorbed_keys: set = field(default_factory=set)


class WritebackCache:
    """Per-client write-back buffer plus read (buffer) cache."""

    def __init__(self, flush_delay: float = DEFAULT_FLUSH_DELAY) -> None:
        self.flush_delay = flush_delay
        self._dirty: Dict[str, _PendingWrite] = {}
        self._read_at: Dict[str, Tuple[float, int]] = {}  # ident -> (time, key)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # write path

    def write(self, ops: List[BlockOp], now: float) -> None:
        """Buffer the write-side ops of one FS operation."""
        for op in ops:
            if op.action == "put":
                self.stats.puts_in += 1
                pending = self._dirty.get(op.ident)
                if pending is None:
                    self._dirty[op.ident] = _PendingWrite(op, now)
                else:
                    # The superseded version never reaches the DHT, so any
                    # remove targeting it (already queued or yet to come)
                    # is moot.
                    self.stats.puts_superseded += 1
                    pending.absorbed_keys.add(pending.op.key)
                    pending.removes = [
                        r for r in pending.removes if r.key != pending.op.key
                    ]
                    pending.op = op
            elif op.action == "remove":
                self.stats.removes_in += 1
                pending = self._dirty.get(op.ident)
                if pending is not None and pending.op.key == op.key:
                    # Removing a version that only exists in the cache.
                    del self._dirty[op.ident]
                    self.stats.removes_cancelled += 1
                elif pending is not None and op.key in pending.absorbed_keys:
                    # The target version was superseded in-cache.
                    self.stats.removes_cancelled += 1
                elif pending is not None:
                    pending.removes.append(op)
                else:
                    # Remove of an already-flushed version: carry it as a
                    # standalone pending entry with no put.
                    entry = self._dirty.setdefault(
                        f"-{op.ident}#{op.key}", _PendingWrite(op, now)
                    )
                    if entry.op is not op:
                        entry.removes.append(op)

    def flush_due(self, now: float) -> List[BlockOp]:
        """Ops whose flush delay has elapsed, ready to hit the DHT."""
        flushed: List[BlockOp] = []
        due = [
            ident
            for ident, pending in self._dirty.items()
            if now - pending.first_dirtied >= self.flush_delay
        ]
        for ident in due:
            pending = self._dirty.pop(ident)
            flushed.extend(self._emit(pending))
        return flushed

    def flush_all(self) -> List[BlockOp]:
        """Flush everything immediately (client shutdown / sync)."""
        flushed: List[BlockOp] = []
        for pending in self._dirty.values():
            flushed.extend(self._emit(pending))
        self._dirty.clear()
        return flushed

    def _emit(self, pending: _PendingWrite) -> List[BlockOp]:
        ops: List[BlockOp] = []
        if pending.op.action == "put":
            self.stats.puts_out += 1
            ops.append(pending.op)
        else:
            ops.append(pending.op)
        ops.extend(pending.removes)
        return ops

    # ------------------------------------------------------------------
    # read path

    def read(self, op: BlockOp, now: float) -> bool:
        """True when the buffer cache absorbs this get (no DHT access)."""
        if op.action != "get":
            raise ValueError("read() takes get ops only")
        pending = self._dirty.get(op.ident)
        if pending is not None and pending.op.action == "put":
            self.stats.read_hits += 1
            return True
        cached = self._read_at.get(op.ident)
        if cached is not None:
            cached_at, cached_key = cached
            if now - cached_at < self.flush_delay and cached_key == op.key:
                self.stats.read_hits += 1
                return True
        self._read_at[op.ident] = (now, op.key)
        self.stats.read_misses += 1
        return False

    def filter_reads(self, ops: List[BlockOp], now: float) -> List[BlockOp]:
        """The subset of get ops that must actually go to the DHT."""
        return [op for op in ops if op.action == "get" and not self.read(op, now)]

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)
