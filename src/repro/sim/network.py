"""Wide-area network model: pairwise latencies and access links.

The paper's Emulab testbed emulated pairwise end-to-end latencies measured
between thousands of DNS servers (the King dataset; mean RTT ≈ 90 ms in
their topology) and per-node access links of 1500 or 384 kbps.  We have no
King matrix offline, so nodes are placed in a synthetic 2-D latency space:
RTTs are a base propagation floor plus Euclidean distance, scaled so the
mean pairwise RTT matches a target.  This preserves what the experiments
consume — a broad RTT distribution with several-hundred-millisecond spread
and geometric consistency (closeness is mutual and roughly transitive) —
without the proprietary trace.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.engine import TokenBucket

DEFAULT_MEAN_RTT = 0.090  # seconds; matches the paper's topology
MIN_RTT = 0.005


class LatencyModel:
    """Pairwise RTTs from synthetic 2-D coordinates.

    Construct via :meth:`random`.  RTT(a, b) = base + |coord_a - coord_b|,
    scaled so the expected RTT between two random nodes equals
    ``mean_rtt``.
    """

    def __init__(self, coords: Dict[str, Tuple[float, float]], base_rtt: float, scale: float) -> None:
        self._coords = coords
        self._base = base_rtt
        self._scale = scale

    @classmethod
    def random(
        cls,
        names: Iterable[str],
        rng: random.Random,
        *,
        mean_rtt: float = DEFAULT_MEAN_RTT,
        base_rtt: float = MIN_RTT,
    ) -> "LatencyModel":
        """Place *names* uniformly in the unit square, scale to *mean_rtt*.

        The expected distance between two uniform points in the unit square
        is ~0.5214; the scale makes base + scale * E[dist] == mean_rtt.
        """
        names = list(names)
        if not names:
            raise ValueError("need at least one node")
        expected_unit_distance = 0.5214
        scale = max(0.0, (mean_rtt - base_rtt) / expected_unit_distance)
        coords = {name: (rng.random(), rng.random()) for name in names}
        return cls(coords, base_rtt, scale)

    @classmethod
    def from_matrix(cls, rtts: Dict[Tuple[str, str], float]) -> "LatencyModel":
        """Build a model from measured pairwise RTTs (e.g. a King matrix).

        The matrix is symmetrized (mean of both directions when both are
        given) and missing pairs fall back to the matrix mean, so partial
        measurement sets still work.
        """
        if not rtts:
            raise ValueError("matrix must not be empty")
        model = cls({}, base_rtt=0.0, scale=0.0)
        table: Dict[Tuple[str, str], float] = {}
        names = set()
        for (a, b), value in rtts.items():
            if value < 0:
                raise ValueError(f"negative RTT for ({a}, {b})")
            names.update((a, b))
            lo, hi = (a, b) if a <= b else (b, a)
            if (lo, hi) in table:
                table[(lo, hi)] = (table[(lo, hi)] + value) / 2.0
            else:
                table[(lo, hi)] = value
        model._coords = {name: (0.0, 0.0) for name in sorted(names)}
        model._table = table
        model._table_default = sum(table.values()) / len(table)
        return model

    def rtt(self, a: str, b: str) -> float:
        """Round-trip time between nodes *a* and *b*, in seconds."""
        if a == b:
            return 0.0
        table = getattr(self, "_table", None)
        if table is not None:
            lo, hi = (a, b) if a <= b else (b, a)
            return table.get((lo, hi), self._table_default)
        ax, ay = self._coords[a]
        bx, by = self._coords[b]
        return self._base + self._scale * math.hypot(ax - bx, ay - by)

    def one_way(self, a: str, b: str) -> float:
        return self.rtt(a, b) / 2.0

    def path_latency(self, path: Sequence[str]) -> float:
        """One-way latency along a multi-hop path (recursive lookup legs)."""
        return sum(self.one_way(path[i], path[i + 1]) for i in range(len(path) - 1))

    def add_node(self, name: str, rng: random.Random) -> None:
        self._coords[name] = (rng.random(), rng.random())

    def nodes(self) -> List[str]:
        return list(self._coords)

    def mean_rtt_sample(self, rng: random.Random, samples: int = 2000) -> float:
        """Empirical mean RTT over random node pairs (for calibration tests)."""
        names = list(self._coords)
        if len(names) < 2:
            return 0.0
        total = 0.0
        for _ in range(samples):
            a, b = rng.sample(names, 2)
            total += self.rtt(a, b)
        return total / samples


class AccessLinks:
    """Per-node access-link capacity (upload side) as token buckets.

    The paper limits each virtual node's access link to 1500 or 384 kbps
    and notes these are far below core speeds, so only the edge is
    modelled.  Client download links are unconstrained (Section 9.1).
    """

    def __init__(self, rate_bytes_per_sec: float) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError("link rate must be positive")
        self.rate = rate_bytes_per_sec
        self._links: Dict[str, TokenBucket] = {}

    def link(self, name: str) -> TokenBucket:
        bucket = self._links.get(name)
        if bucket is None:
            bucket = TokenBucket(self.rate)
            self._links[name] = bucket
        return bucket

    def reserve_upload(self, name: str, now: float, nbytes: int) -> float:
        """Serialize *nbytes* through *name*'s uplink; returns finish time."""
        return self.link(name).reserve(now, nbytes)

    def backlog(self, name: str, now: float) -> float:
        return self.link(name).backlog_seconds(now)

    def bytes_uploaded(self, name: str) -> int:
        bucket = self._links.get(name)
        return bucket.bytes_sent if bucket else 0
