"""Synthetic node-failure traces (PlanetLab-like, Section 8.1).

The paper replays the observed up/down behaviour of 247 PlanetLab nodes
during Feb 22–28 2003 — a week chosen for its unusually *many and
correlated* failures, because correlated failures are what actually hurts
replica groups.  That trace is not available offline, so we generate
session-based availability traces with the same two ingredients:

* **independent churn** — each node alternates exponentially-distributed
  up-times (MTTF) and down-times (MTTR);
* **correlated outage events** — at random instants a random subset of
  nodes fails simultaneously for a shared repair period (infrastructure
  outages, the availability killer the paper highlights).

Defaults are calibrated so that over a simulated week the probability that
all 3 nodes of a replica group are simultaneously down at least once is on
the order of the paper's 0.02 (see ``tests/test_failures.py``).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

SECONDS_PER_DAY = 86400.0
WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class FailureEvent:
    """One transition: node goes down (``up=False``) or comes back up."""

    time: float
    node: str
    up: bool


@dataclass(frozen=True)
class FailureTraceConfig:
    """Knobs of the synthetic availability trace."""

    duration: float = WEEK
    mttf: float = 4.0 * SECONDS_PER_DAY        # mean time between failures
    mttr: float = 4.0 * 3600.0                 # mean repair time: 4 hours
    correlated_events: int = 3                 # infrastructure outages/week
    correlated_fraction: float = 0.08          # nodes hit per outage
    correlated_repair: float = 2.0 * 3600.0    # shared outage duration


class FailureTrace:
    """A complete, replayable up/down schedule for a set of nodes."""

    def __init__(self, nodes: Sequence[str], events: List[FailureEvent], duration: float) -> None:
        self.nodes = list(nodes)
        self.events = sorted(events, key=lambda e: (e.time, e.node))
        self.duration = duration
        self._timeline: Dict[str, List[Tuple[float, bool]]] = {n: [(0.0, True)] for n in nodes}
        for event in self.events:
            self._timeline[event.node].append((event.time, event.up))

    @classmethod
    def generate(
        cls,
        nodes: Sequence[str],
        rng: random.Random,
        config: FailureTraceConfig = FailureTraceConfig(),
    ) -> "FailureTrace":
        """Generate a trace for *nodes* under *config*.

        All nodes start up.  Independent churn and correlated outages are
        merged; a node already down when an outage hits simply stays down
        until the later of its repair times.
        """
        intervals: Dict[str, List[Tuple[float, float]]] = {n: [] for n in nodes}

        # Independent per-node sessions.
        for node in nodes:
            t = rng.expovariate(1.0 / config.mttf)
            while t < config.duration:
                repair = rng.expovariate(1.0 / config.mttr)
                intervals[node].append((t, t + repair))
                t = t + repair + rng.expovariate(1.0 / config.mttf)

        # Correlated outages.
        for _ in range(config.correlated_events):
            when = rng.uniform(0, config.duration)
            count = max(1, int(len(nodes) * config.correlated_fraction))
            victims = rng.sample(list(nodes), min(count, len(nodes)))
            repair = rng.expovariate(1.0 / config.correlated_repair)
            for node in victims:
                intervals[node].append((when, when + repair))

        return cls(nodes, events_from_intervals(intervals, config.duration), config.duration)

    # ------------------------------------------------------------------
    # queries

    def is_up(self, node: str, time: float) -> bool:
        """Node state at *time* (boundaries: an event applies at its time)."""
        timeline = self._timeline[node]
        index = bisect.bisect_right(timeline, (time, True)) - 1
        return timeline[max(index, 0)][1]

    def up_set(self, time: float) -> Set[str]:
        return {node for node in self.nodes if self.is_up(node, time)}

    def down_since(self, node: str, time: float) -> Optional[float]:
        """Start of the down period containing *time*, or None if up."""
        timeline = self._timeline[node]
        index = bisect.bisect_right(timeline, (time, True)) - 1
        index = max(index, 0)
        when, state = timeline[index]
        if state:
            return None
        return when

    def availability(self, node: str) -> float:
        """Fraction of the trace during which *node* was up."""
        timeline = self._timeline[node]
        up_time = 0.0
        for (t0, state), (t1, _) in zip(timeline, timeline[1:]):
            if state:
                up_time += t1 - t0
        last_t, last_state = timeline[-1]
        if last_state:
            up_time += self.duration - last_t
        return up_time / self.duration if self.duration > 0 else 1.0

    def mean_availability(self) -> float:
        return sum(self.availability(n) for n in self.nodes) / len(self.nodes)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self.events)


@dataclass(frozen=True)
class ChurnStormConfig:
    """Sustained membership churn: Poisson join/leave/kill arrivals.

    Rates are events per hour across the whole system (production DHTs see
    continuous arrivals, not the daily-rate churn of Table 3).  A
    :class:`FailureTraceConfig`-style correlated outage can be layered on
    top by the churn harness; this config covers only the independent
    streams.
    """

    duration: float = SECONDS_PER_DAY
    join_rate: float = 2.0    # joins per hour
    leave_rate: float = 1.0   # graceful leaves per hour
    crash_rate: float = 1.0   # abrupt kills per hour


@dataclass(frozen=True)
class ChurnOp:
    """One scheduled membership operation (victim chosen at fire time)."""

    time: float
    op: str  # "join" | "leave" | "crash"


def generate_churn_ops(
    config: ChurnStormConfig, rng: random.Random
) -> List[ChurnOp]:
    """Merged, time-sorted Poisson streams of join/leave/crash operations.

    Each stream is generated independently with exponential inter-arrival
    times, then merged; ties break by op name so the schedule is a pure
    function of (config, rng seed).
    """
    ops: List[ChurnOp] = []
    for op, rate_per_hour in (
        ("join", config.join_rate),
        ("leave", config.leave_rate),
        ("crash", config.crash_rate),
    ):
        if rate_per_hour <= 0:
            continue
        mean_gap = 3600.0 / rate_per_hour
        t = rng.expovariate(1.0 / mean_gap)
        while t < config.duration:
            ops.append(ChurnOp(time=t, op=op))
            t += rng.expovariate(1.0 / mean_gap)
    ops.sort(key=lambda o: (o.time, o.op))
    return ops


def events_from_intervals(
    intervals: Dict[str, List[Tuple[float, float]]], duration: float
) -> List[FailureEvent]:
    """Turn per-node down intervals into clean alternating transitions.

    Overlapping intervals (a node already down when a correlated outage
    hits) merge: the node stays down until the later repair.  Repairs past
    the trace end are dropped (the node is down at the end).
    """
    events: List[FailureEvent] = []
    for node, spans in intervals.items():
        merged: List[Tuple[float, float]] = []
        for lo, hi in sorted(spans):
            if lo >= duration:
                continue
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        for lo, hi in merged:
            events.append(FailureEvent(lo, node, up=False))
            if hi < duration:
                events.append(FailureEvent(hi, node, up=True))
    return events
