"""Simulation substrate: event engine, network, transport, failures."""

from repro.sim.engine import Simulator, TokenBucket, kbps
from repro.sim.network import AccessLinks, LatencyModel
from repro.sim.transport import TcpTransport
from repro.sim.failures import FailureTrace, FailureTraceConfig

__all__ = [
    "Simulator",
    "TokenBucket",
    "kbps",
    "AccessLinks",
    "LatencyModel",
    "TcpTransport",
    "FailureTrace",
    "FailureTraceConfig",
]
