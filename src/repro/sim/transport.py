"""TCP transfer-time model with slow-start and idle restart (Section 9.3).

The paper's parallel-performance results hinge on a TCP detail: a
connection idle for more than one retransmit timeout (RTO) collapses its
window and re-enters slow start, so in a big traditional DHT — where
successive blocks come from ever-different nodes — *every* 8 KB block fetch
pays ≥ 2 RTTs and the sender's access link is never filled.  In D2 most
requests hit the same 4 replica nodes, connections stay warm, and transfers
run at the full link rate.

We model each (client, server) pair's connection with two pieces of state:
the congestion window and the time it was last used.  A transfer of ``S``
bytes proceeds in slow-start rounds (window doubling per RTT, starting at 2
segments = 2920 bytes as in Linux) until the window covers either the
remaining bytes or the bandwidth-delay product, after which the residue
streams at the available rate.  Connection setup is free: the paper
pre-establishes all-pairs TCP connections to emulate an optimized DHT
transport, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.network import LatencyModel

MSS_BYTES = 1460
INITIAL_WINDOW_BYTES = 2 * MSS_BYTES  # Linux initial cwnd of 2 segments
MIN_RTO = 0.2  # Linux TCP_RTO_MIN


@dataclass
class _Connection:
    cwnd: int = INITIAL_WINDOW_BYTES
    last_used: float = float("-inf")


@dataclass
class TransferResult:
    duration: float
    slow_start_rounds: int
    restarted: bool


class TcpTransport:
    """Transfer-time oracle for block downloads between named nodes.

    With a span *tracer* (:class:`repro.obs.spans.Tracer`), each transfer
    performed under a live parent span records a ``tcp.transfer`` child
    annotated warm (window preserved) or cold (slow-start restart) — the
    distinction the paper's parallel-performance results hinge on.
    """

    def __init__(self, latency: LatencyModel, *, spans=None) -> None:
        self._latency = latency
        self._connections: Dict[Tuple[str, str], _Connection] = {}
        self._spans = spans
        self.transfers = 0
        self.slow_start_restarts = 0

    def rto(self, rtt: float) -> float:
        """Retransmit timeout: srtt + 4*rttvar floored at the Linux minimum."""
        return max(MIN_RTO, 2.0 * rtt)

    def transfer(
        self,
        server: str,
        client: str,
        nbytes: int,
        now: float,
        *,
        rate_bytes_per_sec: float,
        parent=None,
    ) -> TransferResult:
        """Time for *server* to deliver *nbytes* to *client* starting *now*.

        ``rate_bytes_per_sec`` is the sender's currently available share of
        its access link.  Updates connection state (window growth, last-use
        time) so back-to-back transfers on a warm connection skip slow
        start.  *parent* is an optional span the transfer is recorded
        under.
        """
        if nbytes < 0:
            raise ValueError("cannot transfer negative bytes")
        self.transfers += 1
        rtt = self._latency.rtt(server, client)
        conn = self._connections.setdefault((server, client), _Connection())
        restarted = False
        if now - conn.last_used > self.rto(rtt):
            if conn.last_used != float("-inf"):
                self.slow_start_restarts += 1
                restarted = True
            conn.cwnd = INITIAL_WINDOW_BYTES

        if rtt <= 0.0:
            # Local transfer: pure serialization delay.
            duration = nbytes / rate_bytes_per_sec if rate_bytes_per_sec > 0 else 0.0
            conn.last_used = now + duration
            self._record_span(server, client, nbytes, now, duration, 0, restarted, parent)
            return TransferResult(duration, 0, restarted)

        bdp = max(INITIAL_WINDOW_BYTES, int(rate_bytes_per_sec * rtt))
        remaining = nbytes
        # Baseline: the request leg plus the final data leg — even a
        # one-window transfer costs a full round trip.
        duration = rtt
        rounds = 0
        cwnd = conn.cwnd
        # Slow-start rounds: each window that doesn't cover the residue
        # costs one extra RTT (ack cycle) while the window doubles toward
        # the bandwidth-delay product.
        while remaining > cwnd and cwnd < bdp:
            remaining -= cwnd
            duration += rtt
            cwnd = min(cwnd * 2, bdp)
            rounds += 1
        if remaining > 0 and rate_bytes_per_sec > 0:
            duration += remaining / rate_bytes_per_sec
        conn.cwnd = cwnd
        conn.last_used = now + duration
        self._record_span(server, client, nbytes, now, duration, rounds, restarted, parent)
        return TransferResult(duration, rounds, restarted)

    def _record_span(self, server: str, client: str, nbytes: int, now: float,
                     duration: float, rounds: int, restarted: bool, parent) -> None:
        if self._spans and parent:
            span = self._spans.start_span(
                "tcp.transfer", now, parent,
                server=server, client=client, bytes=nbytes,
                warm=not restarted, restarted=restarted,
                slow_start_rounds=rounds,
            )
            self._spans.finish(span, now + duration)

    def warm_fraction(self) -> float:
        """Fraction of transfers that did not restart slow start."""
        if self.transfers == 0:
            return 0.0
        return 1.0 - self.slow_start_restarts / self.transfers

    def reset_stats(self) -> None:
        self.transfers = 0
        self.slow_start_restarts = 0
