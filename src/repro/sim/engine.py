"""Discrete-event simulation kernel.

Every long-running experiment in this reproduction (availability, load
balancing, end-to-end latency) is driven by :class:`Simulator`, a minimal
heap-based discrete-event engine.  Time is a float number of seconds since
the start of the simulation.

The kernel deliberately stays tiny: events are plain callbacks, there are no
processes or coroutines.  Components that need richer behaviour (periodic
probes, delayed block removal, pointer stabilization) build it out of
:meth:`Simulator.schedule` and :meth:`Simulator.schedule_periodic`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised when the simulator is used incorrectly."""


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the caller to cancel a pending event.  Handles
    compare by identity of their sequence number, which is unique per
    simulator instance.
    """

    time: float
    seq: int

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A heap-based discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0, *, registry=None) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._running = False
        # Optional observability hook (repro.obs.metrics.MetricsRegistry):
        # counts fired/cancelled events so a metrics snapshot can report how
        # much simulated work a run performed.  Kept duck-typed so the
        # kernel stays dependency-free.
        # `is not None`, not truthiness: MetricsRegistry defines __len__, so
        # a brand-new (empty) registry is falsy.
        self._fired_counter = (
            registry.counter("sim.events_fired") if registry is not None else None
        )
        self._cancelled_counter = (
            registry.counter("sim.events_cancelled") if registry is not None else None
        )

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* to fire ``delay`` seconds from now.

        Returns an :class:`EventHandle` that can be passed to :meth:`cancel`.
        ``delay`` must be non-negative; zero-delay events fire in FIFO order
        after the current callback returns.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = next(self._seq)
        when = self._now + delay
        heapq.heappush(self._queue, (when, seq, callback))
        return EventHandle(when, seq)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule *callback* at absolute simulation time *when*."""
        return self.schedule(when - self._now, callback)

    def schedule_batch(
        self, events: Iterable[Tuple[float, Callable[[], None]]]
    ) -> List[EventHandle]:
        """Schedule many ``(delay, callback)`` pairs in one pass.

        Equivalent to calling :meth:`schedule` once per pair (sequence
        numbers are assigned in iteration order, so same-time events fire
        FIFO), but a large batch is appended and re-heapified in one O(n)
        pass instead of n O(log n) sifts — the fast path for event storms
        (periodic probe fleets, churn storms, scale-harness windows) that
        enqueue thousands of events between firings.
        """
        queue = self._queue
        now = self._now
        next_seq = self._seq.__next__
        handles: List[EventHandle] = []
        staged: List[Tuple[float, int, Callable[[], None]]] = []
        for delay, callback in events:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            seq = next_seq()
            when = now + delay
            staged.append((when, seq, callback))
            handles.append(EventHandle(when, seq))
        # Pop order is fully determined by the (time, seq) total order, so
        # the internal heap layout never affects behavior — only speed.
        if len(staged) > 8 and len(staged) * 4 > len(queue):
            queue.extend(staged)
            heapq.heapify(queue)
        else:
            for item in staged:
                heapq.heappush(queue, item)
        return handles

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter: Callable[[], float] = lambda: 0.0,
        first_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Fire *callback* every *interval* seconds until cancelled.

        ``jitter()`` is added to each period (e.g. to desynchronize load
        balancing probes across nodes).  The task object's :meth:`cancel`
        stops future firings.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, jitter)
        delay = first_delay if first_delay is not None else interval + jitter()
        task._arm(max(0.0, delay))
        return task

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling a fired event is a no-op."""
        self._cancelled.add((handle.time, handle.seq))

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or time *until* is reached.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier, so that back-to-back calls with
        increasing horizons behave like a continuous run.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Event-storm fast path: hoist attribute lookups out of the drain
        # loop and batch the fired-counter update — one `inc(total)` when
        # the run returns instead of a method call per event.  Counter
        # values are only observed between runs (snapshots), so batching
        # never changes a reported number.
        queue = self._queue
        cancelled = self._cancelled
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                when, seq, callback = queue[0]
                if until is not None and when > until:
                    break
                pop(queue)
                if cancelled and (when, seq) in cancelled:
                    cancelled.discard((when, seq))
                    if self._cancelled_counter is not None:
                        self._cancelled_counter.inc()
                    continue
                if when < self._now:
                    raise SimulationError("event queue corrupted: time went backwards")
                self._now = when
                callback()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            if fired and self._fired_counter is not None:
                self._fired_counter.inc(fired)
            self._running = False

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        while self._queue:
            when, seq, callback = heapq.heappop(self._queue)
            if (when, seq) in self._cancelled:
                self._cancelled.discard((when, seq))
                if self._cancelled_counter is not None:
                    self._cancelled_counter.inc()
                continue
            self._now = when
            callback()
            if self._fired_counter is not None:
                self._fired_counter.inc()
            return True
        return False

    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._queue)


class PeriodicTask:
    """A repeating event created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        jitter: Callable[[], float],
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._handle: Optional[EventHandle] = None
        self._cancelled = False

    def _arm(self, delay: float) -> None:
        self._handle = self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._arm(max(0.0, self._interval + self._jitter()))

    def cancel(self) -> None:
        """Stop the periodic task; pending firing is suppressed."""
        self._cancelled = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None


@dataclass
class TokenBucket:
    """A fluid-model bandwidth limiter.

    Used to cap per-node load-balancing (migration) traffic at 750 kbps and
    access links at 1500/384 kbps, as in the paper's simulator.  Rather than
    tracking individual packets, callers ask "when would *nbytes* finish if
    started now?" and the bucket serializes requests FIFO.
    """

    rate_bytes_per_sec: float
    available_at: float = 0.0
    bytes_sent: int = 0

    def reserve(self, now: float, nbytes: int) -> float:
        """Reserve capacity for *nbytes* starting at *now*.

        Returns the completion time.  Back-to-back reservations queue behind
        one another, modelling a saturated link.
        """
        if nbytes < 0:
            raise ValueError("cannot reserve negative bytes")
        start = max(now, self.available_at)
        duration = nbytes / self.rate_bytes_per_sec if self.rate_bytes_per_sec > 0 else 0.0
        self.available_at = start + duration
        self.bytes_sent += nbytes
        return self.available_at

    def backlog_seconds(self, now: float) -> float:
        """Seconds of queued work ahead of a reservation made at *now*."""
        return max(0.0, self.available_at - now)


def kbps(value: float) -> float:
    """Convert kilobits/sec to bytes/sec (paper quotes link speeds in kbps)."""
    return value * 1000.0 / 8.0
