"""DHT substrate: key space, ring membership, routing, load balancing."""

from repro.dht.keyspace import KEY_BITS, KEY_BYTES, KEY_SPACE, distance, in_interval
from repro.dht.ring import Ring, RingError
from repro.dht.fingers import FingerTable
from repro.dht.routing import LookupResult, finger_table_for, route, route_many
from repro.dht.load_balance import KargerRuhlBalancer, normalized_std_dev
from repro.dht.sampling import random_walk_sample

__all__ = [
    "KEY_BITS",
    "KEY_BYTES",
    "KEY_SPACE",
    "distance",
    "in_interval",
    "Ring",
    "RingError",
    "FingerTable",
    "LookupResult",
    "finger_table_for",
    "route",
    "route_many",
    "KargerRuhlBalancer",
    "normalized_std_dev",
    "random_walk_sample",
]
