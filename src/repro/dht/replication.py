"""Replica placement helpers (r immediate successors).

D2-Store replicates every block on the ``r`` immediate successors of its
key (Section 3): the first is the *primary* replica, the rest *secondary*.
This module provides the placement queries shared by the availability
simulator and the static locality analyses.  Replica *dynamics* (who has
finished regenerating after a failure) live with the availability harness
in :mod:`repro.analysis.availability`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.dht.ring import Ring


def replica_group(ring: Ring, key: int, replicas: int) -> List[str]:
    """The ``replicas`` distinct nodes holding *key*, primary first."""
    return ring.successors(key, replicas)


def replica_groups_for_keys(
    ring: Ring, keys: Iterable[int], replicas: int
) -> Set[Tuple[str, ...]]:
    """Distinct replica groups touched by a set of keys.

    A task that needs ``k`` keys touching ``g`` distinct replica groups
    succeeds iff each of those ``g`` groups has at least one live member —
    the quantity behind Table 2 and the availability model in Section 8.2.
    """
    groups = set()
    for key in keys:
        groups.add(tuple(replica_group(ring, key, replicas)))
    return groups


def nodes_for_keys(ring: Ring, keys: Iterable[int], replicas: int = 1) -> Set[str]:
    """Distinct nodes a client contacts to fetch *keys* (primaries only by
    default; pass ``replicas`` to count any-replica download choices)."""
    nodes: Set[str] = set()
    for key in keys:
        if replicas == 1:
            nodes.add(ring.successor(key))
        else:
            nodes.update(ring.successors(key, replicas))
    return nodes


def placement_loads(ring: Ring, keys: Iterable[int], replicas: int) -> Dict[str, int]:
    """Total (primary + secondary) block count per node for a key set."""
    loads: Counter = Counter()
    for key in keys:
        for name in ring.successors(key, replicas):
            loads[name] += 1
    for name in ring.names():
        loads.setdefault(name, 0)
    return dict(loads)


def placement_bytes(
    ring: Ring, sized_keys: Iterable[Tuple[int, int]], replicas: int
) -> Dict[str, int]:
    """Total byte volume per node for ``(key, size)`` pairs."""
    loads: Counter = Counter()
    for key, size in sized_keys:
        for name in ring.successors(key, replicas):
            loads[name] += size
    for name in ring.names():
        loads.setdefault(name, 0)
    return dict(loads)


def group_available(alive: Set[str], group: Sequence[str]) -> bool:
    """A replica group serves reads while any member is alive."""
    return any(member in alive for member in group)
