"""Active load balancing (Karger–Ruhl item balancing, as used by Mercury).

D2's keys are *not* uniformly distributed, so consistent hashing cannot
balance storage.  Section 6 of the paper adopts the dynamic algorithm from
Karger & Ruhl (SPAA '04) as implemented in Mercury (SIGCOMM '04):

    Each node B periodically contacts another random node A (once per
    *probe interval*).  If A's load exceeds ``t`` times B's load, B changes
    its ID to become A's predecessor, taking half of A's load.  The ID
    change is a voluntary leave followed by a rejoin at the new position.

With ``t >= 4`` every node converges to within a constant factor of the
average load in ``O(log n)`` steps w.h.p.; the paper (and this
reproduction) uses ``t = 4``.

Only the *primary* replica count is used as the load value: ID changes only
directly affect primary ranges, and balanced primaries imply balanced
totals (footnote 3 in the paper).

The balancer is policy only — the mechanics of handing blocks off (pointer
creation, replica adjustment, migration accounting) are delegated to a
:class:`BalanceCoordinator`, implemented by the storage layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.dht.ring import Ring, load_split_point
from repro.obs.events import BALANCE_MOVE, BALANCE_PROBE, EventTracer
from repro.obs.metrics import MetricsRegistry


class BalanceCoordinator(Protocol):
    """Storage-layer operations the balancer needs.

    Implemented by :class:`repro.store.migration.StorageCoordinator`; tests
    provide lightweight fakes.
    """

    def primary_load(self, name: str) -> int:
        """Current primary-replica block count of node *name*."""
        ...

    def primary_keys(self, name: str) -> Sequence[int]:
        """Keys of the primary blocks held (or pointed to) by *name*."""
        ...

    def execute_move(self, mover: str, new_id: int) -> None:
        """Perform the leave+rejoin of *mover* to position *new_id*.

        Responsible for handing the mover's old range to its successor and
        establishing pointers (or copies) for the newly adopted range.
        """
        ...


@dataclass(frozen=True)
class MoveRecord:
    """One completed load-balancing ID change (for logging and tests)."""

    time: float
    mover: str
    target: str
    old_id: int
    new_id: int
    mover_load_before: int
    target_load_before: int


class BalancerStats:
    """Balancer counters, backed by metric counters (API-compatible view).

    ``probes``/``triggered``/``skipped_small`` read and write registry
    counters (``balance.*``); ``moves`` stays a plain list of
    :class:`MoveRecord` for logging and tests, mirrored by the
    ``balance.moves`` counter.
    """

    FIELDS = ("probes", "triggered", "skipped_small")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(f"balance.{name}") for name in self.FIELDS
        }
        self._moves_counter = self._registry.counter("balance.moves")
        self.moves: List[MoveRecord] = []

    def _get(self, name: str) -> int:
        return self._counters[name].value

    def _set(self, name: str, value: int) -> None:
        self._counters[name].add(value - self._counters[name].value)

    probes = property(lambda s: s._get("probes"), lambda s, v: s._set("probes", v))
    triggered = property(
        lambda s: s._get("triggered"), lambda s, v: s._set("triggered", v)
    )
    skipped_small = property(
        lambda s: s._get("skipped_small"), lambda s, v: s._set("skipped_small", v)
    )

    def record_move(self, record: MoveRecord) -> None:
        self.moves.append(record)
        self._moves_counter.inc()

    def __repr__(self) -> str:
        fields = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"BalancerStats({fields}, moves={len(self.moves)})"


class KargerRuhlBalancer:
    """The paper's probe-and-split balancing policy over a :class:`Ring`."""

    def __init__(
        self,
        ring: Ring,
        coordinator: BalanceCoordinator,
        *,
        threshold: float = 4.0,
        rng: Optional[random.Random] = None,
        min_split_load: int = 2,
        sampling: str = "membership",
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        spans=None,
    ) -> None:
        if threshold < 2.0:
            raise ValueError("threshold below 2 cannot converge (Karger-Ruhl requires t >= 4 for the proof)")
        if sampling not in ("membership", "random-walk"):
            raise ValueError(f"unknown sampling strategy {sampling!r}")
        self._ring = ring
        self._coordinator = coordinator
        self._threshold = threshold
        self._rng = rng if rng is not None else random.Random(0)
        self._min_split_load = min_split_load
        # "membership" samples the global node list (simulation shortcut);
        # "random-walk" uses Mercury's decentralized sampling (see
        # repro.dht.sampling), which a real node could actually execute.
        self._sampling = sampling
        self._tracer = tracer
        self._spans = spans  # repro.obs.spans.Tracer; falsy when disabled
        # Membership snapshot reused across probes until the ring changes
        # (probe_round used to rebuild this O(n) list for every probe).
        self._members: List[str] = []
        self._members_version = -1
        self.stats = BalancerStats(registry)

    @property
    def threshold(self) -> float:
        return self._threshold

    def probe(self, prober: str, now: float = 0.0) -> Optional[MoveRecord]:
        """One balancing probe by node *prober*.

        *prober* samples a uniform-random other node (Mercury implements
        this with random walks; we sample the membership directly).  If the
        sampled node's primary load exceeds ``t`` times the prober's, the
        prober moves to the sampled node's load midpoint.
        """
        self.stats._counters["probes"].inc()
        target = self._sample_other(prober)
        if self._tracer is not None:
            self._tracer.emit(BALANCE_PROBE, now, prober=prober, target=target)
        if target is None:
            return None
        return self._maybe_move(prober, target, now)

    def probe_round(self, now: float = 0.0) -> List[MoveRecord]:
        """Every node probes once, in random order (one full probe interval)."""
        names = list(self._ring.names())
        self._rng.shuffle(names)
        moves = []
        for name in names:
            if name not in self._ring:
                continue  # cannot happen today, but stay safe under reentrancy
            record = self.probe(name, now)
            if record is not None:
                moves.append(record)
        return moves

    def balance_until_stable(
        self, *, max_rounds: int = 200, quiet_rounds: int = 5, now: float = 0.0
    ) -> int:
        """Run probe rounds until several consecutive rounds trigger nothing.

        A single quiet round is weak evidence (probes sample targets
        randomly and can simply miss the one overloaded node), so
        stability requires *quiet_rounds* consecutive move-free rounds.
        Returns the number of rounds executed.  Used to reach the paper's
        "simulate 3 days so node positions stabilize" initial condition
        without simulating wall-clock time.
        """
        quiet = 0
        for round_index in range(max_rounds):
            if self.probe_round(now):
                quiet = 0
            else:
                quiet += 1
                if quiet >= quiet_rounds:
                    if self._confirmation_probe(now) is None:
                        return round_index + 1
                    quiet = 0
        return max_rounds

    def _confirmation_probe(self, now: float) -> Optional[MoveRecord]:
        """Deterministic convergence check behind a quiet streak.

        Random probes can miss the one overloaded node for a whole quiet
        streak (with n nodes the chance is (1 - 1/(n-1))**(n*quiet_rounds)
        — small but real, and it silently ends :meth:`balance_until_stable`
        on a fully imbalanced ring).  The trigger rule is monotone in the
        load ratio, so probing the extreme pair directly settles it: if
        min-load → max-load does not trigger, no pair can.
        """
        if len(self._ring) < 2:
            return None
        names = sorted(self._ring.names())
        loads = {name: self._coordinator.primary_load(name) for name in names}
        prober = min(names, key=loads.__getitem__)
        target = max(names, key=loads.__getitem__)
        if prober == target:
            return None
        return self._maybe_move(prober, target, now)

    # ------------------------------------------------------------------

    def _sample_other(self, prober: str) -> Optional[str]:
        """Uniform-random node other than *prober*, or None if there is none.

        The single-node case is handled here (not just by callers), and the
        membership list is cached against :attr:`Ring.version` instead of
        being rebuilt on every probe.
        """
        if len(self._ring) < 2:
            return None
        if self._sampling == "random-walk":
            from repro.dht.sampling import sample_other

            return sample_other(self._ring, prober, self._rng)
        if self._members_version != self._ring.version:
            self._members = list(self._ring.names())
            self._members_version = self._ring.version
        names = self._members
        while True:
            candidate = names[self._rng.randrange(len(names))]
            if candidate != prober:
                return candidate

    def _maybe_move(self, prober: str, target: str, now: float) -> Optional[MoveRecord]:
        prober_load = self._coordinator.primary_load(prober)
        target_load = self._coordinator.primary_load(target)
        if target_load < self._min_split_load:
            return None
        # Trigger rule from Section 6: move iff load(A) > t * load(B).  A
        # zero-load prober always helps a loaded target.
        if target_load <= self._threshold * prober_load:
            return None

        lo, hi = self._ring.range_of(target)
        split = load_split_point(self._coordinator.primary_keys(target), lo, hi)
        if split is None:
            self.stats._counters["skipped_small"].inc()
            return None
        new_id = self._ring.free_position_at(split)
        if new_id == self._ring.position_of(prober):
            return None
        old_id = self._ring.position_of(prober)
        self.stats._counters["triggered"].inc()
        move_span = None
        if self._spans:
            move_span = self._spans.start_trace(
                "balance.move", now,
                mover=prober, target=target,
                mover_load=prober_load, target_load=target_load,
            )
        span_context = getattr(self._coordinator, "span_context", None)
        if move_span and span_context is not None:
            with span_context(move_span):
                self._coordinator.execute_move(prober, new_id)
        else:
            self._coordinator.execute_move(prober, new_id)
        if move_span:
            self._spans.finish(move_span, now)
        record = MoveRecord(
            time=now,
            mover=prober,
            target=target,
            old_id=old_id,
            new_id=new_id,
            mover_load_before=prober_load,
            target_load_before=target_load,
        )
        self.stats.record_move(record)
        if self._tracer is not None:
            self._tracer.emit(
                BALANCE_MOVE,
                now,
                mover=prober,
                target=target,
                mover_load=prober_load,
                target_load=target_load,
            )
        return record


def normalized_std_dev(loads: Sequence[int]) -> float:
    """Load-imbalance metric from Section 10: stddev(load) / mean(load).

    Zero for a perfectly balanced system; the paper plots this over time in
    Figures 16 and 17.
    """
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in loads) / len(loads)
    return (variance ** 0.5) / mean


def max_over_mean(loads: Sequence[int]) -> float:
    """Ratio of the most loaded node to the mean (paper: 1.6x for D2)."""
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 0.0
    return max(loads) / mean
