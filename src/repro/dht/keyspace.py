"""Circular 512-bit key-space arithmetic.

D2 keys are 64 bytes (Figure 4 of the paper), so the DHT identifier space is
the ring of integers modulo ``2**512``.  Node IDs live in the same space.
This module centralizes all modular arithmetic so the rest of the code never
reasons about wrap-around directly.

Keys are plain Python ints in ``[0, KEY_SPACE)``; helpers convert to and
from 64-byte big-endian representations.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

KEY_BYTES = 64
KEY_BITS = KEY_BYTES * 8
KEY_SPACE = 1 << KEY_BITS
MAX_KEY = KEY_SPACE - 1


def validate_key(key: int) -> int:
    """Return *key* unchanged if it is a valid ring position, else raise."""
    if not isinstance(key, int):
        raise TypeError(f"key must be int, got {type(key).__name__}")
    if not 0 <= key < KEY_SPACE:
        raise ValueError(f"key {key:#x} outside [0, 2**{KEY_BITS})")
    return key


def key_to_bytes(key: int) -> bytes:
    """Encode a ring position as its canonical 64-byte big-endian form."""
    return validate_key(key).to_bytes(KEY_BYTES, "big")


def key_from_bytes(raw: bytes) -> int:
    """Decode a 64-byte big-endian key."""
    if len(raw) != KEY_BYTES:
        raise ValueError(f"key must be exactly {KEY_BYTES} bytes, got {len(raw)}")
    return int.from_bytes(raw, "big")


def hash_to_key(data: bytes) -> int:
    """Map arbitrary bytes uniformly onto the key space.

    Used for consistent hashing (traditional DHT keys and random node IDs).
    SHA-512 output is exactly 64 bytes, matching the key width.
    """
    return int.from_bytes(hashlib.sha512(data).digest(), "big")


def distance(a: int, b: int) -> int:
    """Clockwise distance from *a* to *b* on the ring.

    ``distance(a, a) == 0`` and ``distance(a, b) + distance(b, a) ==
    KEY_SPACE`` for ``a != b``.
    """
    return (b - a) % KEY_SPACE


def in_interval(key: int, lo: int, hi: int) -> bool:
    """True when *key* lies in the half-open circular interval ``(lo, hi]``.

    This is the ownership test used throughout the DHT: the node with ID
    ``hi`` whose predecessor has ID ``lo`` owns exactly the keys in
    ``(lo, hi]``.  When ``lo == hi`` the interval is the full ring (a
    single-node system owns everything).
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo < key <= hi
    return key > lo or key <= hi


def in_open_interval(key: int, lo: int, hi: int) -> bool:
    """True when *key* lies strictly inside the circular interval ``(lo, hi)``."""
    if lo == hi:
        return key != lo
    if lo < hi:
        return lo < key < hi
    return key > lo or key < hi


def midpoint(lo: int, hi: int) -> int:
    """The point halfway along the clockwise arc from *lo* to *hi*."""
    return (lo + distance(lo, hi) // 2) % KEY_SPACE


def interval_width(lo: int, hi: int) -> int:
    """Width of the clockwise arc ``(lo, hi]``; full ring when ``lo == hi``."""
    if lo == hi:
        return KEY_SPACE
    return distance(lo, hi)


def key_fraction(key: int) -> float:
    """Position of *key* as a fraction of the ring in ``[0, 1)``.

    Handy for plotting key distributions and for coarse range bucketing.
    """
    return key / KEY_SPACE


def span_covers(spans: Iterable, key: int) -> bool:
    """True if any ``(lo, hi)`` half-open circular span in *spans* covers *key*."""
    return any(in_interval(key, lo, hi) for lo, hi in spans)
