"""Uniform node sampling by random walk (Mercury's technique).

The Karger–Ruhl balancing rule needs each node to contact a *uniform
random* other node once per probe interval.  A real DHT node has no global
membership list; Mercury (Section 6: "implements a version of this
algorithm using an efficient random sampling technique") samples with
random walks over its routing links.

The naive walk — "jump to the successor of a uniformly random point" —
is *not* uniform over nodes: a node is hit with probability proportional
to the arc it owns, and under D2 the balancer makes arcs wildly uneven on
purpose.  We therefore run a Metropolis–Hastings walk toward the uniform
distribution with a *mixed* proposal kernel:

* with probability 1/2, an **independence proposal** — jump to the
  successor of a uniformly random ring point (probability ∝ arc width);
* with probability 1/2, a **neighbor proposal** — step to the immediate
  successor or predecessor (symmetric).

The independence part teleports across the ring; the neighbor part keeps
the chain mobile inside clusters of tiny arcs, where independence
proposals alone almost always point at some huge empty arc and get
rejected (exactly the shape D2's balancer produces).  The MH acceptance
ratio uses the full mixture density, so uniformity is exact in the limit;
tests check near-uniformity on rings with 10^6-fold arc-size skew.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Optional

from repro.dht.keyspace import KEY_SPACE, interval_width
from repro.dht.ring import Ring


def _arc_width(ring: Ring, name: str) -> int:
    lo, hi = ring.range_of(name)
    if len(ring) == 1:
        return KEY_SPACE
    return interval_width(lo, hi)


def _proposal_density(ring: Ring, a: str, b: str, arc_b: int) -> float:
    """q(b | a) under the mixed kernel, up to the constant KEY_SPACE."""
    density = 0.5 * arc_b / KEY_SPACE
    if b == ring.successor_of(a) or b == ring.predecessor_of(a):
        # Neighbor proposals pick one of two directions uniformly.  (On a
        # two-node ring both directions coincide; the factor cancels in
        # the symmetric acceptance ratio anyway.)
        density += 0.5 * 0.5
    return density


def random_walk_sample(
    ring: Ring,
    start: str,
    rng: random.Random,
    *,
    steps: Optional[int] = None,
) -> str:
    """An approximately uniform node sample reachable from *start*.

    *steps* defaults to ``4 * ceil(log2 n) + 8`` proposal rounds — ample
    for the mixed independence/neighbor MH chain (independence proposals
    give O(1) mixing across well-sized arcs; neighbor proposals carry the
    chain through clusters of tiny arcs).
    """
    n = len(ring)
    if n == 0:
        raise ValueError("cannot sample an empty ring")
    if n == 1:
        return next(iter(ring.names()))
    if steps is None:
        steps = 4 * math.ceil(math.log2(n)) + 8
    current = start
    current_arc = _arc_width(ring, current)
    for _ in range(steps):
        if rng.random() < 0.5:
            candidate = ring.successor(rng.randrange(KEY_SPACE))
        else:
            candidate = (
                ring.successor_of(current)
                if rng.random() < 0.5
                else ring.predecessor_of(current)
            )
        if candidate == current:
            continue
        candidate_arc = _arc_width(ring, candidate)
        # Metropolis-Hastings for the uniform target: accept with
        # q(current | candidate) / q(candidate | current).
        forward = _proposal_density(ring, current, candidate, candidate_arc)
        backward = _proposal_density(ring, candidate, current, current_arc)
        if forward <= 0:
            continue
        if backward >= forward or rng.random() < backward / forward:
            current = candidate
            current_arc = candidate_arc
    return current


def sample_other(ring: Ring, prober: str, rng: random.Random) -> str:
    """A uniform-ish sample different from *prober* (what probing needs)."""
    for _ in range(64):
        candidate = random_walk_sample(ring, prober, rng)
        if candidate != prober:
            return candidate
    # Pathological two-node ring with extreme skew: fall back to the peer.
    for name in ring.names():
        if name != prober:
            return name
    raise ValueError("ring has only the prober")


def empirical_distribution(
    ring: Ring, rng: random.Random, samples: int = 2000, *, steps: Optional[int] = None
) -> Counter:
    """Sampling histogram for uniformity tests and calibration."""
    names = list(ring.names())
    counts: Counter = Counter()
    for _ in range(samples):
        start = names[rng.randrange(len(names))]
        counts[random_walk_sample(ring, start, rng, steps=steps)] += 1
    for name in names:
        counts.setdefault(name, 0)
    return counts
