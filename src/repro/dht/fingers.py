"""Precomputed, version-keyed Chord finger tables.

:func:`repro.dht.routing.route` resolves the finger rule ``successor(p +
2**i)`` with a ring bisect per level per hop, which at 10^4 nodes makes a
single lookup cost dozens of O(log n) probes over 512-bit integers.  The
targets themselves are *invariant between ring versions*, so this module
materializes them once per node per membership generation and serves every
subsequent hop from plain list indexing.

Two structural facts keep the tables small and cheap to build:

* For every level where ``2**i <= distance(p, successor(p))`` the finger
  is simply the node's immediate successor — with n uniformly-placed
  nodes that covers the bottom ``KEY_BITS - O(log n)`` levels, so only the
  top ``O(log n)`` levels need a bisect each.
* Tables are built *lazily per node*: a routing stream only pays for the
  nodes its hops actually visit.

Invalidation follows the same contract as the ring's successor memos
(:attr:`repro.dht.ring.Ring.version`): any join, leave, or position change
bumps the version and the next access rebuilds from a fresh snapshot.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.dht.keyspace import KEY_BITS, KEY_SPACE, in_interval
from repro.dht.ring import Ring, RingError

#: One node's finger state: ``(low_levels, succ_index, upper_indexes)``.
#: Levels ``0 .. low_levels-1`` all point at the immediate successor;
#: level ``low_levels + k`` points at ``upper_indexes[k]``.
NodeFingers = Tuple[int, int, Tuple[int, ...]]


class FingerTable:
    """Lazily-materialized finger targets for every node of one ring.

    The table snapshots the ring's sorted ``(ids, names)`` arrays per
    membership generation; per-node finger arrays are built on first visit
    and reused until the ring version changes.  All lookups after the
    snapshot are list indexing — no bisects on the hop hot path.
    """

    def __init__(self, ring: Ring) -> None:
        self._ring = ring
        self._version = -1
        self._ids: Tuple[int, ...] = ()
        self._names: Tuple[str, ...] = ()
        self._nodes: Dict[int, NodeFingers] = {}

    # ------------------------------------------------------------------
    # snapshot management

    def refresh(self) -> None:
        """Re-snapshot the ring if its membership generation moved."""
        ring = self._ring
        if self._version == ring.version:
            return
        self._ids = tuple(ring.positions())
        self._names = tuple(ring.names())
        self._nodes.clear()
        self._version = ring.version

    def __len__(self) -> int:
        self.refresh()
        return len(self._ids)

    @property
    def ids(self) -> Tuple[int, ...]:
        self.refresh()
        return self._ids

    @property
    def names(self) -> Tuple[str, ...]:
        self.refresh()
        return self._names

    def index_of_id(self, node_id: int) -> int:
        """Ring-order index of the node at *node_id* (must exist)."""
        self.refresh()
        index = bisect_left(self._ids, node_id)
        if index >= len(self._ids) or self._ids[index] != node_id:
            raise RingError(f"no node at position {node_id:#x}")
        return index

    def owner_index(self, key: int) -> int:
        """Ring-order index of the owner of *key* (successor bisect)."""
        self.refresh()
        if not self._ids:
            raise RingError("ring is empty")
        return bisect_left(self._ids, key) % len(self._ids)

    # ------------------------------------------------------------------
    # finger materialization

    def fingers_of(self, index: int) -> NodeFingers:
        """Finger state of the node at ring-order *index* (built lazily)."""
        self.refresh()
        entry = self._nodes.get(index)
        if entry is None:
            entry = self._build(index)
            self._nodes[index] = entry
        return entry

    def _build(self, index: int) -> NodeFingers:
        ids = self._ids
        size = len(ids)
        p = ids[index]
        succ_index = (index + 1) % size
        if size == 1:
            return (KEY_BITS, succ_index, ())
        d_succ = (ids[succ_index] - p) % KEY_SPACE
        # Levels with 2**i <= d_succ land inside (p, successor]: the finger
        # is the immediate successor, no bisect needed.
        low_levels = d_succ.bit_length()
        upper: List[int] = []
        for level in range(low_levels, KEY_BITS):
            target = (p + (1 << level)) % KEY_SPACE
            upper.append(bisect_left(ids, target) % size)
        return (low_levels, succ_index, tuple(upper))

    # ------------------------------------------------------------------
    # hop resolution

    def next_hop(self, index: int, current_id: int, key: int,
                 remaining: int) -> Optional[int]:
        """Index of the farthest finger of node *index* not overshooting *key*.

        Mirrors the greedy rule of ``routing._best_finger`` exactly —
        largest level first, candidate usable when it lies in ``(current,
        key]`` — but resolves each candidate with list indexing instead of
        a ring bisect.  Returns ``None`` when no finger makes progress (the
        owner is the immediate successor).
        """
        low_levels, succ_index, upper = self.fingers_of(index)
        ids = self._ids
        level = remaining.bit_length() - 1
        while level >= low_levels:
            candidate = upper[level - low_levels]
            candidate_id = ids[candidate]
            if candidate != index and in_interval(candidate_id, current_id, key):
                return candidate
            level -= 1
        if level >= 0:
            # All remaining levels point at the immediate successor.
            candidate_id = ids[succ_index]
            if succ_index != index and in_interval(candidate_id, current_id, key):
                return succ_index
        return None
