"""Ring membership: sorted node IDs, successor lookup, replica groups.

The ring is the one data structure shared by every DHT variant in this
reproduction.  Nodes are identified by a stable *name* (they keep it for
life) and occupy a ring *position* (their current ID), which the dynamic
load balancer may change.  Under consistent hashing positions never change;
under D2's Karger–Ruhl balancing a node leaves and rejoins at a new
position.

Ownership rule: the node at position ``p`` whose predecessor sits at ``q``
owns the half-open circular arc ``(q, p]``.  A key's *replica group* is its
owner plus the next ``r - 1`` distinct successors (the paper's ``r``
immediate successors; the first is the primary replica).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dht.keyspace import KEY_SPACE, in_interval, validate_key


class RingError(Exception):
    """Raised on invalid membership operations (duplicate joins, etc.)."""


#: Cap on the hot-path lookup memos below.  Replay loops resolve the same
#: block keys millions of times between membership changes, but a long
#: churn-free replay over a huge key population must not grow the memo
#: without bound; on overflow the memo is simply dropped and rebuilt.
_MEMO_MAX = 1 << 17


class Ring:
    """Sorted ring of named nodes supporting O(log n) successor lookup."""

    def __init__(self) -> None:
        self._ids: List[int] = []            # sorted ring positions
        self._names: List[str] = []          # names parallel to _ids
        self._position: Dict[str, int] = {}  # name -> current ring position
        self._version = 0                    # bumped on every membership change
        # key -> owner index and (owner index, count) -> replica group,
        # valid only while _memo_version == _version (see successor_index).
        self._memo_version = -1
        self._owner_memo: Dict[int, int] = {}
        self._group_memo: Dict[Tuple[int, int], List[str]] = {}

    @property
    def version(self) -> int:
        """Monotonic membership/position generation.

        Incremented by every join, leave, or position change, so callers
        can cache derived views (e.g. the balancer's sampling list) and
        invalidate them only when the ring actually changed.
        """
        return self._version

    # ------------------------------------------------------------------
    # membership

    def join(self, name: str, node_id: int) -> None:
        """Add node *name* at ring position *node_id*.

        Positions must be unique; callers that derive positions from data
        (e.g. load-balancing split points) should use
        :meth:`free_position_at` first.
        """
        validate_key(node_id)
        if name in self._position:
            raise RingError(f"node {name!r} already joined")
        index = bisect.bisect_left(self._ids, node_id)
        if index < len(self._ids) and self._ids[index] == node_id:
            raise RingError(f"ring position {node_id:#x} already occupied")
        self._ids.insert(index, node_id)
        self._names.insert(index, name)
        self._position[name] = node_id
        self._version += 1

    def leave(self, name: str) -> int:
        """Remove node *name*; returns the position it vacated."""
        node_id = self._require(name)
        index = bisect.bisect_left(self._ids, node_id)
        del self._ids[index]
        del self._names[index]
        del self._position[name]
        self._version += 1
        return node_id

    def change_position(self, name: str, new_id: int) -> Tuple[int, int]:
        """Atomically move *name* to *new_id* (leave + rejoin).

        Returns ``(old_id, new_id)``.  This is how the load balancer
        implements an ID change.
        """
        old_id = self.leave(name)
        try:
            self.join(name, new_id)
        except RingError:
            self.join(name, old_id)  # restore on failure so the ring stays valid
            raise
        return old_id, new_id

    def free_position_at(self, desired: int) -> int:
        """Nearest unoccupied position at or clockwise-before *desired*.

        Split points computed from block keys can coincide with an existing
        node position; stepping counter-clockwise keeps the intended load
        split (the blocks at exactly *desired* stay with the new node).
        """
        validate_key(desired)
        candidate = desired
        while self.occupied(candidate):
            candidate = (candidate - 1) % KEY_SPACE
        return candidate

    def occupied(self, node_id: int) -> bool:
        index = bisect.bisect_left(self._ids, node_id)
        return index < len(self._ids) and self._ids[index] == node_id

    # ------------------------------------------------------------------
    # lookup

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, name: str) -> bool:
        return name in self._position

    def names(self) -> Iterator[str]:
        """Node names in ring order (ascending position)."""
        return iter(list(self._names))

    def positions(self) -> Sequence[int]:
        """Snapshot of sorted ring positions."""
        return tuple(self._ids)

    def position_of(self, name: str) -> int:
        return self._require(name)

    def name_at(self, node_id: int) -> str:
        index = bisect.bisect_left(self._ids, node_id)
        if index >= len(self._ids) or self._ids[index] != node_id:
            raise RingError(f"no node at position {node_id:#x}")
        return self._names[index]

    def successor_index(self, key: int) -> int:
        """Index (into ring order) of the owner of *key*.

        Memoized per membership generation: between ring changes the replay
        loops resolve the same keys over and over, so a repeat lookup is one
        dict probe instead of a bisect over the position list.
        """
        if not self._ids:
            raise RingError("ring is empty")
        if self._memo_version != self._version:
            self._owner_memo.clear()
            self._group_memo.clear()
            self._memo_version = self._version
        index = self._owner_memo.get(key)
        if index is None:
            validate_key(key)
            index = bisect.bisect_left(self._ids, key) % len(self._ids)
            if len(self._owner_memo) >= _MEMO_MAX:
                self._owner_memo.clear()
            self._owner_memo[key] = index
        return index

    def successor(self, key: int) -> str:
        """Name of the node that owns *key* (its immediate successor)."""
        return self._names[self.successor_index(key)]

    def successors(self, key: int, count: int) -> List[str]:
        """The *count* distinct nodes clockwise from *key* (replica group).

        Returns fewer than *count* names when the ring is smaller than
        *count*.  Replica groups are memoized by (owner index, count) — all
        keys in one primary arc share one cached group — and invalidated
        with the owner memo whenever membership changes.
        """
        start = self.successor_index(key)  # validates key, refreshes memos
        entry = self._group_memo.get((start, count))
        if entry is None:
            size = len(self._ids)
            entry = [self._names[(start + i) % size] for i in range(min(count, size))]
            if len(self._group_memo) >= _MEMO_MAX:
                self._group_memo.clear()
            self._group_memo[(start, count)] = entry
        return entry[:]  # callers may mutate their copy; the memo stays intact

    def predecessor_of(self, name: str) -> str:
        """Name of the node immediately counter-clockwise of *name*."""
        node_id = self._require(name)
        index = bisect.bisect_left(self._ids, node_id)
        return self._names[(index - 1) % len(self._ids)]

    def successor_of(self, name: str) -> str:
        """Name of the node immediately clockwise of *name*."""
        node_id = self._require(name)
        index = bisect.bisect_left(self._ids, node_id)
        return self._names[(index + 1) % len(self._ids)]

    def range_of(self, name: str) -> Tuple[int, int]:
        """The arc ``(pred_id, own_id]`` that *name* owns as primary."""
        node_id = self._require(name)
        pred_id = self.position_of(self.predecessor_of(name))
        return pred_id, node_id

    def owns(self, name: str, key: int) -> bool:
        """True when *name* is the primary owner of *key*."""
        lo, hi = self.range_of(name)
        if len(self._ids) == 1:
            return True
        return in_interval(key, lo, hi)

    def replica_range_of(self, name: str, replicas: int) -> Tuple[int, int]:
        """The arc of keys for which *name* holds any of the *replicas* copies.

        A node replicates the primary ranges of itself and its ``replicas-1``
        immediate predecessors, i.e. the arc ``(pred^replicas(name), name]``.
        """
        node_id = self._require(name)
        size = len(self._ids)
        if replicas >= size:
            return node_id, node_id  # whole ring
        index = bisect.bisect_left(self._ids, node_id)
        return self._ids[(index - replicas) % size], node_id

    def _require(self, name: str) -> int:
        try:
            return self._position[name]
        except KeyError:
            raise RingError(f"unknown node {name!r}") from None


def load_split_point(keys: Sequence[int], lo: int, hi: int) -> Optional[int]:
    """Median split point of *keys* within the primary arc ``(lo, hi]``.

    Returns the key below-or-at which half of the keys (counted clockwise
    from *lo*) fall, i.e. the ring position a joining predecessor should
    take to inherit the first half of the load.  Returns ``None`` when the
    arc holds fewer than two keys (nothing to split).
    """
    in_range = [k for k in keys if in_interval(k, lo, hi)]
    if len(in_range) < 2:
        return None
    # Order keys clockwise starting just after lo.
    in_range.sort(key=lambda k: (k - lo - 1) % KEY_SPACE)
    median = in_range[(len(in_range) - 1) // 2]
    if median == hi:
        return None  # splitting at the owner's own position is a no-op
    return median
