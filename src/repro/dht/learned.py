"""Online-trained learned key-range → node index (*A Distributed Learned
Hash Table*, PAPERS.md).

The lookup cache (Section 5) remembers *exact* ranges a client has already
resolved; finger routing resolves everything else in ``O(log n)`` hops.
This module adds the third acceleration tier: a **piecewise-linear model of
the ring's key→owner CDF**, trained online from the ground truth every
routed lookup produces anyway.  Segments divide the *observed key domain*
(the span between the smallest and largest sampled keys, recomputed at
every refit), not the whole keyspace, and every feature is the key's
position *within that integer domain*: locality-preserving key schemes
concentrate a volume's keys on an arc so narrow that a key's absolute
fraction of the 2^512 space is constant to float precision — only the
domain-relative big-integer ratio still resolves individual keys.  A
trained index predicts the owning node in O(1) — one segment selection
plus one fused multiply-add — and the
prediction is then *verified* against the ring like a real learned-DHT
client verifies against the contacted node: the predicted node forwards
along its neighbors for up to :attr:`LearnedIndex.max_probe` hops, and a
prediction that lands farther away than that is a **mispredict** that falls
back to plain finger routing (byte-identical to
:func:`repro.dht.routing.route` — the accounting never lies about hops).

Determinism contract (mirrors :class:`repro.dht.fingers.FingerTable`):

* all training state derives from a seeded reservoir RNG plus the observed
  ``(key, owner)`` stream — identical runs train identical models;
* the fitted model is keyed to :attr:`repro.dht.ring.Ring.version`; any
  join/leave/position change invalidates the model *and* its training
  samples on the next access (stale samples describe a ring that no longer
  exists), so a churned index falls back to routing until retrained;
* retraining fires at fixed observation counts, never on wall-clock time.

Metrics: ``dht.learned.hit`` / ``dht.learned.mispredict`` /
``dht.learned.retrain`` counters (plus ``dht.learned.invalidate`` for
ring-version resets), and a ``dht.learned.retrain`` event kind for the
event stream, so Figure-9 style traffic accounting can separate learned
hits from fallback routes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dht.ring import Ring
from repro.dht.routing import LookupResult, finger_table_for, route
from repro.obs.events import EventTracer, register_kind
from repro.obs.metrics import MetricsRegistry

LEARNED_RETRAIN = register_kind("dht.learned.retrain")

#: Defaults sized for the scales the experiments run at: ~40 nodes per
#: segment at 10^4 nodes keeps per-segment fits near-linear, and the
#: reservoir bounds training memory at ``segments * samples_per_segment``
#: pairs regardless of run length.
DEFAULT_SEGMENTS = 256
DEFAULT_SAMPLES_PER_SEGMENT = 32
DEFAULT_MIN_OBSERVATIONS = 64
DEFAULT_RETRAIN_INTERVAL = 1024
DEFAULT_MAX_PROBE = 8


@dataclass(frozen=True)
class LearnedLookup:
    """Outcome of one learned-index lookup.

    ``result`` is the routed outcome: on a **hit** its path runs from the
    querier through the predicted node (plus bounded neighbor forwarding)
    to the owner; on a **mispredict** (or while untrained) it is exactly
    what :func:`repro.dht.routing.route` returns.  ``extra_messages``
    counts the wasted probe of a mispredicted node — it is part of the
    lookup's traffic bill even though it is off the final path.
    """

    result: LookupResult
    predicted: Optional[str]
    hit: bool
    extra_messages: int = 0

    @property
    def messages(self) -> int:
        return self.result.messages + self.extra_messages


class LearnedIndex:
    """Piecewise-linear key→owner model, trained online, version-keyed.

    Parameters
    ----------
    segments:
        Number of equal slices of the *observed key domain*, each with
        its own linear fit (the domain is re-derived at every refit).
    samples_per_segment:
        Scales the single shared reservoir (algorithm R, seeded —
        deterministic) to ``segments * samples_per_segment`` pairs.
    min_observations:
        Observations before the first fit; the index routes everything
        until then.
    retrain_interval:
        Observations between refits once trained.
    max_probe:
        Neighbor hops the predicted node may forward before the lookup is
        declared mispredicted and re-routed.
    """

    def __init__(
        self,
        ring: Ring,
        *,
        segments: int = DEFAULT_SEGMENTS,
        samples_per_segment: int = DEFAULT_SAMPLES_PER_SEGMENT,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        retrain_interval: int = DEFAULT_RETRAIN_INTERVAL,
        max_probe: int = DEFAULT_MAX_PROBE,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        if samples_per_segment < 1:
            raise ValueError(
                f"samples_per_segment must be >= 1, got {samples_per_segment}"
            )
        if max_probe < 0:
            raise ValueError(f"max_probe must be >= 0, got {max_probe}")
        self._ring = ring
        self.segments = segments
        self.samples_per_segment = samples_per_segment
        self.min_observations = max(1, min_observations)
        self.retrain_interval = max(1, retrain_interval)
        self.max_probe = max_probe
        self._rng = random.Random(seed)
        self._tracer = tracer
        metrics = registry if registry is not None else MetricsRegistry()
        self._c_hit = metrics.counter("dht.learned.hit")
        self._c_mispredict = metrics.counter("dht.learned.mispredict")
        self._c_retrain = metrics.counter("dht.learned.retrain")
        self._c_invalidate = metrics.counter("dht.learned.invalidate")
        #: Reservoir bound: the model never holds more training pairs.
        self.sample_capacity = segments * samples_per_segment
        # Fitted state, valid only while _version == ring.version.
        self._version = -1
        self._ids: Tuple[int, ...] = ()
        self._names: Tuple[str, ...] = ()
        self._model: Optional[List[Optional[Tuple[float, float]]]] = None
        self._domain: Tuple[int, int] = (0, 0)  # integer keys: (lo, hi)
        self._samples: List[Tuple[int, int]] = []  # (key, owner index)
        self._observed = 0
        self._since_fit = 0

    # ------------------------------------------------------------------
    # snapshot / invalidation

    def refresh(self) -> None:
        """Invalidate the model if the ring's membership generation moved.

        Training samples are dropped with the model: an observed
        ``(key, owner index)`` pair is only meaningful against the snapshot
        it was observed under.
        """
        ring = self._ring
        if self._version == ring.version:
            return
        if self._version != -1:
            self._c_invalidate.inc()
        self._ids = tuple(ring.positions())
        self._names = tuple(ring.names())
        self._model = None
        self._domain = (0, 0)
        self._samples = []
        self._observed = 0
        self._since_fit = 0
        self._version = ring.version

    @property
    def trained(self) -> bool:
        self.refresh()
        return self._model is not None

    # ------------------------------------------------------------------
    # online training

    def _fraction(self, key: int) -> float:
        """Position of *key* within the fitted integer domain.

        The ratio is taken over Python big integers *before* the float
        conversion, so two keys differing only in their low-order bits —
        indistinguishable as absolute fractions of the 2^512 space —
        still map to distinct features.  Keys outside the domain
        extrapolate (values below 0 or above 1).
        """
        lo, hi = self._domain
        span = hi - lo
        if span <= 0:
            return 0.0
        return (key - lo) / span

    def _segment_of(self, fraction: float) -> int:
        """Segment index of *fraction* (domain-relative, clamped)."""
        index = int(fraction * self.segments)
        if index < 0:
            return 0
        if index >= self.segments:
            return self.segments - 1
        return index

    def observe(self, key: int, owner_index: int, now: float = 0.0) -> None:
        """Feed one ground-truth ``(key, owner ring-index)`` pair.

        Reservoir-samples into the shared sample pool (algorithm R) and
        refits at the fixed observation thresholds.  Callers must have
        called :meth:`refresh` (every public lookup/predict path does).
        """
        self._observed += 1
        if len(self._samples) < self.sample_capacity:
            self._samples.append((key, owner_index))
        else:
            slot = self._rng.randrange(self._observed)
            if slot < self.sample_capacity:
                self._samples[slot] = (key, owner_index)
        self._since_fit += 1
        if self._model is None:
            if self._observed >= self.min_observations:
                self._fit(now)
        elif self._since_fit >= self.retrain_interval:
            self._fit(now)

    def _fit(self, now: float) -> None:
        """Refit: re-derive the domain, re-bucket the samples, fit lines.

        The domain is the integer span of the *sampled* keys, so a
        workload confined to one locality arc still spreads across all
        segments — each fit covers ~1/segments of the keys actually seen.
        """
        samples = sorted(self._samples)
        self._domain = (samples[0][0], samples[-1][0])
        buckets: List[List[Tuple[float, int]]] = [[] for _ in range(self.segments)]
        for key, owner_index in samples:
            fraction = self._fraction(key)
            buckets[self._segment_of(fraction)].append((fraction, owner_index))
        model: List[Optional[Tuple[float, float]]] = [
            _fit_segment(bucket) for bucket in buckets
        ]
        self._model = model
        self._since_fit = 0
        self._c_retrain.inc()
        if self._tracer is not None:
            self._tracer.emit(
                LEARNED_RETRAIN, now,
                observations=self._observed,
                segments_fit=sum(1 for entry in model if entry is not None),
            )

    # ------------------------------------------------------------------
    # prediction

    def predict(self, key: int) -> Optional[int]:
        """Predicted owner ring-index for *key*, or None while untrained.

        O(1): one segment select and one linear evaluation; no searching.
        """
        self.refresh()
        model = self._model
        if model is None or not self._ids:
            return None
        fraction = self._fraction(key)
        entry = model[self._segment_of(fraction)]
        if entry is None:
            return None
        slope, intercept = entry
        index = int(slope * fraction + intercept + 0.5)
        last = len(self._ids) - 1
        if index < 0:
            return 0
        if index > last:
            return last
        return index

    def _locate(self, start: int, key: int) -> Optional[List[int]]:
        """Hop indexes from *start* to the owner of *key*, or None if the
        owner lies more than :attr:`max_probe` neighbor steps away.

        The returned list begins at *start* and ends at the owner (it is
        the forwarding chain a real predicted node would relay along its
        successor/predecessor links).
        """
        ids = self._ids
        size = len(ids)
        if size == 1:
            return [0]
        hops = [start]
        index = start
        if ids[index] < key:
            # Owner is at or beyond the next larger id (index 0 on wrap).
            while ids[index] < key:
                if index == size - 1:
                    hops.append(0)
                    return hops if len(hops) - 1 <= self.max_probe else None
                index += 1
                hops.append(index)
                if len(hops) - 1 > self.max_probe:
                    return None
            return hops
        # ids[index] >= key: walk back while the predecessor still covers key.
        while index > 0 and ids[index - 1] >= key:
            index -= 1
            hops.append(index)
            if len(hops) - 1 > self.max_probe:
                return None
        return hops

    # ------------------------------------------------------------------
    # the lookup path

    def lookup(self, source: str, key: int, *, fingers=None,
               now: float = 0.0) -> LearnedLookup:
        """Resolve *key* from *source*: predicted O(1) path, else routing.

        On a **hit** the path is ``source → predicted node → (≤ max_probe
        neighbor forwards) → owner`` and ``dht.learned.hit`` increments.
        On a **mispredict** the wasted probe is billed as one extra
        message, ``dht.learned.mispredict`` increments, and the returned
        ``result`` is *exactly* ``route(ring, source, key)`` — path, owner,
        and message count all byte-identical to the unaccelerated lookup.
        Every fallback feeds the observed owner back into training.
        """
        self.refresh()
        predicted_index = self.predict(key)
        predicted = self._names[predicted_index] if predicted_index is not None else None
        if predicted_index is not None:
            hop_indexes = self._locate(predicted_index, key)
            if hop_indexes is not None:
                names = self._names
                path = [source]
                for hop in hop_indexes:
                    if names[hop] != path[-1]:
                        path.append(names[hop])
                result = LookupResult(key=key, owner=names[hop_indexes[-1]], path=path)
                self._c_hit.inc()
                self.observe(key, hop_indexes[-1], now)
                return LearnedLookup(result=result, predicted=predicted, hit=True)
        table = fingers if fingers is not None else finger_table_for(self._ring)
        result = route(self._ring, source, key, fingers=table)
        self.observe(key, self._ring.successor_index(key), now)
        if predicted is not None:
            self._c_mispredict.inc()
            return LearnedLookup(
                result=result, predicted=predicted, hit=False, extra_messages=1
            )
        return LearnedLookup(result=result, predicted=None, hit=False)

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> dict:
        """JSON-ready training-state summary (for reports and tests)."""
        self.refresh()
        model = self._model
        return {
            "trained": model is not None,
            "observations": self._observed,
            "segments": self.segments,
            "segments_fit": (
                sum(1 for entry in model if entry is not None) if model else 0
            ),
            "hits": self._c_hit.value,
            "mispredicts": self._c_mispredict.value,
            "retrains": self._c_retrain.value,
            "invalidations": self._c_invalidate.value,
        }


def _fit_segment(samples: List[Tuple[float, int]]) -> Optional[Tuple[float, float]]:
    """Least-squares line through one segment's ``(fraction, index)`` pairs.

    One sample fits a constant; none fits nothing (the segment stays on
    the routed path until a lookup lands in it).
    """
    count = len(samples)
    if count == 0:
        return None
    if count == 1:
        return (0.0, float(samples[0][1]))
    mean_u = sum(u for u, _ in samples) / count
    mean_i = sum(i for _, i in samples) / count
    var = sum((u - mean_u) ** 2 for u, _ in samples)
    if var <= 0.0:
        return (0.0, mean_i)
    cov = sum((u - mean_u) * (i - mean_i) for u, i in samples)
    slope = cov / var
    return (slope, mean_i - slope * mean_u)
