"""O(log n) lookup routing model (Chord-style greedy finger routing).

The paper's prototype routes lookups through Mercury, which maintains
``O(log n)`` long links and resolves a lookup in ``O(log n)`` hops.  For the
reproduction we model routing with the classic Chord finger rule computed
directly from the current ring: from position ``p``, the finger for level
``i`` points at ``successor(p + 2**i)``, and a lookup greedily takes the
largest finger that does not overshoot the target key.

Because load-balancing ID changes are *voluntary* leaves/rejoins, the paper
notes routing state can be repaired immediately (Section 8.1, footnote); we
therefore always route over the up-to-date ring rather than simulating
stale finger tables.

Hot-path structure (the million-user scale engine):

* :func:`route` — the single-lookup API every experiment uses.  It is a
  thin wrapper over a shared per-ring :class:`~repro.dht.fingers.FingerTable`
  (precomputed ``successor(p + 2**i)`` targets, invalidated exactly like
  the ring's successor memos), so span emission and Figure-9 message
  accounting are unchanged while each hop costs list indexing instead of
  per-level ring bisects.
* :func:`route_many` — batched resolution of many lookups over the same
  shared finger state: one pass over the active frontier per hop level,
  amortizing source resolution and snapshot checks across the batch.
  Results are element-for-element identical to calling :func:`route`.
* :func:`route_cold` — the original bisect-per-level implementation, kept
  as the reference for equivalence tests and the cold side of
  ``benchmarks/bench_micro_route.py``.

The functions here return both the hop path (for latency accounting — each
hop is one network RTT leg in the recursive lookup) and the message count
(for Figure 9's lookup-traffic accounting).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dht.fingers import FingerTable
from repro.dht.keyspace import KEY_BITS, KEY_SPACE, distance, in_interval
from repro.dht.ring import Ring


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a routed DHT lookup.

    ``path`` starts at the querying node and ends at the key's owner.
    ``messages`` counts protocol messages: one request per hop plus the
    final response routed back to the querier (recursive routing, as in
    Mercury).
    """

    key: int
    owner: str
    path: List[str]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def messages(self) -> int:
        # Each hop forwards the request once; the terminal node answers the
        # querier directly with one response message.
        return self.hops + 1


#: Shared per-ring finger tables, keyed weakly so dropping a ring drops its
#: routing state with it.  One table per ring; the table itself re-snapshots
#: whenever the ring's membership generation moves.
_TABLES: "weakref.WeakKeyDictionary[Ring, FingerTable]" = weakref.WeakKeyDictionary()


def finger_table_for(ring: Ring) -> FingerTable:
    """The shared precomputed finger table of *ring* (created on demand)."""
    table = _TABLES.get(ring)
    if table is None:
        table = FingerTable(ring)
        _TABLES[ring] = table
    return table


def _greedy_path(
    table: FingerTable, ring: Ring, source: str, key: int, max_hops: int
) -> List[str]:
    """Hop path from *source* to the owner of *key* over shared fingers.

    Exactly the greedy rule of :func:`route_cold`, resolved against the
    precomputed table: same paths, same hop counts, same failure mode.
    """
    names = table.names  # refreshes the snapshot if the ring changed
    ids = table.ids
    owner_index = ring.successor_index(key)
    current_id = ring.position_of(source)
    path = [source]
    if len(ids) == 1:
        return path
    index = table.index_of_id(current_id)
    hops = 0
    while index != owner_index:
        remaining = (key - current_id) % KEY_SPACE
        if remaining == 0:
            break
        nxt = table.next_hop(index, current_id, key, remaining)
        if nxt is None or nxt == index:
            # No finger makes progress: the owner is our immediate successor.
            nxt = (index + 1) % len(ids)
        path.append(names[nxt])
        index = nxt
        current_id = ids[nxt]
        hops += 1
        if hops > max_hops:
            raise RuntimeError("routing failed to converge; ring state is inconsistent")
    return path


def _emit_hop_spans(
    path: Sequence[str], tracer, parent, now: float,
    leg_time: Optional[Callable[[str, str], float]],
) -> None:
    t = now
    for index in range(len(path) - 1):
        frm, to = path[index], path[index + 1]
        leg = leg_time(frm, to) if leg_time is not None else 0.0
        span = tracer.start_span("dht.hop", t, parent, frm=frm, to=to, hop=index)
        t += leg
        tracer.finish(span, t)


def route(
    ring: Ring,
    source: str,
    key: int,
    *,
    max_hops: int = 4 * KEY_BITS,
    tracer=None,
    parent=None,
    now: float = 0.0,
    leg_time: Optional[Callable[[str, str], float]] = None,
    fingers: Optional[FingerTable] = None,
) -> LookupResult:
    """Route a lookup for *key* from node *source* over *ring*.

    Implements greedy finger routing: at each step the current node
    forwards to the finger (``successor(current + 2**i)`` for the largest
    ``i``) that lands inside the remaining arc ``(current, key)``, falling
    back to its immediate successor.  Terminates at the key's owner.

    Hops resolve against the ring's shared precomputed
    :class:`~repro.dht.fingers.FingerTable` (pass *fingers* to supply an
    explicit table); paths are identical to :func:`route_cold`.

    With a span *tracer* and a live *parent* span, one ``dht.hop`` child
    span is emitted per hop leg, starting at *now* and advancing by
    ``leg_time(from, to)`` per leg (zero-duration hops when no *leg_time*
    is given).  A falsy tracer or parent costs one truthiness check.
    """
    if source not in ring:
        raise ValueError(f"source node {source!r} not in ring")
    table = fingers if fingers is not None else finger_table_for(ring)
    path = _greedy_path(table, ring, source, key, max_hops)
    if tracer and parent:
        _emit_hop_spans(path, tracer, parent, now, leg_time)
    return LookupResult(key=key, owner=ring.successor(key), path=path)


def route_many(
    ring: Ring,
    source: str,
    keys: Sequence[int],
    *,
    max_hops: int = 4 * KEY_BITS,
    fingers: Optional[FingerTable] = None,
) -> List[LookupResult]:
    """Resolve many lookups from one *source* over shared finger state.

    The batch advances as a frontier: one pass over the still-active
    lookups per hop level, with the source position, ring snapshot, and
    finger arrays resolved once for the whole batch instead of once per
    key.  Returns one :class:`LookupResult` per key, in key order, each
    identical to what :func:`route` would produce.

    This is the span-free hot path for high-volume lookup streams (the
    scale harness, cache warmers, learned-lookup training data); callers
    that need per-hop spans route keys individually via :func:`route`.
    """
    if source not in ring:
        raise ValueError(f"source node {source!r} not in ring")
    table = fingers if fingers is not None else finger_table_for(ring)
    names = table.names
    ids = table.ids
    size = len(ids)
    source_id = ring.position_of(source)
    results: List[Optional[LookupResult]] = [None] * len(keys)

    if size == 1:
        for slot, key in enumerate(keys):
            results[slot] = LookupResult(key=key, owner=source, path=[source])
        return results  # type: ignore[return-value]

    source_index = table.index_of_id(source_id)
    # Active frontier: (result slot, key, owner index, current index,
    # current id, path).  Completed lookups drop out each pass.
    active: List[Tuple[int, int, int, int, int, List[str]]] = []
    for slot, key in enumerate(keys):
        owner_index = ring.successor_index(key)
        if source_index == owner_index or (key - source_id) % KEY_SPACE == 0:
            results[slot] = LookupResult(
                key=key, owner=names[owner_index], path=[source]
            )
        else:
            active.append((slot, key, owner_index, source_index, source_id, [source]))

    next_hop = table.next_hop
    hops = 0
    while active:
        hops += 1
        if hops > max_hops:
            raise RuntimeError("routing failed to converge; ring state is inconsistent")
        still_active: List[Tuple[int, int, int, int, int, List[str]]] = []
        for slot, key, owner_index, index, current_id, path in active:
            remaining = (key - current_id) % KEY_SPACE
            nxt = next_hop(index, current_id, key, remaining)
            if nxt is None or nxt == index:
                nxt = (index + 1) % size
            path.append(names[nxt])
            if nxt == owner_index or (key - ids[nxt]) % KEY_SPACE == 0:
                results[slot] = LookupResult(key=key, owner=names[owner_index], path=path)
            else:
                still_active.append((slot, key, owner_index, nxt, ids[nxt], path))
        active = still_active
    return results  # type: ignore[return-value]


def route_cold(
    ring: Ring,
    source: str,
    key: int,
    *,
    max_hops: int = 4 * KEY_BITS,
) -> LookupResult:
    """Reference implementation: greedy routing with per-level ring bisects.

    This is the pre-finger-table hot path, kept for equivalence testing
    and as the cold baseline in ``benchmarks/bench_micro_route.py``.  No
    span support — instrumented callers use :func:`route`.
    """
    if source not in ring:
        raise ValueError(f"source node {source!r} not in ring")
    owner = ring.successor(key)
    path = [source]
    current = source
    current_id = ring.position_of(current)
    hops = 0
    while current != owner:
        remaining = distance(current_id, key)
        if remaining == 0:
            break
        next_name, next_id = _best_finger(ring, current_id, key, remaining)
        if next_name == current:
            # Degenerate single-node arc; the successor must be the owner.
            next_name = ring.successor_of(current)
            next_id = ring.position_of(next_name)
        path.append(next_name)
        current = next_name
        current_id = next_id
        hops += 1
        if hops > max_hops:
            raise RuntimeError("routing failed to converge; ring state is inconsistent")
    return LookupResult(key=key, owner=owner, path=path)


def _best_finger(ring: Ring, current_id: int, key: int, remaining: int) -> Tuple[str, int]:
    """Farthest finger of the node at *current_id* not overshooting *key*.

    Returns ``(name, id)`` so callers never re-bisect the position of the
    node they just resolved.
    """
    # The largest usable finger level is bounded by the remaining distance:
    # a finger at 2**i with 2**i > remaining would overshoot.
    level = remaining.bit_length() - 1
    while level >= 0:
        target = (current_id + (1 << level)) % (1 << KEY_BITS)
        candidate = ring.successor(target)
        candidate_id = ring.position_of(candidate)
        # Usable if the candidate lies in (current, key] — it makes forward
        # progress without passing the owner.
        if candidate_id != current_id and in_interval(candidate_id, current_id, key):
            return candidate, candidate_id
        level -= 1
    # No finger makes progress: the owner is our immediate successor.
    fallback = ring.successor_of(ring.name_at(current_id))
    return fallback, ring.position_of(fallback)


def expected_hops(n_nodes: int) -> float:
    """Analytic expectation of greedy-finger hop count, ~0.5 * log2(n).

    Used by tests as a sanity envelope and by coarse analytical models.
    """
    if n_nodes <= 1:
        return 0.0
    return 0.5 * math.log2(n_nodes)
