"""O(log n) lookup routing model (Chord-style greedy finger routing).

The paper's prototype routes lookups through Mercury, which maintains
``O(log n)`` long links and resolves a lookup in ``O(log n)`` hops.  For the
reproduction we model routing with the classic Chord finger rule computed
directly from the current ring: from position ``p``, the finger for level
``i`` points at ``successor(p + 2**i)``, and a lookup greedily takes the
largest finger that does not overshoot the target key.

Because load-balancing ID changes are *voluntary* leaves/rejoins, the paper
notes routing state can be repaired immediately (Section 8.1, footnote); we
therefore always route over the up-to-date ring rather than simulating
stale finger tables.

The functions here return both the hop path (for latency accounting — each
hop is one network RTT leg in the recursive lookup) and the message count
(for Figure 9's lookup-traffic accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.dht.keyspace import KEY_BITS, distance, in_interval
from repro.dht.ring import Ring


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a routed DHT lookup.

    ``path`` starts at the querying node and ends at the key's owner.
    ``messages`` counts protocol messages: one request per hop plus the
    final response routed back to the querier (recursive routing, as in
    Mercury).
    """

    key: int
    owner: str
    path: List[str]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def messages(self) -> int:
        # Each hop forwards the request once; the terminal node answers the
        # querier directly with one response message.
        return self.hops + 1


def route(
    ring: Ring,
    source: str,
    key: int,
    *,
    max_hops: int = 4 * KEY_BITS,
    tracer=None,
    parent=None,
    now: float = 0.0,
    leg_time: Optional[Callable[[str, str], float]] = None,
) -> LookupResult:
    """Route a lookup for *key* from node *source* over *ring*.

    Implements greedy finger routing: at each step the current node
    forwards to the finger (``successor(current + 2**i)`` for the largest
    ``i``) that lands inside the remaining arc ``(current, key)``, falling
    back to its immediate successor.  Terminates at the key's owner.

    With a span *tracer* and a live *parent* span, one ``dht.hop`` child
    span is emitted per hop leg, starting at *now* and advancing by
    ``leg_time(from, to)`` per leg (zero-duration hops when no *leg_time*
    is given).  A falsy tracer or parent costs one truthiness check.
    """
    if source not in ring:
        raise ValueError(f"source node {source!r} not in ring")
    owner = ring.successor(key)
    path = [source]
    current = source
    current_id = ring.position_of(current)
    hops = 0
    while current != owner:
        remaining = distance(current_id, key)
        if remaining == 0:
            break
        next_name = _best_finger(ring, current_id, key, remaining)
        if next_name == current:
            # Degenerate single-node arc; the successor must be the owner.
            next_name = ring.successor_of(current)
        path.append(next_name)
        current = next_name
        current_id = ring.position_of(current)
        hops += 1
        if hops > max_hops:
            raise RuntimeError("routing failed to converge; ring state is inconsistent")
    if tracer and parent:
        t = now
        for index in range(len(path) - 1):
            frm, to = path[index], path[index + 1]
            leg = leg_time(frm, to) if leg_time is not None else 0.0
            span = tracer.start_span("dht.hop", t, parent, frm=frm, to=to, hop=index)
            t += leg
            tracer.finish(span, t)
    return LookupResult(key=key, owner=owner, path=path)


def _best_finger(ring: Ring, current_id: int, key: int, remaining: int) -> str:
    """The farthest finger of the node at *current_id* not overshooting *key*."""
    # The largest usable finger level is bounded by the remaining distance:
    # a finger at 2**i with 2**i > remaining would overshoot.
    level = remaining.bit_length() - 1
    while level >= 0:
        target = (current_id + (1 << level)) % (1 << KEY_BITS)
        candidate = ring.successor(target)
        candidate_id = ring.position_of(candidate)
        # Usable if the candidate lies in (current, key] — it makes forward
        # progress without passing the owner.
        if candidate_id != current_id and in_interval(candidate_id, current_id, key):
            return candidate
        level -= 1
    # No finger makes progress: the owner is our immediate successor.
    return ring.successor_of(ring.name_at(current_id))


def expected_hops(n_nodes: int) -> float:
    """Analytic expectation of greedy-finger hop count, ~0.5 * log2(n).

    Used by tests as a sanity envelope and by coarse analytical models.
    """
    import math

    if n_nodes <= 1:
        return 0.0
    return 0.5 * math.log2(n_nodes)
