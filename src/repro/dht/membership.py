"""Live membership protocols: join, graceful leave, and crash.

Every experiment before this subsystem replayed against a membership-static
ring — failure traces flipped nodes "down" without the ring ever changing.
:class:`MembershipService` makes the ring *dynamic* by driving the three
protocols a production DHT actually runs (the join/leave/kill services of
Leslie's *Reliable Data Storage in Distributed Hash Tables*):

**join**
    The newcomer splits its successor's arc at the load median
    (:func:`repro.dht.ring.load_split_point`) and adopts the new range
    through the existing pointer path — the same deferred migration a
    load-balancing move uses — then the repair scheduler replicates the
    arc's blocks onto the groups the newcomer just entered.

**graceful leave**
    The departing node hands its primary arc to its successor via pointer
    adoption and streams its replica copies out before disconnecting;
    graceful departures never lose data.

**crash**
    An abrupt leave that destroys the node's physical copies.  Surviving
    replicas re-replicate under the bandwidth-capped
    :class:`repro.store.repair.RepairScheduler`; a block whose last copy
    dies before repair lands is recorded in the per-key loss ledger.

The service also replays :class:`repro.sim.failures.FailureTrace` outages
as crash/rejoin pairs and schedules sustained churn storms, so the same
traces that drove the static availability model now exercise real
membership change.  All decisions flow from a seeded RNG and the
simulator's clock — runs are bit-identical serial vs parallel.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring, load_split_point
from repro.obs.events import NODE_JOIN, NODE_LEAVE, EventTracer, register_kind
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.failures import ChurnStormConfig, FailureTrace, generate_churn_ops
from repro.store.migration import StorageCoordinator
from repro.store.repair import RepairScheduler

MEMBERSHIP_JOIN = register_kind("membership.join")
MEMBERSHIP_LEAVE = register_kind("membership.leave")
MEMBERSHIP_CRASH = register_kind("membership.crash")


class MembershipService:
    """Drives ring membership changes through the storage lifecycle.

    Parameters
    ----------
    min_nodes:
        Leaves and crashes that would shrink the ring below this floor are
        refused (counted in ``membership.refused``) — a key must never be
        owner-less, and a replica group needs survivors to repair from.
    """

    def __init__(
        self,
        ring: Ring,
        store: StorageCoordinator,
        sim: Simulator,
        repair: RepairScheduler,
        *,
        rng: Optional[random.Random] = None,
        min_nodes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.ring = ring
        self.store = store
        self.sim = sim
        self.repair = repair
        self.rng = rng if rng is not None else random.Random(0)
        self.min_nodes = (
            min_nodes if min_nodes is not None else max(2, store.replica_count)
        )
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self._c_joins = self.metrics.counter("membership.joins")
        self._c_leaves = self.metrics.counter("membership.leaves")
        self._c_crashes = self.metrics.counter("membership.crashes")
        self._c_refused = self.metrics.counter("membership.refused")
        self._join_seq = 0

    # ------------------------------------------------------------------
    # the three protocols

    def join(self, name: str, *, position: Optional[int] = None) -> Optional[int]:
        """Add *name* to the ring; returns its position (None if refused).

        Without an explicit *position* the newcomer probes a random ring
        point and splits the load of the node owning it: it takes the arc
        up to that node's load median, so a join relieves the most loaded
        half of an arc exactly like a balancing move does.
        """
        if name in self.ring or len(self.ring) == 0:
            self._c_refused.inc()
            return None
        if position is None:
            probe = self.rng.randrange(KEY_SPACE)
            owner = self.ring.successor(probe)
            lo, hi = self.ring.range_of(owner)
            split = load_split_point(self.store.primary_keys(owner), lo, hi)
            position = split if split is not None else probe
        node_id = self.ring.free_position_at(position)
        self.ring.join(name, node_id)
        new_lo, new_hi = self.ring.range_of(name)
        self.store.hand_off(new_lo, new_hi, name)
        self.repair.on_node_joined(name)
        self._c_joins.inc()
        if self._tracer is not None:
            self._tracer.emit(MEMBERSHIP_JOIN, self.sim.now, node=name, position=node_id)
            self._tracer.emit(NODE_JOIN, self.sim.now, node=name, position=node_id)
        return node_id

    def leave(self, name: str) -> bool:
        """Graceful departure of *name*; returns False if refused.

        The successor adopts the vacated arc via a pointer (bytes follow
        at stabilization), and the leaver's replica copies stream out
        through the repair scheduler's hand-off path before it disconnects.
        """
        if name not in self.ring or len(self.ring) <= self.min_nodes:
            self._c_refused.inc()
            return False
        lo, hi = self.ring.range_of(name)
        # Every key the leaver *replicated* gains a new tail group member;
        # capture that arc before the ring forgets the leaver.
        affected = self.ring.replica_range_of(name, self.store.replica_count)
        dropped = self.store.drop_pointer_records_of(name)
        self.ring.leave(name)
        adopter = self.ring.successor(hi)
        self.store.hand_off(lo, hi, adopter)
        # Ranges the leaver had adopted but not yet fetched re-adopt under
        # whoever owns them now (they may lie outside the current primary
        # arc if the leaver moved since adopting them).
        for record in dropped:
            self.store.hand_off(record.lo, record.hi, self.ring.successor(record.hi))
        self.repair.on_node_left(name)
        self.repair.reconcile_range(*affected)
        self._c_leaves.inc()
        if self._tracer is not None:
            self._tracer.emit(MEMBERSHIP_LEAVE, self.sim.now, node=name)
            self._tracer.emit(NODE_LEAVE, self.sim.now, node=name)
        return True

    def crash(self, name: str) -> bool:
        """Abrupt kill of *name*; its physical copies are destroyed.

        The new owner adopts the dead arc (pointers are tiny and survive
        on the successor), surviving replicas become the copies of record,
        and the repair scheduler re-replicates — or records a loss when a
        block's whole group died inside one repair window.
        """
        if name not in self.ring or len(self.ring) <= self.min_nodes:
            self._c_refused.inc()
            return False
        affected = self.ring.replica_range_of(name, self.store.replica_count)
        dropped = self.store.drop_pointer_records_of(name)
        self.ring.leave(name)
        # No pointer adoption for the dead primary arc: there is nothing to
        # fetch from a destroyed disk.  Surviving replicas become the copies
        # of record and the repair scheduler re-materializes the primary on
        # the new owner.  Ranges the crashed node had adopted but not yet
        # fetched still live on *other* nodes, so those pointers survive the
        # crash — they re-adopt under their current owners.
        for record in dropped:
            new_owner = self.ring.successor(record.hi)
            self.store.hand_off(record.lo, record.hi, new_owner)
        self.repair.on_node_crashed(name)
        self.repair.reconcile_range(*affected)
        self._c_crashes.inc()
        if self._tracer is not None:
            self._tracer.emit(MEMBERSHIP_CRASH, self.sim.now, node=name)
            self._tracer.emit(NODE_LEAVE, self.sim.now, node=name)
        return True

    # ------------------------------------------------------------------
    # trace and storm wiring

    def schedule_failure_trace(self, trace: FailureTrace) -> int:
        """Replay *trace* as membership change: down = crash, up = rejoin.

        A node that comes back after a crash rejoins *empty* (the crash
        destroyed its disk) at a load-derived position, so recovery cost is
        actually paid instead of assumed away.  Returns the number of
        scheduled transitions.
        """
        scheduled = 0
        for event in trace.events:
            if event.up:
                self.sim.schedule_at(
                    event.time, lambda name=event.node: self.join(name)
                )
            else:
                self.sim.schedule_at(
                    event.time, lambda name=event.node: self.crash(name)
                )
            scheduled += 1
        return scheduled

    def schedule_churn_storm(self, config: ChurnStormConfig) -> int:
        """Schedule a sustained join/leave/kill storm; returns op count.

        Join names are fresh (``churn0000``, …); leave and crash victims
        are drawn uniformly from the membership *at fire time* so the storm
        composes with failure traces and with its own joins.
        """
        ops = generate_churn_ops(config, self.rng)
        for op in ops:
            if op.op == "join":
                self.sim.schedule_at(op.time, self._storm_join)
            elif op.op == "leave":
                self.sim.schedule_at(op.time, lambda: self._storm_departure("leave"))
            else:
                self.sim.schedule_at(op.time, lambda: self._storm_departure("crash"))
        return len(ops)

    def _storm_join(self) -> None:
        name = f"churn{self._join_seq:04d}"
        self._join_seq += 1
        self.join(name)

    def _storm_departure(self, op: str) -> None:
        names = sorted(self.ring.names())
        if len(names) <= self.min_nodes:
            self._c_refused.inc()
            return
        victim = names[self.rng.randrange(len(names))]
        if op == "leave":
            self.leave(victim)
        else:
            self.crash(victim)
