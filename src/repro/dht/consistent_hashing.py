"""Consistent hashing: the traditional DHT's key and node-ID assignment.

In the baseline systems (the paper's *traditional* and *traditional-file*
DHTs) node IDs are uniform-random ring positions and block keys are secure
hashes of block names, so keys spread uniformly and consistent hashing
balances storage without any active mechanism.  D2 keeps the random node
IDs only at bootstrap; its keys come from
:mod:`repro.core.keys` instead.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.dht.keyspace import KEY_SPACE, hash_to_key, key_to_bytes


def hashed_key(name: str) -> int:
    """Uniform ring key for a named object (block or file) via SHA-512."""
    return hash_to_key(name.encode("utf-8"))


def salted_key(salt: str, key: int) -> int:
    """Independent uniform re-hash of an existing ring *key* under *salt*.

    The sanctioned way to derive secondary positions from a key (e.g.
    hybrid replica placement): each distinct salt yields an independent
    uniform position, so correlated failures of one ring region cost at
    most one replica.
    """
    return hash_to_key(salt.encode("utf-8") + key_to_bytes(key))


def hashed_block_key(file_name: str, block_number: int, version: int = 0) -> int:
    """Key for one block of a file in a traditional (CFS-like) DHT.

    The paper's traditional DHT gives every 8 KB block its own hashed key,
    scattering even a single file across the ring.
    """
    return hashed_key(f"{file_name}\x00{block_number}\x00{version}")


def random_node_id(rng: random.Random) -> int:
    """A uniform-random ring position for a joining node."""
    return rng.randrange(KEY_SPACE)


def random_node_ids(count: int, rng: random.Random) -> List[int]:
    """*count* distinct uniform-random ring positions."""
    ids = set()
    while len(ids) < count:
        ids.add(rng.randrange(KEY_SPACE))
    return sorted(ids)


def node_id_for_name(name: str) -> int:
    """Deterministic pseudo-random position derived from a node name.

    Useful for reproducible test rings; real deployments draw fresh random
    IDs (see :func:`random_node_id`).
    """
    return hash_to_key(f"node-id:{name}".encode("utf-8"))


def uniform_spread_ids(count: int) -> List[int]:
    """Perfectly even ring positions (idealized consistent hashing).

    The Figure-3 locality analysis assumes every node stores the same
    number of blocks; evenly spaced node IDs realize that idealization.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    step = KEY_SPACE // count
    return [i * step for i in range(count)]


def describe_balance(loads: Iterable[int]) -> dict:
    """Summary statistics of a load distribution (used in tests/benches)."""
    values = list(loads)
    if not values:
        return {"count": 0, "mean": 0.0, "max": 0, "min": 0, "nsd": 0.0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    nsd = (variance ** 0.5) / mean if mean > 0 else 0.0
    return {
        "count": len(values),
        "mean": mean,
        "max": max(values),
        "min": min(values),
        "nsd": nsd,
    }
