"""Deployment facade: a complete simulated DHT file system.

A :class:`Deployment` wires together everything one of the paper's
comparison systems needs — ring, storage coordinator, file-system layer,
key scheme, and (for D2 and Traditional+Merc) the active load balancer —
behind the small API the examples and experiment drivers use:

>>> d = build_deployment("d2", n_nodes=64, seed=1)
>>> _ = d.bootstrap_volume()
>>> _ = d.apply_fs_ops(d.fs.makedirs("/home/alice"))
>>> _ = d.apply_fs_ops(d.fs.create("/home/alice/notes.txt", size=40_000))
>>> fetches = d.read_fetches("/home/alice/notes.txt")
>>> len({d.ring.successor(key) for key, _ in fetches}) <= 3   # locality!
True

Systems
-------
``d2``
    Locality-preserving keys + Karger–Ruhl balancing + pointers.
``traditional``
    One hashed key per block, consistent hashing, no balancing.
``traditional-file``
    One hashed key per file, consistent hashing, no balancing.
``traditional+merc``
    Hashed block keys *plus* active balancing (Figure 16's reference line).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import D2Config
from repro.core.lookup_cache import LookupCache
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.load_balance import KargerRuhlBalancer
from repro.dht.ring import Ring
from repro.fs.blocks import (
    INLINE_DATA_THRESHOLD,
    BlockKind,
    blocks_covering,
    data_block_sizes_table,
    inode_size,
)
from repro.fs.fslayer import BlockOp, DhtFileSystem, apply_ops
from repro.fs.keyschemes import make_scheme
from repro.fs.namespace import NamespaceError
from repro.obs.events import NODE_JOIN, EventTracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer as SpanTracer
from repro.sim.engine import PeriodicTask, Simulator
from repro.store.migration import StorageCoordinator
from repro.workloads.trace import (
    CREATE,
    DELETE,
    MKDIR,
    READ,
    RENAME,
    Trace,
    TraceRecord,
    WRITE,
)

SYSTEMS = ("d2", "traditional", "traditional-file", "traditional+merc")


@dataclass
class ReplayOutcome:
    """What replaying one trace record needed and did.

    ``fetches``/``stores`` are ``(key, nbytes)`` pairs: the DHT reads a
    read record required, or the DHT writes a mutation implied (data and
    inode blocks; directory metadata is assumed client-cached for
    dependency purposes, matching the paper's task-availability model).
    ``files`` is the number of distinct files touched (Table 2).
    """

    record: TraceRecord
    fetches: List[Tuple[int, int]] = field(default_factory=list)
    stores: List[Tuple[int, int]] = field(default_factory=list)
    files: int = 0
    skipped: bool = False

    @property
    def keys(self) -> List[int]:
        return [key for key, _ in self.fetches] + [key for key, _ in self.stores]

    @property
    def blocks(self) -> int:
        return len(self.fetches) + len(self.stores)


class Deployment:
    """One simulated system instance (see module docstring)."""

    def __init__(self, system: str, config: D2Config, seed: int, n_nodes: int,
                 volume: str = "vol") -> None:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")
        self.system = system
        self.config = config.validate()
        self.rng = random.Random(seed)
        self.metrics = MetricsRegistry()
        self.tracer = EventTracer()
        # Span tracer: sampled per $REPRO_TRACE_SAMPLE (NullTracer at <= 0,
        # so instrumented hot paths pay only a truthiness check).
        self.spans = SpanTracer.from_env(events=self.tracer, seed=seed)
        self.sim = Simulator(registry=self.metrics)
        self.ring = Ring()
        self.node_names = [f"node{i:04d}" for i in range(n_nodes)]
        for name, node_id in zip(self.node_names, random_node_ids(n_nodes, self.rng)):
            self.ring.join(name, node_id)
            self.tracer.emit(NODE_JOIN, 0.0, node=name, position=node_id)
        self.store = StorageCoordinator(
            self.ring,
            self.sim,
            pointer_stabilization_time=config.pointer_stabilization_time,
            use_pointers=config.use_pointers,
            removal_delay=config.removal_delay,
            replica_count=config.replica_count,
            registry=self.metrics,
            tracer=self.tracer,
            spans=self.spans,
        )
        scheme_name = "traditional" if system == "traditional+merc" else system
        self.fs = DhtFileSystem(make_scheme(scheme_name, volume))
        self.balancer: Optional[KargerRuhlBalancer] = None
        if system in ("d2", "traditional+merc") and config.active_load_balancing:
            self.balancer = KargerRuhlBalancer(
                self.ring,
                self.store,
                threshold=config.balance_threshold,
                rng=random.Random(seed + 1),
                registry=self.metrics,
                tracer=self.tracer,
                spans=self.spans,
            )
        self._probe_task: Optional[PeriodicTask] = None
        self._lookup_caches: Dict[str, LookupCache] = {}
        # Interned per-file key makers, keyed by the file's stable storage
        # identity (slot path + overflow — exactly what every scheme's
        # prefix depends on, and what rename preserves).  Bounded like the
        # ring memos: on overflow the table is dropped and rebuilt.
        self._key_makers: Dict[
            Tuple[Tuple[int, ...], Tuple[str, ...]], Callable[[int, int], int]
        ] = {}
        self.seed = seed
        self.membership = None  # MembershipService, set by enable_dynamic_membership
        self.repair = None      # RepairScheduler, set alongside it
        self.accelerator = None  # LookupAccelerator, set by enable_acceleration
        self.health = None      # HealthMonitor, set by enable_health_monitoring

    def enable_dynamic_membership(self, *, min_nodes: Optional[int] = None):
        """Attach live join/leave/crash protocols with replica repair.

        Builds the :class:`repro.store.repair.RepairScheduler` (bandwidth
        capped at the config's migration rate) and the
        :class:`repro.dht.membership.MembershipService`, seeds the replica
        tracker from the already-loaded directory, and returns the service.
        Idempotent; call after :meth:`load_initial_image`/:meth:`stabilize`
        so the seeded copies reflect the settled ring.
        """
        if self.membership is not None:
            return self.membership
        from repro.dht.membership import MembershipService
        from repro.store.repair import RepairScheduler

        self.repair = RepairScheduler(
            self.store,
            self.sim,
            bandwidth_bps=self.config.migration_bandwidth_bps,
            registry=self.metrics,
            tracer=self.tracer,
            spans=self.spans,
        )
        self.repair.seed_from_directory()
        self.membership = MembershipService(
            self.ring,
            self.store,
            self.sim,
            self.repair,
            rng=random.Random(self.seed + 0x5EED),
            min_nodes=min_nodes,
            registry=self.metrics,
            tracer=self.tracer,
        )
        if self.health is not None:
            # Monitoring was enabled first: attach the repair push hooks.
            self.repair.attach_timeseries(self.health.bank)
        return self.membership

    # ------------------------------------------------------------------
    # setup

    def bootstrap_volume(self) -> List[BlockOp]:
        ops = self.fs.format()
        apply_ops(self.store, ops)
        return ops

    def load_initial_image(self, trace: Trace) -> None:
        """Insert a trace's initial directories and files into the DHT."""
        self.bootstrap_volume()
        for directory in trace.initial_dirs:
            if not self.fs.namespace.exists(directory):
                apply_ops(self.store, self.fs.makedirs(directory))
        for path, size in trace.initial_files:
            parent = path.rsplit("/", 1)[0] or "/"
            if parent != "/" and not self.fs.namespace.exists(parent):
                apply_ops(self.store, self.fs.makedirs(parent))
            apply_ops(self.store, self.fs.create(path, size=size))

    def stabilize(self, max_rounds: int = 300) -> int:
        """Run balancing to convergence and materialize all pointers.

        Mirrors the paper's initialization: "the load balancing process is
        simulated for 3 days so that node positions stabilize".  No-op for
        systems without a balancer.
        """
        if self.balancer is None:
            return 0
        rounds = self.balancer.balance_until_stable(max_rounds=max_rounds)
        self.store.flush_all_pointers()
        return rounds

    def start_periodic_balancing(self) -> None:
        """Schedule probe rounds every probe interval on the simulator."""
        if self.balancer is None or self._probe_task is not None:
            return
        jitter = lambda: self.rng.uniform(-0.05, 0.05) * self.config.probe_interval
        self._probe_task = self.sim.schedule_periodic(
            self.config.probe_interval,
            lambda: self.balancer.probe_round(self.sim.now),
            jitter=jitter,
        )

    def stop_periodic_balancing(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            self._probe_task = None

    def enable_health_monitoring(
        self,
        *,
        window: float = 900.0,
        rules=None,
        node_level: bool = True,
        retention: int = 32768,
    ):
        """Attach sim-time SLO monitoring (:class:`repro.obs.health.HealthMonitor`).

        Samples membership/repair/balancer/lookup state at every *window*
        seconds of sim-time, evaluates the SLO rules (``rules=None`` means
        :func:`repro.obs.health.default_rules`) on closed windows, and
        buffers series + alert rows for :meth:`HealthMonitor.drain` /
        JSONL streaming.  Enable *after* ``enable_dynamic_membership`` so
        the repair scheduler's push hooks attach.  Idempotent; returns
        the monitor (also at ``self.health``).
        """
        if self.health is not None:
            return self.health
        from repro.obs.health import HealthMonitor

        self.health = HealthMonitor(
            self,
            window=window,
            rules=rules,
            node_level=node_level,
            retention=retention,
        )
        self.health.start()
        return self.health

    def enable_acceleration(self, mode: str = "cache", **kwargs):
        """Attach a :class:`repro.core.accel.LookupAccelerator`.

        *mode* is one of :data:`repro.core.accel.ACCEL_MODES`; extra
        keyword arguments (static capacity, budget, learned-index sizing)
        pass through to the accelerator.  Idempotent for a given mode;
        asking for a different mode on a live accelerator is an error —
        build a fresh deployment per mode so rows never share tier state.
        """
        if self.accelerator is not None:
            if self.accelerator.mode != mode:
                raise ValueError(
                    f"acceleration already enabled in mode "
                    f"{self.accelerator.mode!r}; cannot switch to {mode!r}"
                )
            return self.accelerator
        from repro.core.accel import LookupAccelerator

        self.accelerator = LookupAccelerator(
            self.ring,
            mode=mode,
            ttl=kwargs.pop("ttl", self.config.lookup_cache_ttl),
            seed=kwargs.pop("seed", self.seed),
            registry=self.metrics,
            tracer=self.tracer,
            spans=self.spans,
            **kwargs,
        )
        return self.accelerator

    def lookup_cache_for(self, client: str) -> LookupCache:
        cache = self._lookup_caches.get(client)
        if cache is None:
            cache = LookupCache(
                ttl=self.config.lookup_cache_ttl,
                ring=self.ring,
                registry=self.metrics,
                tracer=self.tracer,
            )
            self._lookup_caches[client] = cache
        return cache

    # ------------------------------------------------------------------
    # FS plumbing

    def apply_fs_ops(self, ops: Sequence[BlockOp]) -> Dict[str, int]:
        return apply_ops(self.store, ops)

    #: Bound on the interned key-maker table (mirrors the ring memo cap).
    _KEY_MAKER_MAX = 1 << 17

    def _key_maker_for(self, node) -> Callable[[int, int], int]:
        """Interned ``(block_number, version) -> key`` function for *node*.

        The per-file prefix work (volume/slot/identity encoding) is done
        once per file *per deployment*, not once per read: the maker is
        cached by the file's storage identity, which every scheme's keys
        are a pure function of.  A recreated file reusing a slot gets the
        same identity and therefore the same (still correct) maker.
        """
        ident = (node.slot_path, node.overflow)
        maker = self._key_makers.get(ident)
        if maker is None:
            if len(self._key_makers) >= self._KEY_MAKER_MAX:
                self._key_makers.clear()
            maker = self.fs.scheme.file_key_maker(node)
            self._key_makers[ident] = maker
        return maker

    def _fetches_for(self, node, offset: int,
                     length: Optional[int]) -> List[Tuple[int, int]]:
        """(key, nbytes) pairs for one resolved file node (see read_fetches)."""
        if length is None or length <= 0:
            length = node.size
        key_for = self._key_maker_for(node)
        fetches: List[Tuple[int, int]] = [
            (key_for(0, node.version), inode_size(node.size))
        ]
        if node.size > INLINE_DATA_THRESHOLD and length > 0:
            sizes = data_block_sizes_table(node.size)
            block_versions = node.block_versions
            node_version = node.version
            for number in blocks_covering(offset, length, node.size):
                version = block_versions.get(number, node_version)
                fetches.append((key_for(number, version), sizes[number - 1]))
        return fetches

    def read_fetches(self, path: str, offset: int = 0,
                     length: Optional[int] = None) -> List[Tuple[int, int]]:
        """(key, nbytes) the DHT must serve for a read (inode + data).

        Under traditional-file all pairs share the file's single key but
        remain per-block, so transfer accounting still sees 8 KB units.
        """
        return self._fetches_for(self.fs.namespace.resolve_file(path), offset, length)

    def read_fetches_many(
        self, requests: Iterable[Tuple[str, int, Optional[int]]]
    ) -> List[List[Tuple[int, int]]]:
        """Batched :meth:`read_fetches` over a replay window.

        *requests* is an iterable of ``(path, offset, length)`` triples;
        the result list is aligned with it, each entry exactly what
        :meth:`read_fetches` would return for that triple.  Namespace
        resolution, key-maker interning, and block-size tables are shared
        across the batch, eliminating the per-op closure and list
        allocations of the one-at-a-time path — this is what the scale
        harness replays millions of reads through.
        """
        resolve = self.fs.namespace.resolve_file
        fetches_for = self._fetches_for
        return [
            fetches_for(resolve(path), offset, length)
            for path, offset, length in requests
        ]

    # ------------------------------------------------------------------
    # trace replay

    def replay_record(self, record: TraceRecord) -> ReplayOutcome:
        """Apply one trace record; returns the DHT work it implied.

        Mutations change FS and store state; reads only report fetches.
        Records referencing paths that do not exist (cross-user timing
        races in a synthetic trace) are skipped and flagged.
        """
        outcome = ReplayOutcome(record=record)
        try:
            if record.op == READ:
                outcome.fetches = self.read_fetches(
                    record.path, record.offset, record.length or None
                )
                outcome.files = 1
            elif record.op == WRITE:
                if not self.fs.namespace.exists(record.path):
                    ops = self.fs.create(record.path, size=record.offset + record.length)
                else:
                    ops = self.fs.write(record.path, record.offset, record.length)
                self.apply_fs_ops(ops)
                outcome.stores = _file_block_puts(ops)
                outcome.files = 1
            elif record.op == CREATE:
                ops = self.fs.create(record.path, size=record.size)
                self.apply_fs_ops(ops)
                outcome.stores = _file_block_puts(ops)
                outcome.files = 1
            elif record.op == DELETE:
                self.apply_fs_ops(self.fs.remove(record.path))
                outcome.files = 1
            elif record.op == MKDIR:
                if not self.fs.namespace.exists(record.path):
                    self.apply_fs_ops(self.fs.makedirs(record.path))
                outcome.files = 1
            elif record.op == RENAME:
                self.apply_fs_ops(self.fs.rename(record.path, record.dst_path))
                outcome.files = 1
        except NamespaceError:
            outcome.skipped = True
        return outcome

    def advance_to(self, time: float) -> None:
        """Run the simulator (removals, stabilizations, probes) up to *time*."""
        if time > self.sim.now:
            self.sim.run(until=time)

    # ------------------------------------------------------------------
    # reporting

    def load_snapshot(self) -> Dict[str, int]:
        """Per-node total stored blocks (primary + secondary)."""
        return self.store.total_loads()

    def describe(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "nodes": len(self.ring),
            "blocks": len(self.store.directory),
            "bytes": self.store.directory.total_bytes,
            "balancer_moves": self.store.moves_executed,
            "pointer_blocks": self.store.pointer_block_count(),
        }

    def observability_snapshot(self) -> Dict[str, object]:
        """Full metric + event snapshot of this deployment, JSON-ready.

        Counters accumulate over the deployment's whole life (including
        initial stabilization); gauges are refreshed here, at snapshot
        time.  The shape matches one report run entry minus ``labels``
        (see :mod:`repro.obs.report`).
        """
        self.metrics.gauge("ring.nodes").set(len(self.ring))
        self.metrics.gauge("store.blocks").set(len(self.store.directory))
        self.metrics.gauge("store.bytes").set(self.store.directory.total_bytes)
        self.metrics.gauge("pointer.blocks").set(self.store.pointer_block_count())
        self.metrics.gauge("pointer.pending_ranges").set(len(self.store.pointer_table))
        self.metrics.gauge("sim.now").set(self.sim.now)
        caches = list(self._lookup_caches.values())
        if self.accelerator is not None:
            caches.extend(self.accelerator.caches.values())
        if caches:
            self.metrics.gauge("lookup.caches").set(len(caches))
            self.metrics.gauge("lookup.occupancy").set(
                sum(len(cache) for cache in caches)
            )
            hits = self.metrics.counter("lookup.hits").value
            lookups = hits + self.metrics.counter("lookup.misses").value
            self.metrics.gauge("lookup.hit_ratio").set(
                hits / lookups if lookups else 0.0
            )
        snapshot: Dict[str, object] = self.metrics.snapshot(include_reservoirs=True)
        snapshot["events"] = self.tracer.counts()
        if self.health is not None:
            snapshot["health"] = self.health.summary()
        return snapshot


def _file_block_puts(ops: Sequence[BlockOp]) -> List[Tuple[int, int]]:
    """Put ops that are per-file dependencies: data blocks and the inode.

    Directory/root metadata is excluded from task dependencies (clients
    cache it), matching the availability model of Section 8.
    """
    return [
        (op.key, op.size)
        for op in ops
        if op.action == "put" and op.kind in (BlockKind.DATA, BlockKind.INODE)
    ]


def build_deployment(
    system: str,
    n_nodes: int,
    *,
    config: Optional[D2Config] = None,
    seed: int = 0,
    volume: str = "vol",
) -> Deployment:
    """Construct a deployment with paper-default configuration."""
    return Deployment(system, config or D2Config(), seed, n_nodes, volume=volume)
