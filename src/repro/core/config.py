"""Central configuration for a D2 deployment.

Defaults follow the paper's experimental setup (Sections 5, 6, 8.1, 9.1):

==============================  =======================================
block size                      8 KB
replicas (r)                    3 (availability sims) / 4 (latency sims)
balance threshold (t)           4
probe interval                  10 minutes
pointer stabilization time      1 hour
lookup-cache TTL                1.25 hours
write-back / buffer cache       30 seconds
block removal grace             30 seconds
migration bandwidth cap         750 kbps per node
access-link bandwidth           1500 kbps (or 384 kbps, constrained case)
client write rate               1500 kbps
concurrent client transfers     15
==============================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from repro.sim.engine import kbps

BLOCK_SIZE = 8192


@dataclass(frozen=True)
class D2Config:
    """All tunables of a simulated deployment, paper defaults baked in."""

    block_size: int = BLOCK_SIZE
    replica_count: int = 3
    balance_threshold: float = 4.0
    probe_interval: float = 600.0
    pointer_stabilization_time: float = 3600.0
    use_pointers: bool = True
    lookup_cache_ttl: float = 4500.0
    writeback_delay: float = 30.0
    removal_delay: float = 30.0
    migration_bandwidth_bps: float = kbps(750)
    access_bandwidth_bps: float = kbps(1500)
    client_write_bandwidth_bps: float = kbps(1500)
    max_concurrent_transfers: int = 15
    active_load_balancing: bool = True
    rng_seed: int = 0

    def with_overrides(self, **kwargs) -> "D2Config":
        """A copy with selected fields replaced (configs are immutable)."""
        return replace(self, **kwargs)

    def validate(self) -> "D2Config":
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.replica_count < 1:
            raise ValueError("replica_count must be at least 1")
        if self.balance_threshold < 2:
            raise ValueError("balance_threshold below 2 cannot converge")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.max_concurrent_transfers < 1:
            raise ValueError("max_concurrent_transfers must be at least 1")
        return self


# Named configurations used by the evaluation harnesses.
AVAILABILITY_CONFIG = D2Config(replica_count=3)
PERFORMANCE_CONFIG = D2Config(replica_count=4)
CONSTRAINED_CONFIG = PERFORMANCE_CONFIG.with_overrides(
    access_bandwidth_bps=kbps(384)
)
