"""Selectable lookup-acceleration tiers composed behind one call.

The paper's clients resolve a key through (at most) two layers: the
Section-5 range cache, then finger routing.  This module adds the learned
index (:mod:`repro.dht.learned`) as a third tier and makes the whole stack
a selectable **acceleration mode**, so experiment rows can hold everything
else fixed while sweeping:

``none``
    every lookup is finger-routed (the no-cache baseline),
``cache``
    the paper's static range cache in front of routing,
``cache+learned``
    static cache, learned-index fallback, routing last,
``cache+adaptive``
    self-sizing cache (:class:`repro.core.lookup_cache.AdaptiveSizer`
    per client, one shared :class:`repro.core.lookup_cache.CacheBudget`)
    in front of routing,
``all``
    adaptive cache + learned index + routing.

Message accounting stays honest across tiers: a correct cache hit costs 0
lookup messages (the client already knows the owner), a stale entry bills
1 wasted probe plus the fallback resolution, a learned hit bills its own
(short) path, a mispredict bills the full routed path plus 1 wasted probe
— exactly the Figure-9 bookkeeping the unaccelerated experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.lookup_cache import (
    DEFAULT_TTL,
    AdaptiveSizer,
    CacheBudget,
    LookupCache,
)
from repro.dht.learned import LearnedIndex
from repro.dht.ring import Ring
from repro.dht.routing import route
from repro.obs.events import EventTracer
from repro.obs.metrics import MetricsRegistry

ACCEL_MODES = ("none", "cache", "cache+learned", "cache+adaptive", "all")

#: Default fleet-wide entry budget for the adaptive modes.
DEFAULT_BUDGET_ENTRIES = 65536


@dataclass(frozen=True)
class AccelLookup:
    """Outcome of one accelerated lookup.

    ``tier`` names the layer that produced the owner: ``"cache"`` (correct
    cached range), ``"learned"`` (learned-index hit), or ``"route"``
    (finger routing — including learned mispredict fallbacks).  ``stale``
    flags lookups that first probed a stale cache entry; their wasted
    probe is already included in ``messages``.
    """

    key: int
    owner: str
    tier: str
    messages: int
    stale: bool = False


class LookupAccelerator:
    """Per-deployment composition of cache, learned index, and routing.

    One accelerator serves many clients: each client gets its own
    :class:`LookupCache` (static or adaptively sized, by mode) while the
    learned index — like the finger table it falls back to — is shared
    ring-wide state.  All configuration is fixed at construction so a
    mode's behavior is a pure function of the lookup stream.
    """

    def __init__(
        self,
        ring: Ring,
        *,
        mode: str = "cache",
        ttl: float = DEFAULT_TTL,
        static_capacity: Optional[int] = None,
        budget_entries: int = DEFAULT_BUDGET_ENTRIES,
        sizer_window: int = 128,
        min_capacity: int = 8,
        max_capacity: int = 4096,
        seed: int = 0,
        learned_min_observations: Optional[int] = None,
        learned_segments: Optional[int] = None,
        learned_max_probe: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        spans=None,
    ) -> None:
        if mode not in ACCEL_MODES:
            raise ValueError(f"unknown acceleration mode {mode!r}; "
                             f"expected one of {ACCEL_MODES}")
        self.ring = ring
        self.mode = mode
        self.ttl = ttl
        self.static_capacity = static_capacity
        self.use_cache = mode != "none"
        self.adaptive = mode in ("cache+adaptive", "all")
        self.seed = seed
        self._registry = registry
        self._tracer = tracer
        self._spans = spans
        self._sizer_window = sizer_window
        self._min_capacity = min_capacity
        self._max_capacity = max_capacity
        self.budget = CacheBudget(budget_entries) if self.adaptive else None
        self.learned: Optional[LearnedIndex] = None
        if mode in ("cache+learned", "all"):
            learned_kwargs = {}
            if learned_min_observations is not None:
                learned_kwargs["min_observations"] = learned_min_observations
            if learned_segments is not None:
                learned_kwargs["segments"] = learned_segments
            if learned_max_probe is not None:
                learned_kwargs["max_probe"] = learned_max_probe
            self.learned = LearnedIndex(
                ring, seed=seed, registry=registry, tracer=tracer,
                **learned_kwargs,
            )
        self.caches: Dict[str, LookupCache] = {}
        metrics = registry if registry is not None else MetricsRegistry()
        self._c_lookups = metrics.counter("accel.lookups")
        self._c_messages = metrics.counter("accel.messages")
        self._c_stale = metrics.counter("accel.stale_faults")

    def cache_for(self, client: str) -> LookupCache:
        cache = self.caches.get(client)
        if cache is None:
            sizer = None
            if self.adaptive:
                sizer = AdaptiveSizer(
                    window=self._sizer_window,
                    min_capacity=self._min_capacity,
                    max_capacity=self._max_capacity,
                    budget=self.budget,
                    registry=self._registry,
                )
            cache = LookupCache(
                ttl=self.ttl,
                capacity=self.static_capacity if not self.adaptive else None,
                ring=self.ring,
                sizer=sizer,
                registry=self._registry,
                tracer=self._tracer,
            )
            self.caches[client] = cache
        return cache

    def lookup(self, client: str, source: str, key: int,
               now: float = 0.0, phase: Optional[str] = None) -> AccelLookup:
        """Resolve *key* for *client* querying from node *source*.

        Tiers are tried in order (cache → learned → routing) and the
        resolved owner's range is written back into the client's cache, so
        every tier's output trains the tier above it.  *phase* (e.g. the
        accel matrix's ``pre``/``shift``/``post``) is attached to the
        ``accel.lookup`` root span so ``python -m repro.obs trace
        --phase`` can attribute critical-path latency per workload phase.
        """
        self._c_lookups.inc()
        spans = self._spans
        if spans:
            attrs = {"client": client, "mode": self.mode}
            if phase is not None:
                attrs["phase"] = phase
            span = spans.start_trace("accel.lookup", now, **attrs)
        else:
            span = None
        stale = False
        extra = 0
        cache = self.cache_for(client) if self.use_cache else None
        if cache is not None:
            cached = cache.probe(key, now, span)
            if cached is not None:
                owner = self.ring.successor(key)
                if cached == owner:
                    if span:
                        span.annotate(tier="cache", messages=0)
                        spans.finish(span, now)
                    return AccelLookup(key=key, owner=owner, tier="cache",
                                       messages=0)
                # Stale entry: the probed node no longer owns the key.  One
                # wasted message, then fall through to a real resolution.
                cache.invalidate(key, now, span)
                self._c_stale.inc()
                stale = True
                extra = 1
        if self.learned is not None:
            outcome = self.learned.lookup(source, key, now=now)
            result = outcome.result
            tier = "learned" if outcome.hit else "route"
            messages = outcome.messages + extra
            if span:
                span.annotate(predicted=outcome.predicted,
                              learned_hit=outcome.hit)
        else:
            result = route(self.ring, source, key,
                           tracer=spans, parent=span, now=now)
            tier = "route"
            messages = result.messages + extra
        owner = result.owner
        if cache is not None:
            lo, hi = self.ring.range_of(owner)
            cache.insert(lo, hi, owner, now)
        self._c_messages.add(messages)
        if span:
            span.annotate(tier=tier, messages=messages, stale=stale)
            spans.finish(span, now)
        return AccelLookup(key=key, owner=owner, tier=tier,
                           messages=messages, stale=stale)

    def occupancy(self) -> int:
        """Total live cache entries across all clients."""
        return sum(len(cache) for cache in self.caches.values())

    def stats(self) -> dict:
        """JSON-ready summary of the accelerator's current state."""
        capacities = [
            cache.capacity for cache in self.caches.values()
            if cache.capacity is not None
        ]
        ttls = [cache.ttl for cache in self.caches.values()]
        return {
            "mode": self.mode,
            "clients": len(self.caches),
            "occupancy": self.occupancy(),
            "lookups": self._c_lookups.value,
            "messages": self._c_messages.value,
            "stale_faults": self._c_stale.value,
            "capacity_total": sum(capacities) if capacities else None,
            "ttl_min": min(ttls) if ttls else None,
            "ttl_max": max(ttls) if ttls else None,
            "budget_granted": self.budget.granted if self.budget else None,
            "learned": self.learned.stats() if self.learned else None,
        }
