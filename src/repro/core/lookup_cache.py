"""Range-based DHT lookup cache (Section 5).

Each lookup result tells the client not just *which node* owns the key but
*which key range* that node owns.  The client caches ``(range → node)``
entries; any later key falling in a cached range skips the DHT lookup
entirely.  Locality makes this powerful in D2: a user's next key is very
likely inside a range they just learned.  Traditional DHT clients use the
same cache (the comparison is apples-to-apples) but their uniformly-random
keys rarely revisit a cached range until the cache holds ~all nodes.

Staleness is safe — a request served by a stale entry misses at the target
and falls back to a normal lookup (correctness is unaffected; only latency
suffers) — so entries simply expire after a TTL sized to the observed churn
rate (the paper uses 1.25 h, from PlanetLab's leave/join rate).

Beyond the paper's static design this module adds two orthogonal upgrades
(see docs/performance.md, "Acceleration modes"):

* **membership-epoch checks** — with a *ring* attached, an entry inserted
  under one membership generation is re-validated when probed under a
  newer one: if the node it points to has left the ring entirely (a crash
  under dynamic membership, PR 6), the entry is evicted instead of served.
  Position changes keep the name alive, so balancing-only churn still
  relies on the paper's TTL/stale-fault path and existing rows are
  unchanged.
* **bounded capacity + self-sizing** — ``capacity`` bounds the entry
  count (the nearest-to-expiry entry is evicted first, deterministically);
  an attached :class:`AdaptiveSizer` grows/shrinks capacity and TTL from
  the observed hit/staleness rates inside a global :class:`CacheBudget`.
  Both default off, so the static paper configuration stays the baseline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dht.keyspace import in_interval
from repro.obs.events import LOOKUP_HIT, LOOKUP_MISS, LOOKUP_STALE, EventTracer
from repro.obs.metrics import MetricsRegistry

DEFAULT_TTL = 4500.0  # 1.25 hours, per Section 5


@dataclass
class CacheEntry:
    lo: int
    hi: int
    node: str
    expires_at: float
    version: int = -1  # ring membership generation at insert (-1: unversioned)

    def covers(self, key: int) -> bool:
        return in_interval(key, self.lo, self.hi)


class LookupCacheStats:
    """Per-cache lookup statistics, backed by metric counters.

    Keeps the exact read/write API of the old stats dataclass (``hits``,
    ``misses``, ``stale_hits``, ``inserts``, ``evictions``, plus derived
    rates) while storing each field in a :class:`~repro.obs.metrics.Counter`
    of a private registry — so the same numbers flow into metric snapshots
    with no second bookkeeping path.

    ``evictions`` counts TTL-expiry drops (the original meaning);
    ``capacity_evictions`` counts drops forced by a full bounded cache and
    ``membership_evictions`` counts entries dropped because the node they
    named left the ring — three distinct signals the adaptive sizer and
    the runner reports keep separate.
    """

    FIELDS = ("hits", "misses", "stale_hits", "inserts", "evictions",
              "capacity_evictions", "membership_evictions")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "lookup", **initial: int) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(f"{prefix}.{name}") for name in self.FIELDS
        }
        for name, value in initial.items():
            if name not in self._counters:
                raise TypeError(f"unknown stats field {name!r}")
            self._counters[name].add(value)

    def _get(self, name: str) -> int:
        return self._counters[name].value

    def _set(self, name: str, value: int) -> None:
        self._counters[name].add(value - self._counters[name].value)

    hits = property(lambda s: s._get("hits"), lambda s, v: s._set("hits", v))
    misses = property(lambda s: s._get("misses"), lambda s, v: s._set("misses", v))
    stale_hits = property(
        lambda s: s._get("stale_hits"), lambda s, v: s._set("stale_hits", v)
    )
    inserts = property(lambda s: s._get("inserts"), lambda s, v: s._set("inserts", v))
    evictions = property(
        lambda s: s._get("evictions"), lambda s, v: s._set("evictions", v)
    )
    capacity_evictions = property(
        lambda s: s._get("capacity_evictions"),
        lambda s, v: s._set("capacity_evictions", v),
    )
    membership_evictions = property(
        lambda s: s._get("membership_evictions"),
        lambda s, v: s._set("membership_evictions", v),
    )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LookupCacheStats):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in self.FIELDS)

    def __repr__(self) -> str:
        fields = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"LookupCacheStats({fields})"


class LookupCache:
    """One client's cache of ``(key range → node)`` entries with TTL expiry.

    Entries are kept sorted by range end; ranges may overlap transiently
    after churn, in which case the freshest entry (latest ``expires_at``)
    wins.  With a shared *registry*/*tracer*, every probe also feeds the
    deployment-wide aggregate counters (``lookup.hits`` etc.) and the event
    stream — each cache's own :class:`LookupCacheStats` stays per-client.

    Optional knobs (all default to the paper's static design):

    * *ring* — entries remember the ring's membership version at insert;
      a probe under a newer version first checks the cached node is still
      a member and evicts the entry if it crashed/left (``membership_evictions``).
    * *capacity* — bounds the entry count; inserting into a full cache
      evicts the entry nearest to expiry (ties broken by range end, so
      eviction order is deterministic).
    * *sizer* — an :class:`AdaptiveSizer` notified of every probe outcome
      and capacity eviction; it retunes ``capacity``/``ttl`` in place.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_TTL,
        *,
        capacity: Optional[int] = None,
        ring=None,
        sizer: Optional["AdaptiveSizer"] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.ttl = ttl
        self.capacity = capacity
        self._ring = ring
        self._entries: List[CacheEntry] = []  # sorted by hi
        self._his: List[int] = []
        self.stats = LookupCacheStats()
        self._shared = LookupCacheStats(registry) if registry is not None else None
        self._tracer = tracer
        self._sizer = None
        if sizer is not None:
            self.attach_sizer(sizer)

    def __len__(self) -> int:
        return len(self._entries)

    def attach_sizer(self, sizer: "AdaptiveSizer") -> None:
        self._sizer = sizer
        sizer.attach(self)

    def _count(self, field: str, amount: int = 1) -> None:
        self.stats._counters[field].add(amount)
        if self._shared is not None:
            self._shared._counters[field].add(amount)

    def probe(self, key: int, now: float, span=None) -> Optional[str]:
        """Node caching says owns *key*, or None on a miss.

        An expired entry is dropped on sight, so it can never mask a live
        overlapping entry at the same range end.  With a *span* (a live
        :class:`repro.obs.spans.Span`), the outcome is annotated onto it —
        a null/absent span costs one truthiness check.
        """
        entry = self._find(key)
        if entry is not None and entry.expires_at > now:
            if self._ring is not None and entry.version != self._ring.version:
                # Membership moved since insert.  A node that changed
                # position keeps its name; only a node that left the ring
                # outright (crash/leave under dynamic membership) makes
                # the entry unservable.
                if entry.node not in self._ring:
                    self._remove_entry(entry)
                    self._count("membership_evictions")
                    entry = None
                else:
                    entry.version = self._ring.version
        if entry is not None and entry.expires_at > now:
            self._count("hits")
            if self._sizer is not None:
                self._sizer.record(self, "hit")
            if span:
                span.annotate(cache="hit", node=entry.node)
            if self._tracer is not None:
                self._tracer.emit(LOOKUP_HIT, now, key=key, node=entry.node)
            return entry.node
        if entry is not None:
            self._remove_entry(entry)
            self._count("evictions")
        self._count("misses")
        if self._sizer is not None:
            self._sizer.record(self, "miss")
        if span:
            span.annotate(cache="miss")
        if self._tracer is not None:
            self._tracer.emit(LOOKUP_MISS, now, key=key)
        return None

    def insert(self, lo: int, hi: int, node: str, now: float) -> None:
        """Cache a lookup result: *node* owns the arc ``(lo, hi]``.

        Any older entry with the same range end is replaced (the ring moved
        under us).  A bounded cache at capacity first evicts the entry
        closest to expiry.
        """
        self._drop_expired(now)
        version = self._ring.version if self._ring is not None else -1
        entry = CacheEntry(lo, hi, node, now + self.ttl, version)
        index = bisect.bisect_left(self._his, hi)
        if index < len(self._his) and self._his[index] == hi:
            self._entries[index] = entry
        else:
            if self.capacity is not None and len(self._entries) >= self.capacity:
                self._evict_for_capacity()
                index = bisect.bisect_left(self._his, hi)
            self._his.insert(index, hi)
            self._entries.insert(index, entry)
        self._count("inserts")

    def _evict_for_capacity(self) -> None:
        victim = min(self._entries, key=lambda e: (e.expires_at, e.hi))
        self._remove_entry(victim)
        self._count("capacity_evictions")
        if self._sizer is not None:
            self._sizer.record(self, "capacity_eviction")

    def invalidate(self, key: int, now: Optional[float] = None, span=None) -> None:
        """Drop the entry covering *key* (used after a stale-entry fault)."""
        entry = self._find(key)
        if entry is not None:
            self._remove_entry(entry)
            self._count("stale_hits")
            if self._sizer is not None:
                self._sizer.record(self, "stale")
            if span:
                span.annotate(cache="stale", stale_node=entry.node)
            if self._tracer is not None:
                self._tracer.emit(
                    LOOKUP_STALE,
                    now if now is not None else entry.expires_at - self.ttl,
                    key=key,
                    node=entry.node,
                )

    def _find(self, key: int) -> Optional[CacheEntry]:
        """Freshest entry covering *key*, expired or not.

        Overlaps are transient (a few entries after churn), but a covering
        entry can sit at any index once arcs overlap or wrap, so all
        candidates are scanned and the latest ``expires_at`` wins — live
        entries therefore always beat expired ones.
        """
        best: Optional[CacheEntry] = None
        for entry in self._entries:
            if entry.covers(key) and (best is None or entry.expires_at > best.expires_at):
                best = entry
        return best

    def _remove_entry(self, entry: CacheEntry) -> None:
        index = self._entries.index(entry)
        del self._entries[index]
        del self._his[index]

    def _drop_expired(self, now: float) -> None:
        live = [(h, e) for h, e in zip(self._his, self._entries) if e.expires_at > now]
        dropped = len(self._entries) - len(live)
        if dropped:
            self._count("evictions", dropped)
            self._his = [h for h, _ in live]
            self._entries = [e for _, e in live]

    def entries(self) -> Tuple[CacheEntry, ...]:
        return tuple(self._entries)


class CacheBudget:
    """Global entry budget shared by every adaptively-sized cache.

    Capacity growth is a *request*: the budget grants as much of the asked
    delta as remains, so the fleet of per-client caches can never exceed
    ``max_entries`` combined even when every client's controller wants to
    grow at once.  Shrinks release entries back for other caches to claim.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.granted = 0

    @property
    def remaining(self) -> int:
        return self.max_entries - self.granted

    def request(self, want: int) -> int:
        """Grant up to *want* additional entries; returns the grant (>= 0)."""
        grant = max(0, min(want, self.remaining))
        self.granted += grant
        return grant

    def release(self, count: int) -> None:
        self.granted -= min(count, self.granted)


class AdaptiveSizer:
    """Per-client controller retuning a cache's capacity and TTL online.

    Every ``window`` probes it looks at the window's hit rate, staleness
    rate, and capacity-eviction pressure and applies one bounded move:

    * thrash (low hit rate **and** capacity evictions) → double capacity,
      clipped to ``max_capacity`` and to whatever the shared
      :class:`CacheBudget` still grants;
    * staleness above ``stale_tolerance`` → halve the TTL (churn is
      outpacing the paper's static 1.25 h guess), floored at ``min_ttl``;
    * healthy hit rate with negligible staleness → stretch the TTL back
      (×1.5, capped) and return capacity the working set no longer uses.

    All arithmetic is deterministic — the controller is a pure function of
    the probe outcome sequence, so accelerated replays stay byte-stable
    across serial and ``--jobs N`` runs.
    """

    OUTCOMES = ("hit", "miss", "stale", "capacity_eviction")

    def __init__(
        self,
        *,
        window: int = 128,
        target_hit_rate: float = 0.85,
        stale_tolerance: float = 0.02,
        min_capacity: int = 8,
        max_capacity: int = 4096,
        min_ttl: float = 60.0,
        max_ttl: float = 4 * DEFAULT_TTL,
        budget: Optional[CacheBudget] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if min_capacity <= 0 or min_capacity > max_capacity:
            raise ValueError("need 0 < min_capacity <= max_capacity")
        self.window = window
        self.target_hit_rate = target_hit_rate
        self.stale_tolerance = stale_tolerance
        self.min_capacity = min_capacity
        self.max_capacity = max_capacity
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.budget = budget
        self._registry = registry
        self._window_counts = dict.fromkeys(self.OUTCOMES, 0)
        self.adaptations = {"grow": 0, "shrink": 0, "ttl_up": 0, "ttl_down": 0}

    def attach(self, cache: LookupCache) -> None:
        """Give *cache* its starting bounded capacity (budget permitting)."""
        if cache.capacity is None:
            cache.capacity = self.min_capacity
        if self.budget is not None:
            cache.capacity = max(1, self.budget.request(cache.capacity))

    def record(self, cache: LookupCache, outcome: str) -> None:
        self._window_counts[outcome] += 1
        probes = self._window_counts["hit"] + self._window_counts["miss"]
        if probes >= self.window:
            self._adapt(cache)
            self._window_counts = dict.fromkeys(self.OUTCOMES, 0)

    def _adapt(self, cache: LookupCache) -> None:
        counts = self._window_counts
        probes = counts["hit"] + counts["miss"]
        hit_rate = counts["hit"] / probes
        stale_rate = counts["stale"] / probes
        if stale_rate > self.stale_tolerance:
            new_ttl = max(self.min_ttl, cache.ttl / 2.0)
            if new_ttl != cache.ttl:
                cache.ttl = new_ttl
                self._note("ttl_down")
        elif hit_rate >= self.target_hit_rate and stale_rate == 0.0:
            new_ttl = min(self.max_ttl, cache.ttl * 1.5)
            if new_ttl != cache.ttl:
                cache.ttl = new_ttl
                self._note("ttl_up")
        capacity = cache.capacity if cache.capacity is not None else self.min_capacity
        if hit_rate < self.target_hit_rate and counts["capacity_eviction"] > 0:
            want = min(self.max_capacity, capacity * 2) - capacity
            if want > 0:
                grant = self.budget.request(want) if self.budget is not None else want
                if grant > 0:
                    cache.capacity = capacity + grant
                    self._note("grow")
        elif (
            hit_rate >= self.target_hit_rate
            and capacity > self.min_capacity
            and len(cache) <= capacity // 4
        ):
            new_capacity = max(self.min_capacity, max(len(cache) * 2, capacity // 2))
            if new_capacity < capacity:
                if self.budget is not None:
                    self.budget.release(capacity - new_capacity)
                cache.capacity = new_capacity
                self._note("shrink")

    def _note(self, move: str) -> None:
        self.adaptations[move] += 1
        if self._registry is not None:
            self._registry.counter(f"lookup.adapt.{move}").inc()
