"""Range-based DHT lookup cache (Section 5).

Each lookup result tells the client not just *which node* owns the key but
*which key range* that node owns.  The client caches ``(range → node)``
entries; any later key falling in a cached range skips the DHT lookup
entirely.  Locality makes this powerful in D2: a user's next key is very
likely inside a range they just learned.  Traditional DHT clients use the
same cache (the comparison is apples-to-apples) but their uniformly-random
keys rarely revisit a cached range until the cache holds ~all nodes.

Staleness is safe — a request served by a stale entry misses at the target
and falls back to a normal lookup (correctness is unaffected; only latency
suffers) — so entries simply expire after a TTL sized to the observed churn
rate (the paper uses 1.25 h, from PlanetLab's leave/join rate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dht.keyspace import in_interval

DEFAULT_TTL = 4500.0  # 1.25 hours, per Section 5


@dataclass
class CacheEntry:
    lo: int
    hi: int
    node: str
    expires_at: float

    def covers(self, key: int) -> bool:
        return in_interval(key, self.lo, self.hi)


@dataclass
class LookupCacheStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0  # hits later reported wrong by the caller
    inserts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LookupCache:
    """One client's cache of ``(key range → node)`` entries with TTL expiry.

    Entries are kept sorted by range end so a probe is a binary search.
    Ranges may overlap transiently after churn; the freshest entry wins.
    """

    def __init__(self, ttl: float = DEFAULT_TTL) -> None:
        self.ttl = ttl
        self._entries: List[CacheEntry] = []  # sorted by hi
        self._his: List[int] = []
        self.stats = LookupCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def probe(self, key: int, now: float) -> Optional[str]:
        """Node caching says owns *key*, or None on a miss.

        Expired entries are treated as misses (and dropped lazily).
        """
        entry = self._find(key)
        if entry is not None and entry.expires_at > now:
            self.stats.hits += 1
            return entry.node
        self.stats.misses += 1
        return None

    def insert(self, lo: int, hi: int, node: str, now: float) -> None:
        """Cache a lookup result: *node* owns the arc ``(lo, hi]``.

        Any older entry with the same range end is replaced (the ring moved
        under us).
        """
        self._drop_expired(now)
        entry = CacheEntry(lo, hi, node, now + self.ttl)
        index = bisect.bisect_left(self._his, hi)
        if index < len(self._his) and self._his[index] == hi:
            self._entries[index] = entry
        else:
            self._his.insert(index, hi)
            self._entries.insert(index, entry)
        self.stats.inserts += 1

    def invalidate(self, key: int) -> None:
        """Drop the entry covering *key* (used after a stale-entry fault)."""
        entry = self._find(key)
        if entry is not None:
            index = self._entries.index(entry)
            del self._entries[index]
            del self._his[index]
            self.stats.stale_hits += 1

    def _find(self, key: int) -> Optional[CacheEntry]:
        if not self._entries:
            return None
        # The candidate entry is the first whose range end is >= key, with
        # wrap-around: an arc (lo, hi] with lo > hi also covers small keys.
        index = bisect.bisect_left(self._his, key)
        for candidate in (index % len(self._entries), 0):
            entry = self._entries[candidate]
            if entry.covers(key):
                return entry
        return None

    def _drop_expired(self, now: float) -> None:
        live = [(h, e) for h, e in zip(self._his, self._entries) if e.expires_at > now]
        if len(live) != len(self._entries):
            self.stats.evictions += len(self._entries) - len(live)
            self._his = [h for h, _ in live]
            self._entries = [e for _, e in live]

    def entries(self) -> Tuple[CacheEntry, ...]:
        return tuple(self._entries)
