"""Range-based DHT lookup cache (Section 5).

Each lookup result tells the client not just *which node* owns the key but
*which key range* that node owns.  The client caches ``(range → node)``
entries; any later key falling in a cached range skips the DHT lookup
entirely.  Locality makes this powerful in D2: a user's next key is very
likely inside a range they just learned.  Traditional DHT clients use the
same cache (the comparison is apples-to-apples) but their uniformly-random
keys rarely revisit a cached range until the cache holds ~all nodes.

Staleness is safe — a request served by a stale entry misses at the target
and falls back to a normal lookup (correctness is unaffected; only latency
suffers) — so entries simply expire after a TTL sized to the observed churn
rate (the paper uses 1.25 h, from PlanetLab's leave/join rate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dht.keyspace import in_interval
from repro.obs.events import LOOKUP_HIT, LOOKUP_MISS, LOOKUP_STALE, EventTracer
from repro.obs.metrics import MetricsRegistry

DEFAULT_TTL = 4500.0  # 1.25 hours, per Section 5


@dataclass
class CacheEntry:
    lo: int
    hi: int
    node: str
    expires_at: float

    def covers(self, key: int) -> bool:
        return in_interval(key, self.lo, self.hi)


class LookupCacheStats:
    """Per-cache lookup statistics, backed by metric counters.

    Keeps the exact read/write API of the old stats dataclass (``hits``,
    ``misses``, ``stale_hits``, ``inserts``, ``evictions``, plus derived
    rates) while storing each field in a :class:`~repro.obs.metrics.Counter`
    of a private registry — so the same numbers flow into metric snapshots
    with no second bookkeeping path.
    """

    FIELDS = ("hits", "misses", "stale_hits", "inserts", "evictions")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "lookup", **initial: int) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(f"{prefix}.{name}") for name in self.FIELDS
        }
        for name, value in initial.items():
            if name not in self._counters:
                raise TypeError(f"unknown stats field {name!r}")
            self._counters[name].add(value)

    def _get(self, name: str) -> int:
        return self._counters[name].value

    def _set(self, name: str, value: int) -> None:
        self._counters[name].add(value - self._counters[name].value)

    hits = property(lambda s: s._get("hits"), lambda s, v: s._set("hits", v))
    misses = property(lambda s: s._get("misses"), lambda s, v: s._set("misses", v))
    stale_hits = property(
        lambda s: s._get("stale_hits"), lambda s, v: s._set("stale_hits", v)
    )
    inserts = property(lambda s: s._get("inserts"), lambda s, v: s._set("inserts", v))
    evictions = property(
        lambda s: s._get("evictions"), lambda s, v: s._set("evictions", v)
    )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LookupCacheStats):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in self.FIELDS)

    def __repr__(self) -> str:
        fields = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"LookupCacheStats({fields})"


class LookupCache:
    """One client's cache of ``(key range → node)`` entries with TTL expiry.

    Entries are kept sorted by range end; ranges may overlap transiently
    after churn, in which case the freshest entry (latest ``expires_at``)
    wins.  With a shared *registry*/*tracer*, every probe also feeds the
    deployment-wide aggregate counters (``lookup.hits`` etc.) and the event
    stream — each cache's own :class:`LookupCacheStats` stays per-client.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_TTL,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.ttl = ttl
        self._entries: List[CacheEntry] = []  # sorted by hi
        self._his: List[int] = []
        self.stats = LookupCacheStats()
        self._shared = LookupCacheStats(registry) if registry is not None else None
        self._tracer = tracer

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, field: str, amount: int = 1) -> None:
        self.stats._counters[field].add(amount)
        if self._shared is not None:
            self._shared._counters[field].add(amount)

    def probe(self, key: int, now: float, span=None) -> Optional[str]:
        """Node caching says owns *key*, or None on a miss.

        An expired entry is dropped on sight, so it can never mask a live
        overlapping entry at the same range end.  With a *span* (a live
        :class:`repro.obs.spans.Span`), the outcome is annotated onto it —
        a null/absent span costs one truthiness check.
        """
        entry = self._find(key)
        if entry is not None and entry.expires_at > now:
            self._count("hits")
            if span:
                span.annotate(cache="hit", node=entry.node)
            if self._tracer is not None:
                self._tracer.emit(LOOKUP_HIT, now, key=key, node=entry.node)
            return entry.node
        if entry is not None:
            self._remove_entry(entry)
            self._count("evictions")
        self._count("misses")
        if span:
            span.annotate(cache="miss")
        if self._tracer is not None:
            self._tracer.emit(LOOKUP_MISS, now, key=key)
        return None

    def insert(self, lo: int, hi: int, node: str, now: float) -> None:
        """Cache a lookup result: *node* owns the arc ``(lo, hi]``.

        Any older entry with the same range end is replaced (the ring moved
        under us).
        """
        self._drop_expired(now)
        entry = CacheEntry(lo, hi, node, now + self.ttl)
        index = bisect.bisect_left(self._his, hi)
        if index < len(self._his) and self._his[index] == hi:
            self._entries[index] = entry
        else:
            self._his.insert(index, hi)
            self._entries.insert(index, entry)
        self._count("inserts")

    def invalidate(self, key: int, now: Optional[float] = None, span=None) -> None:
        """Drop the entry covering *key* (used after a stale-entry fault)."""
        entry = self._find(key)
        if entry is not None:
            self._remove_entry(entry)
            self._count("stale_hits")
            if span:
                span.annotate(cache="stale", stale_node=entry.node)
            if self._tracer is not None:
                self._tracer.emit(
                    LOOKUP_STALE,
                    now if now is not None else entry.expires_at - self.ttl,
                    key=key,
                    node=entry.node,
                )

    def _find(self, key: int) -> Optional[CacheEntry]:
        """Freshest entry covering *key*, expired or not.

        Overlaps are transient (a few entries after churn), but a covering
        entry can sit at any index once arcs overlap or wrap, so all
        candidates are scanned and the latest ``expires_at`` wins — live
        entries therefore always beat expired ones.
        """
        best: Optional[CacheEntry] = None
        for entry in self._entries:
            if entry.covers(key) and (best is None or entry.expires_at > best.expires_at):
                best = entry
        return best

    def _remove_entry(self, entry: CacheEntry) -> None:
        index = self._entries.index(entry)
        del self._entries[index]
        del self._his[index]

    def _drop_expired(self, now: float) -> None:
        live = [(h, e) for h, e in zip(self._his, self._entries) if e.expires_at > now]
        dropped = len(self._entries) - len(live)
        if dropped:
            self._count("evictions", dropped)
            self._his = [h for h, _ in live]
            self._entries = [e for _, e in live]

    def entries(self) -> Tuple[CacheEntry, ...]:
        return tuple(self._entries)
