"""Hybrid replica placement (the paper's Section 11 future work).

D2's closing discussion names two weaknesses of pure locality placement:

* **security** — node IDs are not secure hashes, so an attacker can join
  at chosen positions and capture *every* replica of a victim's arc;
* **large files** — all blocks of a file share one replica group, so a
  bulk read can use at most ``r`` uploaders.

It then suggests that "a combination of locality preserving and consistent
hashing replica placement could safeguard data and enable high performance
operations on small and large files".  This module implements that hybrid:

* the **primary** replica stays at the locality-preserving key — lookups,
  range caching, and sequential reads keep all of D2's benefits;
* the remaining ``r - 1`` **secondary** replicas are placed at salted
  *hashes* of the key, scattering them uniformly — a captured or failed
  arc never holds more than one replica of anything, and a bulk reader can
  fan out across ``(r - 1) x blocks`` distinct uploaders.

The cost is that secondary replicas lose locality: replica maintenance
touches scattered nodes, and a client that fails over to a secondary pays
a fresh lookup.  The extension benchmark quantifies both sides.

A subtlety the paper's sketch misses: hashing a key to a ring *position*
(the obvious construction) degenerates under D2's own load balancer.
Karger-Ruhl balancing concentrates node IDs inside the occupied key arcs,
leaving most of the ring empty — so nearly every uniform hash position
falls in the empty region and resolves to the *one* node owning it.  The
default here therefore hashes to a node *rank* (an index into the ring
membership), which stays uniform over nodes no matter how their positions
are distributed; the naive position-based variant is kept as
``mode="position"`` so the degeneracy can be measured.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Set

from repro.dht.consistent_hashing import salted_key
from repro.dht.ring import Ring


def secondary_positions(key: int, replicas: int) -> List[int]:
    """Ring positions of the ``replicas - 1`` hashed secondary replicas.

    Each secondary gets an independent salted hash so that losing one
    region of the ring can cost at most one replica.
    """
    return [
        salted_key(f"hybrid-replica:{index}:", key)
        for index in range(1, replicas)
    ]


def hybrid_replica_nodes(
    ring: Ring, key: int, replicas: int, *, mode: str = "rank"
) -> List[str]:
    """The nodes holding *key* under hybrid placement, primary first.

    ``mode="rank"`` (default) maps each secondary hash to a node *rank*
    (uniform over the membership regardless of ID clustering);
    ``mode="position"`` maps it to a ring position (the naive construction,
    which degenerates once balancing has clustered node IDs — kept for the
    extension experiment).  Collisions walk to the next distinct node, so
    the set always has ``min(replicas, n)`` members.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if mode not in ("rank", "position"):
        raise ValueError(f"unknown hybrid mode {mode!r}")
    holders: List[str] = [ring.successor(key)]
    seen: Set[str] = set(holders)
    names = list(ring.names())
    target = min(replicas, len(ring))
    for digest in secondary_positions(key, replicas):
        if len(holders) == target:
            break
        if mode == "rank":
            candidate = names[digest % len(names)]
        else:
            candidate = ring.successor(digest)
        hops = 0
        while candidate in seen and hops < len(names):
            candidate = ring.successor_of(candidate)
            hops += 1
        if candidate not in seen:
            holders.append(candidate)
            seen.add(candidate)
    return holders


def hybrid_nodes_for_keys(
    ring: Ring, keys: Iterable[int], replicas: int, *, mode: str = "rank"
) -> Set[str]:
    """Distinct nodes holding any replica of *keys* (upload-fanout bound)."""
    nodes: Set[str] = set()
    for key in keys:
        nodes.update(hybrid_replica_nodes(ring, key, replicas, mode=mode))
    return nodes


def arc_capture_exposure(
    ring: Ring,
    keys: Sequence[int],
    replicas: int,
    *,
    placement: str,
    arc_nodes: int,
    trials: int = 200,
    rng: random.Random,
) -> float:
    """Fraction of keys an adversary capturing a random run of
    ``arc_nodes`` consecutive nodes would fully control.

    Under pure locality placement a captured run of >= r consecutive nodes
    owns every replica of the keys in its arc; under hybrid placement it
    can own the primary but almost never the scattered secondaries.  This
    is the Section 11 security concern made measurable.
    """
    names = list(ring.names())
    n = len(names)
    captured_fraction = 0.0
    for _ in range(trials):
        start = rng.randrange(n)
        captured = {names[(start + i) % n] for i in range(min(arc_nodes, n))}
        owned = 0
        for key in keys:
            holders = placement_holders(ring, key, replicas, placement)
            if all(h in captured for h in holders):
                owned += 1
        captured_fraction += owned / len(keys)
    return captured_fraction / trials


def placement_holders(ring: Ring, key: int, replicas: int, placement: str) -> List[str]:
    """Replica holders of *key* under a named placement policy."""
    if placement == "locality":
        return ring.successors(key, replicas)
    if placement == "hybrid":
        return hybrid_replica_nodes(ring, key, replicas, mode="rank")
    if placement == "hybrid-position":
        return hybrid_replica_nodes(ring, key, replicas, mode="position")
    raise ValueError(f"unknown placement {placement!r}")


def parallel_read_fanout(
    ring: Ring, keys: Sequence[int], replicas: int, *, placement: str
) -> int:
    """Distinct uploaders available to a reader fetching all *keys* at once.

    A reader may fetch each block from any replica; the achievable
    parallelism is bounded by the number of distinct holders across all
    blocks (the paper's Section 9.3 concern for very large files).
    """
    nodes: Set[str] = set()
    for key in keys:
        nodes.update(placement_holders(ring, key, replicas, placement))
    return len(nodes)


def key_available_hybrid(
    ring: Ring, key: int, replicas: int, alive: Set[str], *, mode: str = "rank"
) -> bool:
    """Availability test under hybrid placement."""
    return any(
        h in alive for h in hybrid_replica_nodes(ring, key, replicas, mode=mode)
    )
