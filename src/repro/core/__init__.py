"""D2 core: locality keys, lookup cache, configuration, system facades."""

from repro.core.config import D2Config
from repro.core.hybrid import hybrid_replica_nodes, placement_holders
from repro.core.keys import BlockKey, decode_key, encode_path_key, volume_id
from repro.core.lookup_cache import LookupCache
from repro.core.system import Deployment, build_deployment

__all__ = [
    "D2Config",
    "BlockKey",
    "decode_key",
    "encode_path_key",
    "volume_id",
    "LookupCache",
    "Deployment",
    "build_deployment",
    "hybrid_replica_nodes",
    "placement_holders",
]
