"""Locality-preserving key encoding (Figure 4 of the paper).

This is the heart of D2: instead of hashing a block's content or name, each
block's 64-byte DHT key encodes its *position in the file-system name
space*, so that a preorder traversal of the directory tree visits blocks in
key order.  Blocks of one file — and files in one directory — therefore
occupy contiguous arcs of the DHT ring and land on few nodes.

Layout (64 bytes total, big-endian, most-significant field first)::

    | vol id | slot_1 | ... | slot_12 | H(path remainder) | block # | version |
    |   20   |   2    | ... |    2    |         8         |    8    |    4    |

* **vol id** — 20-byte identifier of the file-system volume (hash of the
  volume name / publisher public key).  Distinct volumes occupy disjoint
  arcs of the ring.
* **slot_i** — a 2-byte value naming the *i*-th path component.  When a file
  or directory is created, its parent directory assigns it an unused 2-byte
  slot (see :class:`repro.fs.namespace.Directory`); applications without
  access to parent state (e.g. a web cache) may instead use
  :func:`hash_slot`, losing a little locality to collisions.  Slot 0 is
  reserved to mean "no component": the metadata block of ``/a`` has slots
  ``[s_a, 0, ..., 0]`` and so sorts immediately before everything inside
  ``/a``.
* **H(path remainder)** — for paths deeper than 12 levels, an 8-byte hash of
  the remaining components (locality is not preserved past level 12; the
  paper measures such paths at <1% of files).
* **block #** — 8 bytes: 0 for the file's inode / a directory's metadata
  block, 1..N for data blocks, so a file's inode directly precedes its data.
* **version** — 4 bytes distinguishing versions of an overwritten block so
  that slightly stale readers can still fetch old versions (as in CFS).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence, Tuple

from repro.dht.keyspace import KEY_BYTES, key_from_bytes, key_to_bytes

VOLUME_ID_BYTES = 20
SLOT_BYTES = 2
MAX_PATH_LEVELS = 12
REMAINDER_BYTES = 8
BLOCK_NUMBER_BYTES = 8
VERSION_BYTES = 4

SLOT_SPACE = 1 << (8 * SLOT_BYTES)          # 65536 names per directory
MAX_BLOCK_NUMBER = (1 << (8 * BLOCK_NUMBER_BYTES)) - 1
MAX_VERSION = (1 << (8 * VERSION_BYTES)) - 1

# Slot value 0 is reserved: it marks "path ends here", which makes a
# directory's own metadata block sort before all of its children.
FIRST_USABLE_SLOT = 1

_LAYOUT_BYTES = (
    VOLUME_ID_BYTES
    + MAX_PATH_LEVELS * SLOT_BYTES
    + REMAINDER_BYTES
    + BLOCK_NUMBER_BYTES
    + VERSION_BYTES
)
assert _LAYOUT_BYTES == KEY_BYTES, "Figure-4 layout must fill the 64-byte key exactly"


class KeyEncodingError(ValueError):
    """Raised when a field does not fit the Figure-4 layout."""


def volume_id(name: str) -> bytes:
    """Derive a 20-byte volume identifier from a volume name.

    The paper derives it from the publisher's public key; a SHA-1 of the
    volume name gives the same uniform 20-byte identifier.
    """
    return hashlib.sha1(name.encode("utf-8")).digest()


def hash_slot(component: str) -> int:
    """2-byte hash slot for a path component (web-cache style naming).

    Used when the writer cannot consult the parent directory's slot table
    (footnote 2 in the paper).  Collisions merely interleave two names'
    blocks; they never cause incorrect lookups because the full key still
    differs in deeper fields.  Never returns the reserved slot 0.
    """
    digest = hashlib.sha256(component.encode("utf-8")).digest()
    value = int.from_bytes(digest[:SLOT_BYTES], "big")
    return max(FIRST_USABLE_SLOT, value)


def _remainder_hash(components: Sequence[str]) -> int:
    if not components:
        return 0
    joined = "/".join(components).encode("utf-8")
    return int.from_bytes(hashlib.sha256(joined).digest()[:REMAINDER_BYTES], "big")


@dataclass(frozen=True)
class BlockKey:
    """Decoded view of a D2 block key.

    ``slots`` always has exactly :data:`MAX_PATH_LEVELS` entries (padded
    with 0).  ``encode()`` round-trips through the canonical 64-byte form.
    """

    volume: bytes
    slots: Tuple[int, ...]
    remainder: int
    block_number: int
    version: int

    def __post_init__(self) -> None:
        if len(self.volume) != VOLUME_ID_BYTES:
            raise KeyEncodingError(
                f"volume id must be {VOLUME_ID_BYTES} bytes, got {len(self.volume)}"
            )
        if len(self.slots) != MAX_PATH_LEVELS:
            raise KeyEncodingError(
                f"slots must have {MAX_PATH_LEVELS} entries, got {len(self.slots)}"
            )
        for slot in self.slots:
            if not 0 <= slot < SLOT_SPACE:
                raise KeyEncodingError(f"slot {slot} out of range")
        if not 0 <= self.remainder < (1 << (8 * REMAINDER_BYTES)):
            raise KeyEncodingError("remainder hash out of range")
        if not 0 <= self.block_number <= MAX_BLOCK_NUMBER:
            raise KeyEncodingError(f"block number {self.block_number} out of range")
        if not 0 <= self.version <= MAX_VERSION:
            raise KeyEncodingError(f"version {self.version} out of range")

    def encode(self) -> int:
        """Pack into the canonical 64-byte key (as a ring integer)."""
        parts = [self.volume]
        parts.extend(slot.to_bytes(SLOT_BYTES, "big") for slot in self.slots)
        parts.append(self.remainder.to_bytes(REMAINDER_BYTES, "big"))
        parts.append(self.block_number.to_bytes(BLOCK_NUMBER_BYTES, "big"))
        parts.append(self.version.to_bytes(VERSION_BYTES, "big"))
        return key_from_bytes(b"".join(parts))

    @property
    def depth(self) -> int:
        """Number of encoded path levels (trailing zero slots excluded)."""
        depth = MAX_PATH_LEVELS
        while depth > 0 and self.slots[depth - 1] == 0:
            depth -= 1
        return depth

    def child(self, slot: int, block_number: int = 0, version: int = 0) -> "BlockKey":
        """Key of a child named by *slot* one level below this key's path."""
        depth = self.depth
        if depth >= MAX_PATH_LEVELS:
            raise KeyEncodingError("cannot extend a fully deep slot path")
        if not FIRST_USABLE_SLOT <= slot < SLOT_SPACE:
            raise KeyEncodingError(f"child slot {slot} invalid")
        slots = list(self.slots)
        slots[depth] = slot
        return BlockKey(self.volume, tuple(slots), 0, block_number, version)


def decode_key(key: int) -> BlockKey:
    """Decode a 64-byte ring key into its Figure-4 fields."""
    raw = key_to_bytes(key)
    offset = 0
    volume = raw[offset : offset + VOLUME_ID_BYTES]
    offset += VOLUME_ID_BYTES
    slots = []
    for _ in range(MAX_PATH_LEVELS):
        slots.append(int.from_bytes(raw[offset : offset + SLOT_BYTES], "big"))
        offset += SLOT_BYTES
    remainder = int.from_bytes(raw[offset : offset + REMAINDER_BYTES], "big")
    offset += REMAINDER_BYTES
    block_number = int.from_bytes(raw[offset : offset + BLOCK_NUMBER_BYTES], "big")
    offset += BLOCK_NUMBER_BYTES
    version = int.from_bytes(raw[offset : offset + VERSION_BYTES], "big")
    return BlockKey(volume, tuple(slots), remainder, block_number, version)


def encode_path_key(
    volume: bytes,
    slot_path: Sequence[int],
    *,
    overflow_components: Iterable[str] = (),
    block_number: int = 0,
    version: int = 0,
) -> int:
    """Encode the key for a block of the file at *slot_path* in *volume*.

    *slot_path* is the sequence of 2-byte slots assigned by each ancestor
    directory, root first.  Paths deeper than :data:`MAX_PATH_LEVELS` must
    pass the extra (string) components via *overflow_components*; their hash
    fills the 8-byte remainder field, sacrificing locality past level 12.
    """
    slot_path = list(slot_path)
    overflow = list(overflow_components)
    if len(slot_path) > MAX_PATH_LEVELS:
        raise KeyEncodingError(
            f"slot path too deep ({len(slot_path)} > {MAX_PATH_LEVELS}); "
            "pass extra components via overflow_components"
        )
    for slot in slot_path:
        if not FIRST_USABLE_SLOT <= slot < SLOT_SPACE:
            raise KeyEncodingError(f"slot {slot} out of range for a path component")
    if overflow and len(slot_path) < MAX_PATH_LEVELS:
        raise KeyEncodingError("overflow components given but slot path is not full")
    padded = tuple(slot_path) + (0,) * (MAX_PATH_LEVELS - len(slot_path))
    return BlockKey(
        volume=volume,
        slots=padded,
        remainder=_remainder_hash(overflow),
        block_number=block_number,
        version=version,
    ).encode()


@lru_cache(maxsize=65536)
def version_hash(content_version: int) -> int:
    """4-byte version field for the *content_version*-th write of a block.

    The paper stores a hash here so stale readers can address the exact
    version they saw; we hash a monotonically increasing counter, which
    preserves that property while keeping tests deterministic.  Memoized:
    replay keys millions of blocks whose versions repeat heavily.
    """
    digest = hashlib.sha256(content_version.to_bytes(8, "big")).digest()
    return int.from_bytes(digest[:VERSION_BYTES], "big")


_BLOCK_SHIFT = 8 * VERSION_BYTES
_TRAILING_MASK = (1 << (8 * (BLOCK_NUMBER_BYTES + VERSION_BYTES))) - 1


def compose_block_key(prefix_key: int, block_number: int, version: int) -> int:
    """Fill the block-number/version fields of an already-encoded key.

    *prefix_key* must be an :func:`encode_path_key` result built with
    ``block_number=0, version=0`` (zeroed trailing fields); *version* is the
    already-hashed 4-byte field value.  The result is bit-identical to
    re-encoding the full 64-byte key, without redoing the volume/slot/
    remainder packing — key schemes hoist the prefix out of per-block loops.
    """
    if prefix_key & _TRAILING_MASK:
        raise KeyEncodingError("prefix key must have zero block/version fields")
    if not 0 <= block_number <= MAX_BLOCK_NUMBER:
        raise KeyEncodingError(f"block number {block_number} out of range")
    if not 0 <= version <= MAX_VERSION:
        raise KeyEncodingError(f"version {version} out of range")
    return prefix_key | (block_number << _BLOCK_SHIFT) | version
