"""repro: a reproduction of "Defragmenting DHT-based Distributed File
Systems" (Pang et al., ICDCS 2007) — the D2 system.

The package is organized by subsystem:

- :mod:`repro.core`  — D2's contribution: locality-preserving keys, lookup
  caches, configuration, and system facades;
- :mod:`repro.dht`   — ring, routing, consistent hashing, active balancing;
- :mod:`repro.store` — block directory, pointers, migration accounting;
- :mod:`repro.fs`    — the CFS-like file-system layer and write-back cache;
- :mod:`repro.sim`   — event engine, network/TCP models, failure traces;
- :mod:`repro.workloads` — synthetic Harvard/HP/Web trace generators;
- :mod:`repro.analysis`  — the paper's evaluation metrics;
- :mod:`repro.experiments` — one driver per paper table/figure.
"""

__version__ = "1.0.0"
