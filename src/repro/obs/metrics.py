"""Lightweight metrics primitives: counters, gauges, reservoir histograms.

Every instrumented component in the reproduction (lookup caches, the
balancer, the storage coordinator, the simulator itself) registers its
metrics in a :class:`MetricsRegistry`.  The registry is the one place a
run's counters live, so an experiment driver can snapshot the whole system
in a single call and diff the snapshot against an earlier run — the paper's
headline numbers (cache miss rate, lookup traffic, balancer moves, pointer
churn) are all derived from counters like these.

Design constraints:

* **zero dependencies** — plain dataclass-free Python, JSON-friendly
  snapshots;
* **cheap on the hot path** — incrementing a counter is one attribute add;
  histograms use bounded reservoir sampling (Vitter's algorithm R) so
  memory stays constant however long a simulation runs;
* **deterministic** — a histogram's reservoir RNG is seeded from the metric
  name, so identical runs produce identical snapshots.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Iterator, List, Optional, Union


class MetricsError(Exception):
    """Raised on invalid registry usage (name reuse across metric types)."""


class Counter:
    """A monotonically *intended* cumulative count (floats allowed)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def add(self, amount: Union[int, float]) -> None:
        """Adjust by a signed amount (used by stats views emulating fields)."""
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value, overwritten on every :meth:`set`."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Streaming distribution summary with a bounded reservoir.

    Exact count/total/min/max; quantiles are estimated from a uniform
    random sample of *reservoir_size* observations (algorithm R), which is
    plenty for the latency and hop-count distributions the experiments
    report.
    """

    __slots__ = ("name", "reservoir_size", "count", "total", "min", "max",
                 "_reservoir", "_rng")

    def __init__(self, name: str, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise MetricsError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        # Seed from the name so identical runs give identical snapshots.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir sample (0 <= p <= 100)."""
        if not 0.0 <= p <= 100.0:
            raise MetricsError(f"percentile must be in [0, 100], got {p}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics for one system instance (one deployment, one run).

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, so independent modules can share
    an aggregate metric without coordination.  Reusing a name across
    *types* is a bug and raises :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, *args) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 512) -> Histogram:
        return self._get_or_create(name, Histogram, reservoir_size)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot: ``{counters, gauges, histograms}``."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
