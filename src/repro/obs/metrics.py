"""Lightweight metrics primitives: counters, gauges, reservoir histograms.

Every instrumented component in the reproduction (lookup caches, the
balancer, the storage coordinator, the simulator itself) registers its
metrics in a :class:`MetricsRegistry`.  The registry is the one place a
run's counters live, so an experiment driver can snapshot the whole system
in a single call and diff the snapshot against an earlier run — the paper's
headline numbers (cache miss rate, lookup traffic, balancer moves, pointer
churn) are all derived from counters like these.

Design constraints:

* **zero dependencies** — plain dataclass-free Python, JSON-friendly
  snapshots;
* **cheap on the hot path** — incrementing a counter is one attribute add;
  histograms use bounded reservoir sampling (Vitter's algorithm R) so
  memory stays constant however long a simulation runs;
* **deterministic** — a histogram's reservoir RNG is seeded from the metric
  name, so identical runs produce identical snapshots.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Iterator, List, Mapping, Optional, Union


class MetricsError(Exception):
    """Raised on invalid registry usage (name reuse across metric types)."""


class Counter:
    """A monotonically *intended* cumulative count (floats allowed)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def add(self, amount: Union[int, float]) -> None:
        """Adjust by a signed amount (used by stats views emulating fields)."""
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value, overwritten on every :meth:`set`."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def set(self, value: Union[int, float]) -> None:
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Streaming distribution summary with a bounded reservoir.

    Exact count/total/min/max; quantiles are estimated from a uniform
    random sample of *reservoir_size* observations (algorithm R), which is
    plenty for the latency and hop-count distributions the experiments
    report.
    """

    __slots__ = ("name", "reservoir_size", "count", "total", "min", "max",
                 "_reservoir", "_rng")

    def __init__(self, name: str, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise MetricsError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        # Seed from the name so identical runs give identical snapshots.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir sample (0 <= p <= 100)."""
        if not 0.0 <= p <= 100.0:
            raise MetricsError(f"percentile must be in [0, 100], got {p}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (worker → parent aggregation).

        Count/total/min/max combine exactly.  The reservoirs concatenate;
        when the union overflows, each side contributes slots proportional
        to its observation count, down-sampled by an RNG seeded from the
        metric name and the merged count — so merging identical inputs
        always yields an identical reservoir.
        """
        if other.count == 0:
            return self
        self_count, other_count = self.count, other.count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        combined = self._reservoir + other._reservoir
        size = self.reservoir_size
        if len(combined) > size:
            rng = random.Random(
                zlib.crc32(f"{self.name}|merge|{self.count}".encode("utf-8"))
            )
            take_self = min(
                len(self._reservoir),
                max(0, round(size * self_count / (self_count + other_count))),
            )
            take_other = min(len(other._reservoir), size - take_self)
            take_self = min(len(self._reservoir), size - take_other)
            combined = rng.sample(self._reservoir, take_self) + rng.sample(
                other._reservoir, take_other
            )
        self._reservoir = combined
        return self

    @classmethod
    def from_snapshot(cls, name: str, snapshot: Mapping[str, object],
                      reservoir_size: int = 512) -> "Histogram":
        """Rebuild a mergeable histogram from a snapshot dict.

        Exact fields restore exactly; quantiles are only as good as the
        snapshot's ``reservoir`` (present when it was taken with
        ``include_reservoir=True``, empty otherwise).
        """
        histo = cls(name, reservoir_size)
        histo.count = int(snapshot.get("count", 0))
        histo.total = float(snapshot.get("total", 0.0))
        if histo.count:
            histo.min = float(snapshot.get("min", 0.0))
            histo.max = float(snapshot.get("max", 0.0))
        reservoir = snapshot.get("reservoir", [])
        if isinstance(reservoir, (list, tuple)):
            histo._reservoir = [float(v) for v in reservoir[:reservoir_size]]
        return histo

    def snapshot(self, include_reservoir: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if include_reservoir:
            payload["reservoir"] = list(self._reservoir)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics for one system instance (one deployment, one run).

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, so independent modules can share
    an aggregate metric without coordination.  Reusing a name across
    *types* is a bug and raises :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, *args) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 512) -> Histogram:
        return self._get_or_create(name, Histogram, reservoir_size)

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally built metric (e.g. a merged histogram)."""
        existing = self._metrics.get(metric.name)
        if existing is not None and existing is not metric:
            raise MetricsError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self, include_reservoirs: bool = False) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot: ``{counters, gauges, histograms}``.

        With ``include_reservoirs`` each histogram also carries its raw
        reservoir sample, which is what lets a parent process rebuild and
        :meth:`Histogram.merge` worker histograms instead of dropping them.
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot(include_reservoir=include_reservoirs)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
