"""Cluster-health analysis: ``python -m repro.obs health <file.jsonl>``.

Consumes a health-export JSONL file — the row stream produced by
:class:`repro.obs.health.HealthMonitor` (written by the runner as
``runner_<kind>.health<k>.jsonl``, or streamed live by the scale cells
as ``*_health.jsonl``) — and renders the run as an operator would read
it:

* **per-window health report** — windows covered, series observed,
  sample totals, alert counts;
* **alert timeline** — every fire/resolve transition in sim-time order,
  paired into episodes (rule, severity, fire/resolve windows, peak
  value, duration);
* **worst-node drill-down** — per-node series (``node.deficit``,
  ``node.load``) ranked by deficit-windows and peaks, so "which nodes
  hurt" has an answer, not just "something fired";
* **key-series table** (``--windows``) — one line per window for the
  headline cluster series.

``--require-cycle RULE`` exits 1 unless at least one episode of *RULE*
both fired **and** resolved — CI's ``health-smoke`` uses it to assert
the churn storm's replica-deficit alert completes its lifecycle.

Everything works from the JSONL alone and the output is a pure function
of the file contents, so serial and parallel runs of the same cells
render byte-identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Cluster-level series shown in the --windows table, in column order.
KEY_SERIES = (
    "repair.deficit",
    "repair.backlog",
    "balance.imbalance",
    "lookup.hit_ratio",
    "pointer.stall",
    "ring.nodes",
)

_SERIES_FIELDS = ("name", "kind", "labels", "window", "start", "end",
                  "count", "value")
_ALERT_FIELDS = ("event", "rule", "severity", "series", "labels", "time",
                 "window", "value")


def load_rows(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Decode and structurally validate one JSONL export."""
    rows: List[Dict[str, Any]] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                problems.append(f"line {lineno}: not JSON: {exc}")
                continue
            if not isinstance(payload, dict):
                problems.append(f"line {lineno}: not an object")
                continue
            kind = payload.get("type")
            if kind == "series":
                missing = [f for f in _SERIES_FIELDS if f not in payload]
            elif kind == "alert":
                missing = [f for f in _ALERT_FIELDS if f not in payload]
            else:
                problems.append(f"line {lineno}: unknown row type {kind!r}")
                continue
            if missing:
                problems.append(
                    f"line {lineno}: {kind} row missing {missing}"
                )
                continue
            rows.append(payload)
    return rows, problems


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Episode:
    """One fire(-to-resolve) alert lifecycle reconstructed from rows."""

    __slots__ = ("rule", "severity", "series", "labels", "fired_window",
                 "fired_at", "peak", "resolved_window", "resolved_at")

    def __init__(self, fire: Dict[str, Any]) -> None:
        self.rule = fire["rule"]
        self.severity = fire["severity"]
        self.series = fire["series"]
        self.labels = dict(fire["labels"])
        self.fired_window = fire["window"]
        self.fired_at = fire["time"]
        self.peak = fire["value"]
        self.resolved_window: Optional[int] = None
        self.resolved_at: Optional[float] = None

    @property
    def resolved(self) -> bool:
        return self.resolved_at is not None


def episodes_of(rows: Sequence[Dict[str, Any]]) -> List[Episode]:
    """Pair fire/resolve transitions (rows are already in sim-time order)."""
    episodes: List[Episode] = []
    active: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Episode] = {}
    for row in rows:
        if row.get("type") != "alert":
            continue
        key = (row["rule"], _label_key(row["labels"]))
        if row["event"] == "fire":
            episode = Episode(row)
            episodes.append(episode)
            active[key] = episode
        elif row["event"] == "resolve":
            episode = active.pop(key, None)
            if episode is not None:
                episode.resolved_window = row["window"]
                episode.resolved_at = row["time"]
    return episodes


def series_stats(
    rows: Sequence[Dict[str, Any]]
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, Any]]:
    """Peak/last/non-empty-window counts per (series, labels)."""
    stats: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, Any]] = {}
    for row in rows:
        if row.get("type") != "series":
            continue
        key = (row["name"], _label_key(row["labels"]))
        entry = stats.get(key)
        if entry is None:
            entry = stats[key] = {
                "name": row["name"], "labels": dict(row["labels"]),
                "windows": 0, "nonempty": 0, "peak": None, "last": None,
            }
        entry["windows"] += 1
        if row["count"]:
            entry["nonempty"] += 1
            value = row["value"]
            entry["last"] = value
            if value is not None and (
                entry["peak"] is None or value > entry["peak"]
            ):
                entry["peak"] = value
    return stats


def worst_nodes(
    rows: Sequence[Dict[str, Any]], top: int
) -> List[Dict[str, Any]]:
    """Rank nodes by deficit exposure, then load peak (the drill-down)."""
    per_node: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if row.get("type") != "series":
            continue
        node = row["labels"].get("node") if row["labels"] else None
        if node is None:
            continue
        entry = per_node.get(node)
        if entry is None:
            entry = per_node[node] = {
                "node": node, "deficit_windows": 0, "deficit_peak": 0.0,
                "load_peak": 0.0,
            }
        value = row["value"]
        if value is None or not row["count"]:
            continue
        if row["name"] == "node.deficit" and value > 0:
            entry["deficit_windows"] += 1
            entry["deficit_peak"] = max(entry["deficit_peak"], value)
        elif row["name"] == "node.load":
            entry["load_peak"] = max(entry["load_peak"], value)
    ranked = sorted(
        per_node.values(),
        key=lambda e: (
            -e["deficit_windows"], -e["deficit_peak"], -e["load_peak"],
            e["node"],
        ),
    )
    return ranked[:top]


# ----------------------------------------------------------------------
# rendering


def _fmt_value(value: Any) -> str:
    if value is None:
        return "-"
    number = float(value)
    if number == int(number) and abs(number) < 1e9:
        return str(int(number))
    return f"{number:.3f}"


def render_summary(rows: Sequence[Dict[str, Any]],
                   episodes: Sequence[Episode]) -> List[str]:
    series_rows = [r for r in rows if r["type"] == "series"]
    windows = {r["window"] for r in series_rows}
    names = {(r["name"], _label_key(r["labels"])) for r in series_rows}
    samples = sum(r["count"] for r in series_rows)
    width = None
    if series_rows:
        first = series_rows[0]
        width = first["end"] - first["start"]
    resolved = sum(1 for e in episodes if e.resolved)
    lines = []
    span = ""
    if windows:
        span = f" [{min(windows)}..{max(windows)}]"
        if width is not None:
            span += f" x {_fmt_value(width)}s"
    lines.append(
        f"windows: {len(windows)}{span}  series: {len(names)}  "
        f"samples: {samples}"
    )
    lines.append(
        f"alerts: {len(episodes)} fired, {resolved} resolved, "
        f"{len(episodes) - resolved} active"
    )
    return lines


def render_timeline(episodes: Sequence[Episode]) -> List[str]:
    lines = ["alert timeline:"]
    if not episodes:
        lines.append("  (no alerts fired)")
        return lines
    for episode in episodes:
        labels = ""
        if episode.labels:
            inner = ",".join(
                f"{k}={v}" for k, v in sorted(episode.labels.items())
            )
            labels = f"{{{inner}}}"
        head = (
            f"  [{episode.severity}] {episode.rule}{labels} "
            f"on {episode.series}: fired w={episode.fired_window} "
            f"t={_fmt_value(episode.fired_at)}s v={_fmt_value(episode.peak)}"
        )
        if episode.resolved:
            duration = episode.resolved_at - episode.fired_at
            head += (
                f" -> resolved w={episode.resolved_window} "
                f"t={_fmt_value(episode.resolved_at)}s "
                f"(after {_fmt_value(duration)}s)"
            )
        else:
            head += " -> STILL ACTIVE"
        lines.append(head)
    return lines


def render_worst_nodes(ranked: Sequence[Dict[str, Any]]) -> List[str]:
    lines = ["worst nodes (deficit windows, deficit peak, load peak):"]
    if not ranked:
        lines.append("  (no per-node series in this export)")
        return lines
    for rank, entry in enumerate(ranked, 1):
        lines.append(
            f"  {rank}. {entry['node']}  deficit_windows={entry['deficit_windows']}"
            f"  deficit_peak={_fmt_value(entry['deficit_peak'])}"
            f"  load_peak={_fmt_value(entry['load_peak'])}"
        )
    return lines


def render_windows(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """One line per window over the headline cluster series."""
    table: Dict[int, Dict[str, Any]] = {}
    for row in rows:
        if row["type"] != "series" or row["labels"]:
            continue
        if row["name"] not in KEY_SERIES:
            continue
        entry = table.setdefault(row["window"], {"start": row["start"]})
        if row["count"]:
            entry[row["name"]] = row["value"]
    lines = ["per-window key series:"]
    if not table:
        lines.append("  (no cluster-level series)")
        return lines
    present = [name for name in KEY_SERIES
               if any(name in entry for entry in table.values())]
    header = ["window", "start"] + [name.split(".", 1)[1] for name in present]
    widths = [max(len(h), 9) for h in header]
    lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for window in sorted(table):
        entry = table[window]
        cells = [str(window), _fmt_value(entry["start"])]
        cells += [_fmt_value(entry.get(name)) for name in present]
        lines.append(
            "  " + "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        )
    return lines


# ----------------------------------------------------------------------
# CLI


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs health",
        description="Analyze a health-export JSONL: per-window report, "
        "SLO alert timeline, worst-node drill-down.",
    )
    parser.add_argument("files", nargs="+", help="health JSONL files")
    parser.add_argument("--top", type=int, default=5,
                        help="worst nodes to list (default 5)")
    parser.add_argument("--windows", action="store_true",
                        help="include the per-window key-series table")
    parser.add_argument(
        "--require-cycle", default=None, metavar="RULE",
        help="exit 1 unless at least one RULE alert fired AND resolved "
        "(CI smoke guard)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    status = 0
    for index, path in enumerate(args.files):
        if index:
            print()
        try:
            rows, problems = load_rows(path)
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        if problems:
            status = 1
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            continue
        episodes = episodes_of(rows)
        print(f"== {path}")
        for line in render_summary(rows, episodes):
            print(line)
        print()
        for line in render_timeline(episodes):
            print(line)
        print()
        for line in render_worst_nodes(worst_nodes(rows, args.top)):
            print(line)
        if args.windows:
            print()
            for line in render_windows(rows):
                print(line)
        if args.require_cycle is not None:
            cycled = any(
                e.rule == args.require_cycle and e.resolved for e in episodes
            )
            if not cycled:
                print(
                    f"{path}: no fired-and-resolved "
                    f"{args.require_cycle!r} alert",
                    file=sys.stderr,
                )
                status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via repro.obs CLI
    sys.exit(main())
