"""Bounded-memory streaming export: JSONL writers for metrics and spans.

The report path (:mod:`repro.obs.report`) accumulates every run entry in
memory and writes one JSON document at the end — fine for a 30-cell figure
grid, fatal for a 10^5-user replay whose per-window snapshots would grow
peak RSS linearly with run length.  This module is the streaming
alternative: rows go to disk as they are produced, nothing accumulates,
and peak memory is one row.

* :class:`JsonlWriter` — append-only writer of JSON objects, one per
  line, deterministic (``sort_keys``) so identical runs produce
  byte-identical files.
* :func:`stream_spans` — drain a tracer's finished spans into a writer
  (the scale harness calls this once per replay window, so span export is
  flat in run length too; lines validate against
  :func:`repro.obs.spans.validate_span_dict`).
* :class:`NullJsonlWriter` — the disabled variant (no export directory
  configured): counts rows, writes nothing, so harness code never
  branches.
"""

from __future__ import annotations

import json
import os
from types import TracebackType
from typing import IO, Mapping, Optional, Type


class JsonlWriter:
    """Append JSON objects to *path*, one per line, without buffering rows.

    Rows are serialized immediately; the only state held is the open file
    handle, so writing a million rows costs the same peak memory as
    writing one.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.path = path
        self.rows = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def write(self, payload: Mapping[str, object]) -> None:
        """Serialize one row; raises if the writer is closed."""
        if self._handle is None:
            raise ValueError(f"writer for {self.path!r} is closed")
        self._handle.write(json.dumps(payload, sort_keys=True))
        self._handle.write("\n")
        self.rows += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class NullJsonlWriter:
    """Export disabled: counts rows, touches no filesystem state."""

    path = None

    def __init__(self) -> None:
        self.rows = 0

    def write(self, payload: Mapping[str, object]) -> None:
        self.rows += 1

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullJsonlWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


def stream_spans(tracer, writer) -> int:
    """Drain *tracer*'s finished spans into *writer*; returns rows written.

    A falsy tracer (``NullTracer``) or one without buffered finished spans
    is a cheap no-op, so call sites can invoke this unconditionally at
    every window boundary.
    """
    if not tracer:
        return 0
    payloads = tracer.drain()
    for payload in payloads:
        writer.write(payload)
    return len(payloads)
