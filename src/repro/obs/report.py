"""JSON metrics reports: build, validate, summarize, round-trip.

A *report* is the unit experiment drivers emit per invocation: one JSON
document holding one *run entry* per simulated deployment (labelled by the
grid cell that produced it — system, mode, node count, …), each entry a
full registry snapshot plus the tracer's per-kind event counts.  Reports
are what makes bench trajectories diffable across PRs: two runs of fig13
produce two files whose counters can be compared field by field.

The schema is deliberately flat and validated by hand (no jsonschema
dependency); see ``docs/observability.md`` for the normative description.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.events import EventTracer
from repro.obs.metrics import MetricsRegistry

SCHEMA = "repro.obs.report/v1"

_HISTO_FIELDS = ("count", "total", "mean", "min", "max", "p50", "p90", "p99")


def snapshot_run(
    labels: Mapping[str, object],
    registry: MetricsRegistry,
    tracer: Optional[EventTracer] = None,
) -> Dict[str, object]:
    """One report run entry from a live registry (and optional tracer)."""
    entry: Dict[str, object] = {"labels": dict(labels)}
    entry.update(registry.snapshot())
    entry["events"] = tracer.counts() if tracer is not None else {}
    return entry


def build_report(
    name: str,
    runs: Sequence[Mapping[str, object]],
    params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a schema-conformant report from prepared run entries."""
    report = {
        "schema": SCHEMA,
        "name": name,
        "params": _json_safe(dict(params or {})),
        "runs": [dict(run) for run in runs],
    }
    problems = validate_report(report)
    if problems:
        raise ValueError(f"refusing to build invalid report: {problems}")
    return report


def validate_report(payload: object) -> List[str]:
    """All schema violations in *payload* (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append("name must be a non-empty string")
    if not isinstance(payload.get("params"), dict):
        problems.append("params must be an object")
    runs = payload.get("runs")
    if not isinstance(runs, list):
        return problems + ["runs must be an array"]
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(run.get("labels"), dict):
            problems.append(f"{where}.labels must be an object")
        for section in ("counters", "gauges"):
            values = run.get(section)
            if not isinstance(values, dict):
                problems.append(f"{where}.{section} must be an object")
            elif not all(isinstance(v, (int, float)) for v in values.values()):
                problems.append(f"{where}.{section} values must be numbers")
        histograms = run.get("histograms")
        if not isinstance(histograms, dict):
            problems.append(f"{where}.histograms must be an object")
        else:
            for hname, histo in histograms.items():
                if not isinstance(histo, dict) or not all(
                    isinstance(histo.get(f), (int, float)) for f in _HISTO_FIELDS
                ):
                    problems.append(
                        f"{where}.histograms[{hname!r}] must have numeric "
                        f"fields {_HISTO_FIELDS}"
                    )
        events = run.get("events")
        if not isinstance(events, dict) or not all(
            isinstance(v, int) for v in events.values()
        ):
            problems.append(f"{where}.events must map event kinds to integer counts")
    return problems


def totals(report: Mapping[str, object]) -> Dict[str, Dict[str, float]]:
    """Counters and event counts summed across all run entries."""
    counter_totals: Dict[str, float] = {}
    event_totals: Dict[str, float] = {}
    for run in report.get("runs", []):
        for name, value in run.get("counters", {}).items():
            counter_totals[name] = counter_totals.get(name, 0) + value
        for kind, count in run.get("events", {}).items():
            event_totals[kind] = event_totals.get(kind, 0) + count
    return {
        "counters": dict(sorted(counter_totals.items())),
        "events": dict(sorted(event_totals.items())),
    }


def summarize(report: Mapping[str, object]) -> str:
    """Human-readable summary of one report (the CLI's output)."""
    lines: List[str] = []
    runs = report.get("runs", [])
    lines.append(f"report: {report.get('name')}  (schema {report.get('schema')})")
    params = report.get("params") or {}
    if params:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        lines.append(f"params: {rendered}")
    lines.append(f"runs: {len(runs)}")
    agg = totals(report)
    if agg["counters"]:
        lines.append("")
        lines.append("counters (summed across runs):")
        width = max(len(n) for n in agg["counters"])
        for name, value in agg["counters"].items():
            lines.append(f"  {name.ljust(width)}  {_fmt_num(value)}")
    if agg["events"]:
        lines.append("")
        lines.append("events (summed across runs):")
        width = max(len(n) for n in agg["events"])
        for kind, count in agg["events"].items():
            lines.append(f"  {kind.ljust(width)}  {_fmt_num(count)}")
    for run in runs:
        labels = run.get("labels", {})
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        lines.append("")
        lines.append(f"run [{rendered}]")
        for section in ("counters", "gauges"):
            values = run.get(section, {})
            if values:
                width = max(len(n) for n in values)
                lines.append(f"  {section}:")
                for name in sorted(values):
                    lines.append(f"    {name.ljust(width)}  {_fmt_num(values[name])}")
        histograms = run.get("histograms", {})
        if histograms:
            lines.append("  histograms:")
            for name in sorted(histograms):
                h = histograms[name]
                lines.append(
                    f"    {name}: n={_fmt_num(h['count'])} mean={_fmt_num(h['mean'])} "
                    f"p50={_fmt_num(h['p50'])} p90={_fmt_num(h['p90'])} "
                    f"p99={_fmt_num(h['p99'])} max={_fmt_num(h['max'])}"
                )
    return "\n".join(lines)


def write_report(report: Mapping[str, object], path: str) -> str:
    """Serialize *report* to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _fmt_num(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _json_safe(value: object) -> object:
    """Coerce params to JSON-encodable structures (tuples -> lists, etc.)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
