"""Observability spine: metrics registry, event tracer, JSON reports.

Usage sketch::

    from repro.obs import MetricsRegistry, EventTracer

    registry = MetricsRegistry()
    tracer = EventTracer()
    registry.counter("lookup.hits").inc()
    tracer.emit(events.LOOKUP_HIT, time=0.0, key=42, node="node0001")

    from repro.obs.report import build_report, snapshot_run, write_report
    report = build_report("demo", [snapshot_run({"system": "d2"}, registry, tracer)])
    write_report(report, "demo.json")

``python -m repro.obs summary demo.json`` pretty-prints a report;
``python -m repro.obs validate demo.json`` checks it against the schema.
See ``docs/observability.md`` for the metric-name and event catalogs.
"""

from repro.obs.events import (
    BALANCE_MOVE,
    BALANCE_PROBE,
    EVENT_KINDS,
    LOOKUP_HIT,
    LOOKUP_MISS,
    LOOKUP_STALE,
    MIGRATION,
    NODE_JOIN,
    NODE_LEAVE,
    POINTER_CREATE,
    POINTER_FLUSH,
    Event,
    EventError,
    EventTracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.report import (
    SCHEMA,
    build_report,
    load_report,
    snapshot_run,
    summarize,
    totals,
    validate_report,
    write_report,
)

__all__ = [
    "BALANCE_MOVE",
    "BALANCE_PROBE",
    "EVENT_KINDS",
    "LOOKUP_HIT",
    "LOOKUP_MISS",
    "LOOKUP_STALE",
    "MIGRATION",
    "NODE_JOIN",
    "NODE_LEAVE",
    "POINTER_CREATE",
    "POINTER_FLUSH",
    "SCHEMA",
    "Counter",
    "Event",
    "EventError",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "build_report",
    "load_report",
    "snapshot_run",
    "summarize",
    "totals",
    "validate_report",
    "write_report",
]
