"""Observability spine: metrics registry, event tracer, JSON reports.

Usage sketch::

    from repro.obs import MetricsRegistry, EventTracer

    registry = MetricsRegistry()
    tracer = EventTracer()
    registry.counter("lookup.hits").inc()
    tracer.emit(events.LOOKUP_HIT, time=0.0, key=42, node="node0001")

    from repro.obs.report import build_report, snapshot_run, write_report
    report = build_report("demo", [snapshot_run({"system": "d2"}, registry, tracer)])
    write_report(report, "demo.json")

``python -m repro.obs summary demo.json`` pretty-prints a report;
``python -m repro.obs validate demo.json`` checks it against the schema;
``python -m repro.obs trace spans.jsonl`` analyzes a span-trace export;
``python -m repro.obs health health.jsonl`` renders a health-export
alert timeline and per-node drill-down.  See ``docs/observability.md``
for the metric-name, event, span, and time-series catalogs.
"""

from repro.obs.events import (
    BALANCE_MOVE,
    BALANCE_PROBE,
    BASE_EVENT_KINDS,
    EVENT_KINDS,
    LOOKUP_HIT,
    LOOKUP_MISS,
    LOOKUP_STALE,
    MIGRATION,
    NODE_JOIN,
    NODE_LEAVE,
    POINTER_CREATE,
    POINTER_FLUSH,
    Event,
    EventError,
    EventTracer,
    register_kind,
)
from repro.obs.spans import (
    NULL_SPAN,
    SPAN_FINISH,
    SPAN_START,
    NullTracer,
    Span,
    SpanError,
    Tracer,
    validate_span_dict,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.report import (
    SCHEMA,
    build_report,
    load_report,
    snapshot_run,
    summarize,
    totals,
    validate_report,
    write_report,
)
from repro.obs.timeseries import (
    COUNTER,
    GAUGE,
    TimeSeries,
    TimeSeriesBank,
    TimeSeriesError,
)
from repro.obs.health import (
    Alert,
    HealthMonitor,
    SloEngine,
    SloRule,
    default_rules,
)

__all__ = [
    "Alert",
    "BALANCE_MOVE",
    "BALANCE_PROBE",
    "BASE_EVENT_KINDS",
    "COUNTER",
    "EVENT_KINDS",
    "GAUGE",
    "LOOKUP_HIT",
    "LOOKUP_MISS",
    "LOOKUP_STALE",
    "MIGRATION",
    "NODE_JOIN",
    "NODE_LEAVE",
    "NULL_SPAN",
    "POINTER_CREATE",
    "POINTER_FLUSH",
    "SCHEMA",
    "SPAN_FINISH",
    "SPAN_START",
    "Counter",
    "Event",
    "EventError",
    "EventTracer",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullTracer",
    "SloEngine",
    "SloRule",
    "Span",
    "SpanError",
    "TimeSeries",
    "TimeSeriesBank",
    "TimeSeriesError",
    "Tracer",
    "build_report",
    "default_rules",
    "load_report",
    "register_kind",
    "snapshot_run",
    "summarize",
    "totals",
    "validate_report",
    "validate_span_dict",
    "write_report",
]
