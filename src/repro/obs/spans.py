"""Causal span tracing: who spent the time inside one operation.

Counters (:mod:`repro.obs.metrics`) say *how much*, events
(:mod:`repro.obs.events`) say *what happened* — spans say *where the time
in one operation went*.  A :class:`Span` is an interval of simulated time
with a name, a parent, and JSON-safe attributes; the spans of one
operation form a tree rooted at the operation itself (Dapper's model, in
sim-time).  A traced block fetch looks like::

    fetch ─┬─ lookup ── dht.route ─┬─ dht.hop × k
           │                       └─ dht.response
           └─ transfer ─┬─ net.request
                        ├─ tcp.transfer
                        └─ queue.wait (only when contention dominates)

The :class:`Tracer` mirrors :class:`~repro.obs.events.EventTracer`'s
retention contract: a bounded ring buffer of span payloads plus *exact*
per-name counts for the whole run.  Head-based sampling is decided once
per trace (``$REPRO_TRACE_SAMPLE``, default 1.0): an unsampled root is the
falsy :data:`NULL_SPAN`, and every child of a null span is null, so a
dropped trace costs one RNG draw and the hot path otherwise pays only
truthiness checks.  :class:`NullTracer` is the fully-disabled variant —
itself falsy, so ``if tracer:`` guards skip instrumentation entirely.

Export is JSONL (one span object per line; see :data:`SPAN_FIELDS`),
consumed by ``python -m repro.obs trace`` for tree reconstruction,
critical-path extraction, and per-phase latency attribution.
"""

from __future__ import annotations

import json
import os
import random
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.events import EventTracer, register_kind

#: Environment knob for head-based sampling (fraction of traces kept).
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"
DEFAULT_SAMPLE = 1.0

#: Span-boundary event kinds, registered through the extension API rather
#: than baked into the core vocabulary (they mirror *root* spans only).
SPAN_START = register_kind("span.start")
SPAN_FINISH = register_kind("span.finish")

#: The JSONL schema: required keys of one exported span object.
SPAN_FIELDS = ("trace_id", "span_id", "parent_id", "name", "start", "end", "attrs")


class SpanError(Exception):
    """Raised on invalid span lifecycle usage (double finish, end < start)."""


class Span:
    """One named interval of simulated time within a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end",
                 "attrs", "_max_child_end")

    sampled = True

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, start: float, **attrs: object) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = float(start)
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs)
        # Latest finish time among direct children; lets a context-managed
        # parent auto-close to the moment its subtree went quiet.
        self._max_child_end: Optional[float] = None

    def annotate(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end: float) -> "Span":
        if self.end is not None:
            raise SpanError(f"span {self.name!r} already finished")
        if end < self.start:
            raise SpanError(
                f"span {self.name!r} cannot end at {end} before start {self.start}"
            )
        self.end = float(end)
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed sim-time; 0.0 while the span is still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.start}..{self.end}" if self.end is not None else f"{self.start}.."
        return f"Span({self.name!r}, {state})"


class _NullSpan:
    """Falsy stand-in for unsampled/disabled spans; absorbs all calls."""

    __slots__ = ()

    sampled = False
    trace_id = span_id = parent_id = None
    name = ""
    start = 0.0
    end: Optional[float] = None
    finished = False
    duration = 0.0

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    def finish(self, end: float) -> "_NullSpan":
        return self

    def to_dict(self) -> Dict[str, object]:  # pragma: no cover - never exported
        return {}

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The singleton null span.  ``bool(NULL_SPAN)`` is False, so call sites
#: guard expensive annotation work with a plain truthiness check.
NULL_SPAN = _NullSpan()

SpanLike = Union[Span, _NullSpan]


def sample_rate_from_env(default: float = DEFAULT_SAMPLE) -> float:
    """``$REPRO_TRACE_SAMPLE`` clamped to [0, 1]; *default* when unset/bad."""
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return min(1.0, max(0.0, value))


class Tracer:
    """Span factory with head sampling, bounded retention, exact counts.

    Parameters
    ----------
    capacity:
        Ring-buffer size for span payloads (counts stay exact past it).
    sample:
        Fraction of traces kept, decided at :meth:`start_trace`.  ``None``
        reads ``$REPRO_TRACE_SAMPLE`` (default 1.0).
    events:
        Optional :class:`EventTracer` that receives ``span.start`` /
        ``span.finish`` events for *root* spans — the span-boundary kinds
        registered through :func:`repro.obs.events.register_kind`.
    seed:
        Sampling-RNG seed; fixed so identical runs sample identically.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 4096,
        *,
        sample: Optional[float] = None,
        events: Optional[EventTracer] = None,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise SpanError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.sample = sample_rate_from_env() if sample is None else min(1.0, max(0.0, float(sample)))
        self._events = events
        self._rng = random.Random(seed)
        self._buffer: Deque[Span] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._ids = 0
        self.started = 0      # sampled spans ever created (incl. rotated out)
        self.finished = 0
        self.sampled_out = 0  # root spans dropped by head sampling

    @classmethod
    def from_env(cls, *, events: Optional[EventTracer] = None,
                 capacity: int = 4096, seed: int = 0) -> "Tracer":
        """Env-configured tracer; a :class:`NullTracer` when sampling is 0.

        The null tracer is falsy, so a 0-rate run pays only the ``if
        tracer:`` truthiness check on every hot-path instrumentation site.
        """
        rate = sample_rate_from_env()
        if rate <= 0.0:
            return NullTracer()
        return cls(capacity, sample=rate, events=events, seed=seed)

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Span]:
        return iter(tuple(self._buffer))

    # ------------------------------------------------------------------
    # span creation

    def _next_id(self, prefix: str) -> str:
        self._ids += 1
        return f"{prefix}{self._ids:08x}"

    def _record(self, span: Span) -> Span:
        self._buffer.append(span)
        self._counts[span.name] = self._counts.get(span.name, 0) + 1
        self.started += 1
        return span

    def start_trace(self, name: str, start: float, **attrs: object) -> SpanLike:
        """Open a root span, applying the head-sampling decision."""
        if self.sample <= 0.0:
            self.sampled_out += 1
            return NULL_SPAN
        if self.sample < 1.0 and self._rng.random() >= self.sample:
            self.sampled_out += 1
            return NULL_SPAN
        trace_id = self._next_id("t")
        span = Span(trace_id, self._next_id("s"), None, name, start, **attrs)
        if self._events is not None:
            self._events.emit(SPAN_START, start, trace_id=trace_id, name=name)
        return self._record(span)

    def start_span(self, name: str, start: float, parent: SpanLike,
                   **attrs: object) -> SpanLike:
        """Open a child span; children of null spans are null (free)."""
        if not parent:
            return NULL_SPAN
        span = Span(parent.trace_id, self._next_id("s"), parent.span_id,
                    name, start, **attrs)
        return self._record(span)

    def finish(self, span: SpanLike, end: float) -> SpanLike:
        """Close *span* at sim-time *end*, bubbling the finish to its parent."""
        if not span:
            return span
        span.finish(end)
        self.finished += 1
        self._bubble(span)
        if span.parent_id is None and self._events is not None:
            self._events.emit(SPAN_FINISH, end, trace_id=span.trace_id,
                              name=span.name, duration=span.duration)
        return span

    def _bubble(self, span: Span) -> None:
        # The buffer is small and append-ordered; the parent of a
        # just-finished span is almost always within the last few entries.
        for candidate in reversed(self._buffer):
            if candidate.span_id == span.parent_id:
                if candidate._max_child_end is None or span.end > candidate._max_child_end:
                    candidate._max_child_end = span.end
                return

    @contextmanager
    def span(self, name: str, start: float, parent: Optional[SpanLike] = None,
             **attrs: object) -> Iterator[SpanLike]:
        """Context-manager form: root when *parent* is None, else child.

        If the body did not call :meth:`finish`, the span auto-closes at
        the latest finish time observed among its direct children (or at
        its own start when it had none) — so a root wrapped around
        sequential child work ends exactly when its subtree went quiet.
        """
        if parent is None:
            span = self.start_trace(name, start, **attrs)
        else:
            span = self.start_span(name, start, parent, **attrs)
        try:
            yield span
        finally:
            if span and not span.finished:
                end = span._max_child_end if span._max_child_end is not None else span.start
                self.finish(span, max(end, span.start))

    # ------------------------------------------------------------------
    # introspection / export

    def counts(self) -> Dict[str, int]:
        """Exact per-name span totals for the whole run (JSON-ready)."""
        return dict(sorted(self._counts.items()))

    @property
    def dropped(self) -> int:
        """Sampled spans whose payloads rotated out of the buffer."""
        return self.started - len(self._buffer)

    def spans(self, name: Optional[str] = None) -> Tuple[Span, ...]:
        if name is None:
            return tuple(self._buffer)
        return tuple(s for s in self._buffer if s.name == name)

    def to_dicts(self, include_open: bool = True) -> List[Dict[str, object]]:
        """Buffered spans as JSON-safe dicts (open spans have ``end: null``)."""
        return [
            s.to_dict() for s in self._buffer if include_open or s.end is not None
        ]

    def drain(self) -> List[Dict[str, object]]:
        """Pop all *finished* buffered spans as JSON-safe dicts.

        Open spans stay buffered (their parents may still bubble child
        finish times); cumulative counts and totals are untouched, so
        repeated drains see every finished span exactly once.  This is the
        streaming-export primitive: a long run drains to a
        :class:`repro.obs.stream.JsonlWriter` every window, keeping the
        tracer's memory footprint independent of run length.
        """
        finished = [s for s in self._buffer if s.end is not None]
        if finished:
            open_spans = [s for s in self._buffer if s.end is None]
            self._buffer.clear()
            self._buffer.extend(open_spans)
        return [s.to_dict() for s in finished]

    def export_jsonl(self, path: str, include_open: bool = True) -> str:
        """Write buffered spans to *path*, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for payload in self.to_dicts(include_open=include_open):
                handle.write(json.dumps(payload, sort_keys=True))
                handle.write("\n")
        return path

    def clear(self) -> None:
        self._buffer.clear()
        self._counts.clear()
        self._ids = 0
        self.started = self.finished = self.sampled_out = 0


class NullTracer(Tracer):
    """Tracing fully off: falsy, every span is :data:`NULL_SPAN`.

    Hot loops guard instrumentation with ``if tracer:`` — with a null
    tracer that is a single truthiness check and nothing else, which is
    what keeps the disabled path within noise of untraced code (see
    ``benchmarks/bench_micro_spans.py``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, sample=0.0)

    def start_trace(self, name: str, start: float, **attrs: object) -> SpanLike:
        return NULL_SPAN

    def start_span(self, name: str, start: float, parent: SpanLike,
                   **attrs: object) -> SpanLike:
        return NULL_SPAN


def validate_span_dict(payload: object) -> List[str]:
    """All schema violations in one decoded JSONL span object."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"span must be a JSON object, got {type(payload).__name__}"]
    for field in SPAN_FIELDS:
        if field not in payload:
            problems.append(f"missing field {field!r}")
    for field in ("trace_id", "span_id", "name"):
        value = payload.get(field)
        if field in payload and (not isinstance(value, str) or not value):
            problems.append(f"{field} must be a non-empty string")
    parent = payload.get("parent_id")
    if "parent_id" in payload and parent is not None and not isinstance(parent, str):
        problems.append("parent_id must be a string or null")
    start = payload.get("start")
    if "start" in payload and not isinstance(start, (int, float)):
        problems.append("start must be a number")
    end = payload.get("end")
    if "end" in payload and end is not None and not isinstance(end, (int, float)):
        problems.append("end must be a number or null")
    if (
        isinstance(start, (int, float))
        and isinstance(end, (int, float))
        and end < start
    ):
        problems.append(f"end {end} precedes start {start}")
    if "attrs" in payload and not isinstance(payload.get("attrs"), dict):
        problems.append("attrs must be an object")
    return problems
