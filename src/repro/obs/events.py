"""Structured event tracing: a bounded ring buffer of typed events.

Counters say *how much*; the tracer says *what happened, when*.  Components
emit one of a typed vocabulary of event kinds (lookup cache hits/misses/
staleness faults, balancer probes and moves, pointer adoption/flush,
migrations, membership changes) with arbitrary JSON-safe payload fields.
The core vocabulary is fixed here; subsystems extend it through
:func:`register_kind` (e.g. the span-boundary kinds of
:mod:`repro.obs.spans`) — emitting anything unregistered stays an
:class:`EventError`.

The buffer is a ``deque(maxlen=capacity)``: the last *capacity* events are
kept for inspection while per-kind counts remain exact for the whole run,
so a long simulation can always answer "how many staleness faults?" even
after the individual events have rotated out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Mapping, Optional, Tuple

# Core event vocabulary (the schema is documented in docs/observability.md).
LOOKUP_HIT = "lookup.hit"
LOOKUP_MISS = "lookup.miss"
LOOKUP_STALE = "lookup.stale"
BALANCE_PROBE = "balance.probe"
BALANCE_MOVE = "balance.move"
POINTER_CREATE = "pointer.create"
POINTER_FLUSH = "pointer.flush"
MIGRATION = "store.migration"
NODE_JOIN = "node.join"
NODE_LEAVE = "node.leave"

#: The immutable core vocabulary, kept for reference and docs.
BASE_EVENT_KINDS = frozenset(
    (
        LOOKUP_HIT,
        LOOKUP_MISS,
        LOOKUP_STALE,
        BALANCE_PROBE,
        BALANCE_MOVE,
        POINTER_CREATE,
        POINTER_FLUSH,
        MIGRATION,
        NODE_JOIN,
        NODE_LEAVE,
    )
)

#: The live vocabulary: core kinds plus everything registered through
#: :func:`register_kind`.  Emission of anything outside this set is still
#: an :class:`EventError` — extension widens the vocabulary, it does not
#: remove the typo guard.
EVENT_KINDS = set(BASE_EVENT_KINDS)


class EventError(Exception):
    """Raised when an unknown event kind is emitted."""


def register_kind(kind: str) -> str:
    """Add *kind* to the event vocabulary; returns it for assignment.

    Idempotent, so independent modules can register the same kind without
    coordination.  Registration is process-wide (module-level), matching
    how the constant kinds are shared.
    """
    if not isinstance(kind, str) or not kind:
        raise EventError(f"event kind must be a non-empty string, got {kind!r}")
    EVENT_KINDS.add(kind)
    return kind


@dataclass(frozen=True)
class Event:
    """One traced occurrence at simulation time *time*."""

    time: float
    kind: str
    data: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"time": self.time, "kind": self.kind, "data": dict(self.data)}


class EventTracer:
    """Bounded buffer of :class:`Event` plus exact per-kind counts."""

    #: Extension hook: ``EventTracer.register_kind("my.kind")`` widens the
    #: shared vocabulary without editing this module.
    register_kind = staticmethod(register_kind)

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise EventError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._buffer: Deque[Event] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self.emitted = 0  # total events ever, including rotated-out ones

    def emit(self, kind: str, time: float, **data: object) -> Event:
        if kind not in EVENT_KINDS:
            raise EventError(f"unknown event kind {kind!r}")
        event = Event(time=time, kind=kind, data=data)
        self._buffer.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.emitted += 1
        return event

    def events(self, kind: Optional[str] = None) -> Tuple[Event, ...]:
        """The buffered (most recent) events, optionally filtered by kind."""
        if kind is None:
            return tuple(self._buffer)
        return tuple(e for e in self._buffer if e.kind == kind)

    def counts(self) -> Dict[str, int]:
        """Exact per-kind totals for the whole run (JSON-ready)."""
        return dict(sorted(self._counts.items()))

    @property
    def dropped(self) -> int:
        """Events that have rotated out of the buffer."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(tuple(self._buffer))

    def to_dicts(self) -> Tuple[Dict[str, object], ...]:
        return tuple(e.to_dict() for e in self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self._counts.clear()
        self.emitted = 0
