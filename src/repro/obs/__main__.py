"""CLI for observability files: ``python -m repro.obs COMMAND FILE...``

``summary`` validates then pretty-prints each metrics report; ``validate``
only checks the report schema; ``trace`` analyzes a span-trace JSONL
export (tree reconstruction, per-phase latency attribution, critical
paths, slowest traces, text flamegraph — see ``python -m repro.obs trace
--help``); ``health`` renders a health-export JSONL (per-window series,
SLO alert timeline, worst-node drill-down — see ``python -m repro.obs
health --help``).  Bare file arguments default to ``summary``.  Exit
code is 0 when every file is valid, 1 otherwise (2 on usage errors).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.report import load_report, summarize, validate_report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize/validate repro metrics reports (JSON) and "
        "analyze span traces (JSONL).",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="summary",
        help="'summary' (default), 'validate', 'trace', or 'health'; a "
        "file path implies summary",
    )
    parser.add_argument("files", nargs="*", help="report JSON / trace JSONL files")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "trace":
        # The trace analyzer owns its richer flag set (--top, --flame, …).
        from repro.obs.tracecli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "health":
        # The health analyzer owns its flag set (--top, --require-cycle, …).
        from repro.obs.healthcli import main as health_main

        return health_main(argv[1:])
    args = _parser().parse_args(argv)
    command, files = args.command, list(args.files)
    if command not in ("summary", "validate"):
        files.insert(0, command)  # bare file list: default to summary
        command = "summary"
    if not files:
        _parser().print_usage(sys.stderr)
        print("error: no report files given", file=sys.stderr)
        return 2

    status = 0
    for index, path in enumerate(files):
        try:
            payload = load_report(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable report: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = validate_report(payload)
        if problems:
            status = 1
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            continue
        if command == "validate":
            print(f"{path}: ok")
        else:
            if index:
                print()
            print(f"== {path}")
            print(summarize(payload))
    return status


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head etc.
        sys.exit(0)
