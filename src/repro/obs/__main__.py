"""CLI for metric reports: ``python -m repro.obs {summary,validate} FILE...``

``summary`` validates then pretty-prints each report; ``validate`` only
checks the schema.  Bare file arguments default to ``summary``.  Exit code
is 0 when every file is valid, 1 otherwise (2 on usage errors).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.report import load_report, summarize, validate_report


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or validate repro metrics reports (JSON).",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="summary",
        help="'summary' (default) or 'validate'; a file path implies summary",
    )
    parser.add_argument("files", nargs="*", help="report JSON files")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    command, files = args.command, list(args.files)
    if command not in ("summary", "validate"):
        files.insert(0, command)  # bare file list: default to summary
        command = "summary"
    if not files:
        _parser().print_usage(sys.stderr)
        print("error: no report files given", file=sys.stderr)
        return 2

    status = 0
    for index, path in enumerate(files):
        try:
            payload = load_report(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable report: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = validate_report(payload)
        if problems:
            status = 1
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            continue
        if command == "validate":
            print(f"{path}: ok")
        else:
            if index:
                print()
            print(f"== {path}")
            print(summarize(payload))
    return status


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head etc.
        sys.exit(0)
