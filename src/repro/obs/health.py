"""SLO rules, alerts, and the deployment health monitor.

Sits on top of :mod:`repro.obs.timeseries`: declarative :class:`SloRule`
objects are evaluated against closed time-series windows by an
:class:`SloEngine`, producing :class:`Alert` episodes with a
firing → active → resolved state machine.  :class:`HealthMonitor` binds
the two to a live :class:`repro.core.system.Deployment`: a periodic
sim-time task samples membership/repair/balancer/lookup-cache state at
every window boundary, closed windows flow through the rules, and the
resulting series + alert rows accumulate in a bounded export buffer that
:meth:`HealthMonitor.drain` pops for JSONL streaming (or that
:meth:`HealthMonitor.finish` returns wholesale at end of run).

Everything here runs on **sim-time** and is a pure function of the
deployment's deterministic evolution: alert timelines are byte-identical
between serial and ``--jobs N`` runs, which CI's ``health-smoke`` job
asserts.

Evaluation semantics, chosen for determinism and hysteresis:

* Rules are evaluated once per closed window, in row order.  Empty
  windows (``count == 0``) carry no information and freeze both the
  breach and the clear streak.
* A rule fires after ``for_windows`` consecutive breaching windows and
  the resulting alert resolves after ``resolve_windows`` consecutive
  clear windows — one flapping window never fires or resolves anything
  when the streak requirements are > 1.
* ``op`` is one of ``">="``, ``"<="`` (threshold comparisons) or
  ``"increasing"`` (breach when the value grew versus the previous
  non-empty window — the shape of "repair backlog keeps growing").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import EventTracer, register_kind
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import COUNTER, GAUGE, TimeSeriesBank

__all__ = [
    "Alert",
    "HealthMonitor",
    "SloEngine",
    "SloRule",
    "default_rules",
]

ALERT_FIRE = register_kind("health.alert_fire")
ALERT_RESOLVE = register_kind("health.alert_resolve")

SEVERITIES = ("info", "warning", "critical")
OPS = (">=", "<=", "increasing")


@dataclass(frozen=True)
class SloRule:
    """One declarative health objective over a named series.

    ``series`` names the time series the rule watches; the rule is
    evaluated independently per label set (so a per-node series yields
    per-node alerts).
    """

    name: str
    series: str
    op: str
    threshold: float = 0.0
    for_windows: int = 1
    resolve_windows: int = 1
    severity: str = "warning"
    description: str = ""

    def validate(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r}"
            )
        if self.for_windows < 1 or self.resolve_windows < 1:
            raise ValueError(
                f"rule {self.name!r}: for_windows/resolve_windows must be >= 1"
            )


@dataclass
class Alert:
    """One firing episode of a rule against one label set."""

    rule: str
    severity: str
    series: str
    labels: Dict[str, str]
    fired_at: float
    fired_window: int
    value: float
    peak: float
    breach_windows: int = 1
    resolved_at: Optional[float] = None
    resolved_window: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "series": self.series,
            "labels": dict(self.labels),
            "fired_at": self.fired_at,
            "fired_window": self.fired_window,
            "value": self.value,
            "peak": self.peak,
            "breach_windows": self.breach_windows,
            "resolved_at": self.resolved_at,
            "resolved_window": self.resolved_window,
        }


class _RuleState:
    __slots__ = ("breach_streak", "clear_streak", "alert", "last_value")

    def __init__(self) -> None:
        self.breach_streak = 0
        self.clear_streak = 0
        self.alert: Optional[Alert] = None
        self.last_value: Optional[float] = None


def default_rules(
    *,
    deficit_threshold: float = 1.0,
    imbalance_threshold: float = 4.0,
    hit_ratio_floor: float = 0.2,
    backlog_growth_windows: int = 4,
    stall_windows: int = 3,
) -> Tuple[SloRule, ...]:
    """The built-in cluster SLOs (see docs/observability.md)."""
    return (
        SloRule(
            name="replica-deficit",
            series="repair.deficit",
            op=">=",
            threshold=deficit_threshold,
            for_windows=1,
            resolve_windows=2,
            severity="critical",
            description="keys holding fewer live replicas than configured",
        ),
        SloRule(
            name="load-imbalance",
            series="balance.imbalance",
            op=">=",
            threshold=imbalance_threshold,
            for_windows=2,
            resolve_windows=2,
            severity="warning",
            description="max/mean per-node block load exceeds the bound",
        ),
        SloRule(
            name="hit-ratio-collapse",
            series="lookup.hit_ratio",
            op="<=",
            threshold=hit_ratio_floor,
            for_windows=2,
            resolve_windows=2,
            severity="warning",
            description="useful lookup-cache hit ratio collapsed",
        ),
        SloRule(
            name="pointer-stall",
            series="pointer.stall",
            op=">=",
            threshold=1.0,
            for_windows=stall_windows,
            resolve_windows=1,
            severity="critical",
            description="pointer table pending with no stabilization progress",
        ),
        SloRule(
            name="repair-backlog-growth",
            series="repair.backlog",
            op="increasing",
            for_windows=backlog_growth_windows,
            resolve_windows=1,
            severity="warning",
            description="repair backlog grew for several consecutive windows",
        ),
    )


class SloEngine:
    """Evaluates rules against closed windows; owns the alert ledger."""

    def __init__(
        self,
        rules: Optional[Sequence[SloRule]] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.rules: Tuple[SloRule, ...] = tuple(
            rules if rules is not None else default_rules()
        )
        for rule in self.rules:
            rule.validate()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self._by_series: Dict[str, List[SloRule]] = {}
        for rule in self.rules:
            self._by_series.setdefault(rule.series, []).append(rule)
        self.alerts: List[Alert] = []
        self._states: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _RuleState] = {}
        self._registry = registry
        self._tracer = tracer
        if registry is not None:
            self._c_fired = registry.counter("health.alerts_fired")
            self._c_resolved = registry.counter("health.alerts_resolved")
            self._g_active = registry.gauge("health.alerts_active")
        else:
            self._c_fired = self._c_resolved = self._g_active = None

    # -- evaluation -----------------------------------------------------

    def observe(self, rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Evaluate closed-window rows; returns alert transition rows."""
        transitions: List[Dict[str, Any]] = []
        for row in rows:
            if row.get("type") != "series":
                continue
            rules = self._by_series.get(row["name"])
            if not rules:
                continue
            for rule in rules:
                transitions.extend(self._evaluate(rule, row))
        if self._g_active is not None:
            self._g_active.set(sum(1 for alert in self.alerts if alert.active))
        return transitions

    def _evaluate(self, rule: SloRule, row: Dict[str, Any]) -> List[Dict[str, Any]]:
        if not row.get("count"):
            return []  # empty window: no information, streaks freeze
        value = row["value"]
        if value is None:
            return []
        labels = row.get("labels") or {}
        key = (rule.name, tuple(sorted(labels.items())))
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _RuleState()
        previous = state.last_value
        state.last_value = float(value)
        if rule.op == "increasing":
            breach = previous is not None and value > previous
        elif rule.op == ">=":
            breach = value >= rule.threshold
        else:
            breach = value <= rule.threshold
        events: List[Dict[str, Any]] = []
        if breach:
            state.breach_streak += 1
            state.clear_streak = 0
            if state.alert is not None:
                state.alert.breach_windows += 1
                if value > state.alert.peak:
                    state.alert.peak = float(value)
            elif state.breach_streak >= rule.for_windows:
                alert = Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    series=rule.series,
                    labels=dict(labels),
                    fired_at=row["end"],
                    fired_window=row["window"],
                    value=float(value),
                    peak=float(value),
                )
                state.alert = alert
                self.alerts.append(alert)
                events.append(self._transition("fire", alert, row))
        else:
            state.clear_streak += 1
            state.breach_streak = 0
            alert = state.alert
            if alert is not None and state.clear_streak >= rule.resolve_windows:
                alert.resolved_at = row["end"]
                alert.resolved_window = row["window"]
                state.alert = None
                events.append(self._transition("resolve", alert, row))
        return events

    def _transition(
        self, event: str, alert: Alert, row: Dict[str, Any]
    ) -> Dict[str, Any]:
        if event == "fire":
            if self._c_fired is not None:
                self._c_fired.inc()
            kind = ALERT_FIRE
        else:
            if self._c_resolved is not None:
                self._c_resolved.inc()
            kind = ALERT_RESOLVE
        if self._tracer is not None:
            self._tracer.emit(
                kind, row["end"], rule=alert.rule, series=alert.series,
                severity=alert.severity,
            )
        return {
            "type": "alert",
            "event": event,
            "rule": alert.rule,
            "severity": alert.severity,
            "series": alert.series,
            "labels": dict(alert.labels),
            "time": row["end"],
            "window": row["window"],
            "value": row["value"],
        }

    # -- reporting ------------------------------------------------------

    def active_alerts(self) -> List[Alert]:
        return [alert for alert in self.alerts if alert.active]

    def summary(self) -> Dict[str, Any]:
        fired = len(self.alerts)
        resolved = sum(1 for alert in self.alerts if not alert.active)
        by_rule: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for alert in self.alerts:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
            by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
        return {
            "rules": len(self.rules),
            "alerts_fired": fired,
            "alerts_resolved": resolved,
            "alerts_active": fired - resolved,
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        }


class HealthMonitor:
    """Continuous health sampling + SLO evaluation over one deployment.

    Created via :meth:`repro.core.system.Deployment.enable_health_monitoring`.
    A :class:`~repro.sim.engine.PeriodicTask` samples at every window
    boundary; subsystems with intra-window dynamics worth catching (the
    repair scheduler) additionally push samples into the same bank via
    ``attach_timeseries`` so ``max``-aggregated gauges see transient
    spikes the boundary scan would miss.
    """

    #: Minimum lookups in a window before a hit-ratio sample is emitted —
    #: a two-lookup window should not trip ``hit-ratio-collapse``.
    MIN_RATIO_LOOKUPS = 16

    def __init__(
        self,
        deployment: Any,
        *,
        window: float = 900.0,
        rules: Optional[Sequence[SloRule]] = None,
        node_level: bool = True,
        retention: int = 32768,
        bank_retention: int = 4096,
    ) -> None:
        self.deployment = deployment
        self.window = float(window)
        self.node_level = bool(node_level)
        self.bank = TimeSeriesBank(
            width=self.window,
            epoch=deployment.sim.now,
            retention=bank_retention,
        )
        self.engine = SloEngine(
            rules, registry=deployment.metrics, tracer=deployment.tracer
        )
        self.retention = int(retention)
        self.dropped_rows = 0
        self._export: List[Dict[str, Any]] = []
        self._task: Optional[Any] = None
        self._finished = False
        self._prev_stabilized: Optional[float] = None
        self._prev_hits: Optional[float] = None
        self._prev_misses: Optional[float] = None
        # Pre-created handles for the always-on series.
        self._s_nodes = self.bank.series("ring.nodes")
        self._s_events = self.bank.series("sim.events", kind=COUNTER)
        if deployment.repair is not None:
            deployment.repair.attach_timeseries(self.bank)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Take the baseline sample and begin per-window sampling."""
        if self._task is not None:
            return
        self.sample()
        self._task = self.deployment.sim.schedule_periodic(
            self.window, self._tick, first_delay=self.window
        )

    def _tick(self) -> None:
        self.sample()

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def finish(self) -> List[Dict[str, Any]]:
        """Final sample, flush partial windows, return remaining rows."""
        if not self._finished:
            self._finished = True
            self.sample()
            self.bank.flush()
            self._ingest(self.bank.drain())
            self.stop()
        return self.drain()

    # -- sampling -------------------------------------------------------

    def sample(self) -> None:
        """One sampling round at the current sim-time.

        Point samples land in the window the current boundary closes
        (windows are ``(start, end]``), then the bank closes completed
        windows and the engine evaluates them.
        """
        deployment = self.deployment
        now = deployment.sim.now
        self._s_nodes.sample(now, float(len(deployment.ring)))
        self._s_events.sample(
            now, float(deployment.metrics.counter("sim.events_fired").value)
        )
        if deployment.repair is not None:
            self._sample_repair(now)
        self._sample_pointers(now)
        if deployment.membership is not None:
            self._sample_membership(now)
        self._sample_lookups(now)
        if self.node_level:
            self._sample_loads(now)
        self.bank.advance(now)
        self._ingest(self.bank.drain())

    def _sample_repair(self, now: float) -> None:
        deployment = self.deployment
        repair = deployment.repair
        tracker = repair.tracker
        want = min(deployment.store.replica_count, len(deployment.ring))
        deficit = 0
        per_node: Dict[str, int] = {}
        for key in tracker.tracked_keys():
            if tracker.live_count(key) < want:
                deficit += 1
                if self.node_level:
                    owner = deployment.ring.successor(key)
                    per_node[owner] = per_node.get(owner, 0) + 1
        self.bank.sample("repair.deficit", now, float(deficit), agg="max")
        self.bank.sample("repair.backlog", now, float(repair.backlog()), agg="max")
        self.bank.sample(
            "repair.completed", now,
            float(deployment.metrics.counter("repair.completed").value),
            kind=COUNTER,
        )
        for node in sorted(per_node):
            self.bank.sample(
                "node.deficit", now, float(per_node[node]), agg="max", node=node
            )

    def _sample_pointers(self, now: float) -> None:
        deployment = self.deployment
        pending = len(deployment.store.pointer_table)
        stabilized = float(
            deployment.metrics.counter("pointer.stabilized").value
        )
        progressed = (
            self._prev_stabilized is None
            or stabilized > self._prev_stabilized
        )
        stall = 0.0 if (progressed or pending == 0) else float(pending)
        self._prev_stabilized = stabilized
        self.bank.sample("pointer.stall", now, stall, agg="max")

    def _sample_membership(self, now: float) -> None:
        metrics = self.deployment.metrics
        for name in ("membership.joins", "membership.leaves",
                     "membership.crashes"):
            self.bank.sample(
                name, now, float(metrics.counter(name).value), kind=COUNTER
            )

    def _sample_lookups(self, now: float) -> None:
        metrics = self.deployment.metrics
        hits = float(metrics.counter("lookup.hits").value)
        misses = float(metrics.counter("lookup.misses").value)
        prev_hits = self._prev_hits if self._prev_hits is not None else 0.0
        prev_misses = self._prev_misses if self._prev_misses is not None else 0.0
        delta = (hits - prev_hits) + (misses - prev_misses)
        if self._prev_hits is None:
            # Baseline round: record the starting totals, emit nothing.
            self._prev_hits, self._prev_misses = hits, misses
            return
        if delta < self.MIN_RATIO_LOOKUPS:
            # Too few lookups for a meaningful ratio; let them accumulate
            # into the next window instead of emitting noise.
            return
        self._prev_hits, self._prev_misses = hits, misses
        self.bank.sample(
            "lookup.hit_ratio", now, (hits - prev_hits) / delta
        )

    def _sample_loads(self, now: float) -> None:
        loads = self.deployment.store.total_loads()
        if not loads:
            return
        mean = sum(loads.values()) / len(loads)
        if mean > 0:
            self.bank.sample(
                "balance.imbalance", now, max(loads.values()) / mean
            )
        for node in sorted(loads):
            self.bank.sample(
                "node.load", now, float(loads[node]), node=node
            )

    # -- export ---------------------------------------------------------

    def _ingest(self, rows: List[Dict[str, Any]]) -> None:
        transitions = self.engine.observe(rows)
        for row in rows:
            self._buffer(row)
        for row in transitions:
            self._buffer(row)

    def _buffer(self, row: Dict[str, Any]) -> None:
        if len(self._export) >= self.retention:
            del self._export[0]
            self.dropped_rows += 1
        self._export.append(row)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop buffered series/alert rows (oldest first) for streaming."""
        rows = self._export
        self._export = []
        return rows

    def summary(self) -> Dict[str, Any]:
        """Deterministic roll-up merged into reports and snapshots."""
        result = self.engine.summary()
        result.update(self.bank.stats())
        result["window"] = self.window
        result["dropped_export_rows"] = self.dropped_rows
        return result
