"""Trace analysis: ``python -m repro.obs trace <file.jsonl>``.

Reconstructs span trees from a JSONL trace export (see
:mod:`repro.obs.spans`) and answers the question the flat counters cannot:
*where did the time in one slow operation go?*  Four reports come out of
one file:

* **per-phase latency attribution** — critical-path seconds bucketed into
  route / cache / transfer / queue / other, aggregated over every root
  operation (optionally filtered by root name); with ``--phase`` the
  same attribution is additionally grouped by the roots' ``phase``
  attribute (the accel matrix tags lookups pre/shift/post), so a mode's
  latency bill is visible per workload regime;
* **critical-path extraction** — for each root, the chain of descendant
  spans that determined its completion time;
* **slowest-N traces** — roots ranked by duration, with their direct
  critical chain;
* **text flamegraph** — the slowest (or a chosen) trace rendered as
  horizontally positioned bars in sim-time.

Everything works from the JSONL alone — no live tracer, registry, or
deployment is needed — so traces exported by runner cells can be analyzed
long after the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import validate_span_dict

#: Ordering and naming of the attribution buckets.
PHASES = ("route", "cache", "transfer", "queue", "other")

#: Tolerance for "child end meets parent/sibling boundary" comparisons.
EPS = 1e-9


def phase_of(name: str) -> str:
    """Attribution bucket for a span name (prefix-based, stable)."""
    if name.startswith("dht."):
        return "route"
    if name.startswith("lookup"):
        return "cache"
    if name.startswith(("transfer", "net.", "tcp.")):
        return "transfer"
    if name.startswith("queue"):
        return "queue"
    return "other"


@dataclass
class SpanRec:
    """One decoded span line, plus its resolved children."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: Optional[float]
    attrs: Dict[str, object]
    children: List["SpanRec"] = field(default_factory=list)
    orphaned: bool = False

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRec":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start=float(payload["start"]),
            end=None if payload.get("end") is None else float(payload["end"]),
            attrs=dict(payload.get("attrs") or {}),
        )


@dataclass
class Forest:
    """All trees reconstructed from one trace file."""

    roots: List[SpanRec]
    spans: List[SpanRec]
    orphans: List[SpanRec]       # parent_id set but parent not in the file
    open_spans: List[SpanRec]    # end is null (unclosed at snapshot time)


def load_spans(path: str) -> Tuple[List[SpanRec], List[str]]:
    """Decode and validate one JSONL file; returns (spans, problems)."""
    spans: List[SpanRec] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                problems.append(f"line {lineno}: not JSON: {exc}")
                continue
            line_problems = validate_span_dict(payload)
            if line_problems:
                problems.extend(f"line {lineno}: {p}" for p in line_problems)
                continue
            spans.append(SpanRec.from_dict(payload))
    return spans, problems


def build_forest(spans: Sequence[SpanRec]) -> Forest:
    """Link spans into trees; orphaned spans become flagged roots."""
    by_id = {span.span_id: span for span in spans}
    roots: List[SpanRec] = []
    orphans: List[SpanRec] = []
    for span in spans:
        span.children = []
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
        elif span.parent_id in by_id:
            by_id[span.parent_id].children.append(span)
        else:
            # The parent rotated out of the ring buffer (or was never
            # exported): keep the subtree visible as its own root.
            span.orphaned = True
            orphans.append(span)
            roots.append(span)
    for span in spans:
        span.children.sort(key=lambda s: (s.start, s.span_id))
    open_spans = [span for span in spans if span.end is None]
    return Forest(roots=roots, spans=list(spans), orphans=orphans,
                  open_spans=open_spans)


def critical_chain(span: SpanRec) -> List[SpanRec]:
    """Direct children on *span*'s critical path, in start order.

    Walks backward from ``span.end``: at each step the child whose finish
    time determines the current deadline joins the chain and the deadline
    moves to that child's start.  Children must be finished to qualify.
    """
    if span.end is None:
        return []
    remaining = [c for c in span.children if c.end is not None]
    chain: List[SpanRec] = []
    deadline = span.end
    while remaining:
        best = None
        for child in remaining:
            if child.end <= deadline + EPS and (best is None or child.end > best.end):
                best = child
        if best is None:
            break
        chain.append(best)
        remaining.remove(best)
        deadline = best.start
        if deadline <= span.start + EPS:
            break
    chain.reverse()
    return chain


def critical_path(span: SpanRec) -> List[SpanRec]:
    """Root-to-leaf critical path: each chain element expanded recursively."""
    path: List[SpanRec] = [span]
    for child in critical_chain(span):
        path.extend(critical_path(child))
    return path


def critical_segments(span: SpanRec) -> List[Tuple[SpanRec, float, float]]:
    """Critical-path time, attributed to the deepest responsible span.

    Returns ``(span, lo, hi)`` intervals covering ``[start, end]`` of
    *span*: intervals a critical child accounts for recurse into that
    child; uncovered time (queueing between children, work the span did
    itself) stays attributed to *span*.
    """
    if span.end is None:
        return []
    chain = critical_chain(span)
    if not chain:
        return [(span, span.start, span.end)]
    segments: List[Tuple[SpanRec, float, float]] = []
    cursor = span.start
    for child in chain:
        if child.start > cursor + EPS:
            segments.append((span, cursor, child.start))
        segments.extend(critical_segments(child))
        cursor = max(cursor, child.end)
    if span.end > cursor + EPS:
        segments.append((span, cursor, span.end))
    return segments


def attribution(roots: Sequence[SpanRec], op: Optional[str] = None) -> Dict[str, float]:
    """Critical-path seconds per phase, summed over matching finished roots."""
    totals = {phase: 0.0 for phase in PHASES}
    for root in roots:
        if op is not None and root.name != op:
            continue
        for span, lo, hi in critical_segments(root):
            totals[phase_of(span.name)] += hi - lo
    return totals


#: Canonical ordering of the accel matrix's workload phases; phases not
#: in this tuple sort after it, untagged roots group under ``(none)``.
WORKLOAD_PHASE_ORDER = ("pre", "shift", "post")

UNTAGGED_PHASE = "(none)"


def workload_phase_groups(
    roots: Sequence[SpanRec],
) -> Dict[str, List[SpanRec]]:
    """Group roots by their ``phase`` span attribute (``--phase``).

    The accel harness tags every ``accel.lookup`` root with the workload
    phase it ran in (pre-shift warmup, the shift quarter, the recovered
    tail), so attribution per group shows *when* latency was spent, not
    just in which subsystem.
    """
    groups: Dict[str, List[SpanRec]] = {}
    for root in roots:
        phase = root.attrs.get("phase")
        key = str(phase) if phase is not None else UNTAGGED_PHASE
        groups.setdefault(key, []).append(root)
    return groups


def ordered_workload_phases(groups: Dict[str, List[SpanRec]]) -> List[str]:
    named = [p for p in WORKLOAD_PHASE_ORDER if p in groups]
    extras = sorted(
        k for k in groups
        if k not in WORKLOAD_PHASE_ORDER and k != UNTAGGED_PHASE
    )
    tail = [UNTAGGED_PHASE] if UNTAGGED_PHASE in groups else []
    return named + extras + tail


def render_workload_phases(
    groups: Dict[str, List[SpanRec]], op: Optional[str] = None
) -> List[str]:
    lines = ["per-workload-phase critical-path attribution:"]
    if not groups:
        lines.append("  (no root spans)")
        return lines
    for phase in ordered_workload_phases(groups):
        roots = groups[phase]
        totals = attribution(roots, op=op)
        grand = sum(totals.values())
        finished = sum(1 for r in roots if r.end is not None)
        lines.append(
            f"  phase {phase}: {len(roots)} roots "
            f"({finished} finished)  critical {_fmt_seconds(grand)}"
        )
        if grand > 0.0:
            parts = [
                f"{bucket} {_fmt_seconds(totals[bucket])} "
                f"({100.0 * totals[bucket] / grand:.1f}%)"
                for bucket in PHASES
                if totals[bucket] > 0.0
            ]
            lines.append("    " + "  ".join(parts))
    return lines


def complete_critical_paths(roots: Sequence[SpanRec]) -> int:
    """Roots whose critical path descends through children to a leaf."""
    count = 0
    for root in roots:
        path = critical_path(root)
        if len(path) > 1 and not path[-1].children:
            count += 1
    return count


# ----------------------------------------------------------------------
# rendering


def _fmt_seconds(value: float) -> str:
    return f"{value:.6f}s" if value < 0.01 else f"{value:.3f}s"


def render_attribution(totals: Dict[str, float]) -> List[str]:
    grand = sum(totals.values())
    lines = ["per-phase critical-path attribution:"]
    if grand <= 0.0:
        lines.append("  (no finished critical-path time)")
        return lines
    width = max(len(p) for p in PHASES)
    for phase in PHASES:
        seconds = totals[phase]
        if seconds <= 0.0:
            continue
        share = 100.0 * seconds / grand
        lines.append(f"  {phase.ljust(width)}  {_fmt_seconds(seconds):>12}  {share:5.1f}%")
    lines.append(f"  {'total'.ljust(width)}  {_fmt_seconds(grand):>12}  100.0%")
    return lines


def render_slowest(roots: Sequence[SpanRec], top: int) -> List[str]:
    finished = sorted(
        (r for r in roots if r.end is not None),
        key=lambda r: r.duration,
        reverse=True,
    )
    lines = [f"slowest {min(top, len(finished))} traces:"]
    if not finished:
        lines.append("  (no finished root spans)")
        return lines
    for rank, root in enumerate(finished[:top], 1):
        chain = critical_chain(root)
        detail = " -> ".join(f"{c.name} {_fmt_seconds(c.duration)}" for c in chain)
        flags = " [orphaned]" if root.orphaned else ""
        lines.append(
            f"  {rank}. {root.name}  {_fmt_seconds(root.duration)}  "
            f"trace {root.trace_id}{flags}" + (f"  [{detail}]" if detail else "")
        )
    return lines


def render_flamegraph(root: SpanRec, width: int = 48) -> List[str]:
    """Text flamegraph: bars positioned by start offset within the root."""
    span_width = max(root.duration, EPS)
    name_width = _max_name_width(root, 0)
    lines = [
        f"flamegraph (trace {root.trace_id}, root {root.name}, "
        f"{_fmt_seconds(root.duration)}):"
    ]

    def emit(span: SpanRec, depth: int) -> None:
        label = ("  " * depth + span.name).ljust(name_width)
        if span.end is None:
            lines.append(f"  {label} |{'?' * width}| (unclosed)")
        else:
            offset = int(round((span.start - root.start) / span_width * width))
            offset = min(max(offset, 0), width)
            length = int(round(span.duration / span_width * width))
            length = min(max(length, 1 if span.duration > 0 else 0), width - offset)
            bar = (" " * offset + "#" * length).ljust(width)
            share = 100.0 * span.duration / span_width
            lines.append(
                f"  {label} |{bar}| {_fmt_seconds(span.duration):>12} {share:5.1f}%"
            )
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return lines


def _max_name_width(span: SpanRec, depth: int) -> int:
    width = len(span.name) + 2 * depth
    for child in span.children:
        width = max(width, _max_name_width(child, depth + 1))
    return width


# ----------------------------------------------------------------------
# CLI


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs trace",
        description="Analyze a span-trace JSONL export: attribution, "
        "critical paths, slowest traces, flamegraph.",
    )
    parser.add_argument("files", nargs="+", help="trace JSONL files")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest traces to list (default 5)")
    parser.add_argument("--op", default=None,
                        help="restrict attribution to roots with this name")
    parser.add_argument(
        "--phase", action="store_true",
        help="also group critical-path attribution by the roots' 'phase' "
        "attribute (the accel matrix's pre/shift/post workload phases)",
    )
    parser.add_argument("--flame", default=None, metavar="TRACE_ID",
                        help="flamegraph this trace (default: the slowest)")
    parser.add_argument("--no-flame", action="store_true",
                        help="skip the flamegraph section")
    parser.add_argument(
        "--require-complete", action="store_true",
        help="exit 1 unless at least one complete root-to-leaf critical "
        "path exists (CI smoke guard)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    status = 0
    for index, path in enumerate(args.files):
        if index:
            print()
        try:
            spans, problems = load_spans(path)
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        if problems:
            status = 1
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            continue
        forest = build_forest(spans)
        complete = complete_critical_paths(forest.roots)
        print(f"== {path}")
        print(
            f"spans: {len(forest.spans)} (open: {len(forest.open_spans)}, "
            f"orphaned: {len(forest.orphans)})  traces: {len(forest.roots)}  "
            f"complete critical paths: {complete}"
        )
        if args.require_complete and complete == 0:
            print(f"{path}: no complete root-to-leaf critical path",
                  file=sys.stderr)
            status = 1
        print()
        for line in render_attribution(attribution(forest.roots, op=args.op)):
            print(line)
        if args.phase:
            print()
            groups = workload_phase_groups(forest.roots)
            for line in render_workload_phases(groups, op=args.op):
                print(line)
        print()
        for line in render_slowest(forest.roots, args.top):
            print(line)
        flame_root = _pick_flame_root(forest.roots, args.flame)
        if flame_root is not None and not args.no_flame:
            print()
            for line in render_flamegraph(flame_root):
                print(line)
        elif args.flame is not None and flame_root is None:
            print(f"{path}: no trace {args.flame!r}", file=sys.stderr)
            status = 1
    return status


def _pick_flame_root(roots: Sequence[SpanRec], trace_id: Optional[str]) -> Optional[SpanRec]:
    if trace_id is not None:
        for root in roots:
            if root.trace_id == trace_id:
                return root
        return None
    finished = [r for r in roots if r.end is not None and r.children]
    if not finished:
        return None
    return max(finished, key=lambda r: r.duration)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.obs CLI
    sys.exit(main())
