"""Sim-time sliding-window time series.

The metrics registry (PR 1) answers "what were the totals"; this module
answers "what happened *when*".  A :class:`TimeSeriesBank` holds labelled
series bucketed into fixed-width windows of **simulated** time — never
wall clock (lint rule ``OBS002`` enforces that no ``perf_counter`` value
is ever fed into a sampler).  Windows are half-open on the left,
``(start, end]``, so a sample taken exactly at a window boundary — the
cadence the health monitor uses — lands in the window that boundary
*closes*, and counter deltas line up exactly with the interval they
describe.

Two series kinds:

* ``gauge`` — point-in-time samples; the window value is an aggregate of
  the samples inside it (``last``, ``max``, ``min`` or ``sum``).  A
  ``max`` gauge is the right shape for push-sampled spike detectors
  (e.g. the repair scheduler's replica deficit): transient peaks inside
  a window survive to the window boundary where SLO rules evaluate.
* ``counter`` — *cumulative* samples (monotone totals, e.g. a registry
  counter's value); the window value is the delta against the previous
  cumulative sample, i.e. the growth attributable to that window.

Determinism contract: every row is a pure function of the sample
sequence.  Out-of-order samples (sim-time moving backwards within one
series) are rejected deterministically and counted, never reordered.
Windows a series skipped entirely are materialised as explicit empty
rows (``count == 0``) so downstream consumers see a contiguous timeline;
pathological gaps are capped at :attr:`TimeSeriesBank.max_empty_gap`
empties per closure (the skipped remainder is counted, not emitted).

Memory contract: closed-window rows accumulate in a bounded ring buffer
(oldest dropped first, drops counted — the :class:`~repro.obs.spans.Tracer`
retention discipline) and are popped by :meth:`TimeSeriesBank.drain` for
streaming through :class:`repro.obs.stream.JsonlWriter`, so peak RSS is
independent of run length.  Concatenated drained segments analyse
identically to one undrained export.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "COUNTER",
    "GAUGE",
    "TimeSeries",
    "TimeSeriesBank",
    "TimeSeriesError",
]

GAUGE = "gauge"
COUNTER = "counter"
_KINDS = (GAUGE, COUNTER)
_AGGS = ("last", "max", "min", "sum")


class TimeSeriesError(ValueError):
    """Raised for structural misuse (kind/agg mismatch, bad width)."""


class _OpenWindow:
    """Mutable accumulator for the window currently receiving samples."""

    __slots__ = ("index", "count", "last", "low", "high", "total")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.last = 0.0
        self.low = math.inf
        self.high = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.last = value
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value
        self.total += value


class TimeSeries:
    """One labelled series inside a bank; create via :meth:`TimeSeriesBank.series`."""

    __slots__ = (
        "name", "kind", "agg", "labels", "width", "epoch",
        "samples", "rejected", "skipped_windows",
        "_sink", "_max_empty_gap", "_open", "_next_index",
        "_last_time", "_prev_cumulative", "_has_baseline",
    )

    def __init__(
        self,
        name: str,
        *,
        kind: str,
        agg: str,
        labels: Dict[str, str],
        width: float,
        epoch: float,
        sink: Callable[[Dict[str, Any]], None],
        max_empty_gap: int,
    ) -> None:
        if kind not in _KINDS:
            raise TimeSeriesError(f"unknown series kind {kind!r}")
        if agg not in _AGGS:
            raise TimeSeriesError(f"unknown gauge aggregation {agg!r}")
        if width <= 0:
            raise TimeSeriesError(f"window width must be positive, got {width}")
        self.name = name
        self.kind = kind
        self.agg = agg
        self.labels = dict(labels)
        self.width = float(width)
        self.epoch = float(epoch)
        self.samples = 0
        self.rejected = 0
        self.skipped_windows = 0
        self._sink = sink
        self._max_empty_gap = max_empty_gap
        self._open: Optional[_OpenWindow] = None
        #: Index of the next window allowed to open (everything below is
        #: closed); advanced monotonically, never rewound.
        self._next_index = 0
        self._last_time: Optional[float] = None
        self._prev_cumulative: Optional[float] = None
        self._has_baseline = False

    # -- window geometry ------------------------------------------------

    def _index_of(self, time: float) -> int:
        """Window index for ``time`` under ``(start, end]`` semantics."""
        return math.ceil((time - self.epoch) / self.width) - 1

    def _start_of(self, index: int) -> float:
        return self.epoch + index * self.width

    # -- sampling -------------------------------------------------------

    def sample(self, time: float, value: float) -> bool:
        """Record one sample at sim-time ``time``.

        Returns ``False`` (and counts a rejection) when ``time`` moves
        backwards within this series, precedes the epoch, or lands in a
        window that has already been closed — rejected samples never
        perturb emitted rows, so replays stay deterministic.
        """
        time = float(time)
        value = float(value)
        if self._last_time is not None and time < self._last_time:
            self.rejected += 1
            return False
        if time < self.epoch:
            self.rejected += 1
            return False
        index = self._index_of(time)
        if index < 0:
            # Exactly at the epoch: a pure baseline reading — establishes
            # the counter base without belonging to any window.
            self._note_cumulative(value)
            self._last_time = time
            self.samples += 1
            return True
        if index < self._next_index and self._open is None:
            # Late arrival into an already-closed window.
            self.rejected += 1
            return False
        if self._open is None:
            self._emit_empties(index)
            self._open = _OpenWindow(index)
        elif index > self._open.index:
            self._close_open()
            self._emit_empties(index)
            self._open = _OpenWindow(index)
        self._open.add(value)
        self._last_time = time
        self.samples += 1
        return True

    def _note_cumulative(self, value: float) -> None:
        if not self._has_baseline:
            self._prev_cumulative = value
            self._has_baseline = True

    # -- closing --------------------------------------------------------

    def advance(self, now: float) -> None:
        """Close every window whose end lies at or before ``now``."""
        complete_through = math.floor((float(now) - self.epoch) / self.width) - 1
        if self._open is not None and self._open.index <= complete_through:
            self._close_open()
        if self._last_time is not None:
            self._emit_empties(complete_through + 1)

    def flush(self) -> None:
        """Force-close the open window (end of run: emit the partial tail)."""
        if self._open is not None:
            self._close_open()

    def _close_open(self) -> None:
        window = self._open
        assert window is not None
        self._open = None
        self._next_index = window.index + 1
        self._sink(self._row(window.index, window))

    def _emit_empties(self, up_to_index: int) -> None:
        """Materialise empty rows for windows in [_next_index, up_to_index)."""
        gap = up_to_index - self._next_index
        if gap <= 0:
            return
        if gap > self._max_empty_gap:
            # Cap pathological gaps: account for the skipped span rather
            # than emitting millions of empty rows.
            self.skipped_windows += gap - self._max_empty_gap
            self._next_index = up_to_index - self._max_empty_gap
            gap = self._max_empty_gap
        for index in range(self._next_index, up_to_index):
            self._sink(self._row(index, None))
        self._next_index = up_to_index

    def _row(self, index: int, window: Optional[_OpenWindow]) -> Dict[str, Any]:
        count = window.count if window is not None else 0
        value: Optional[float]
        if self.kind == COUNTER:
            if count:
                assert window is not None
                if self._has_baseline and self._prev_cumulative is not None:
                    base = self._prev_cumulative
                else:
                    # No baseline yet: growth observable within the window
                    # is last - first (cumulative counters are monotone,
                    # so the window minimum is its first sample).
                    base = window.low
                value = window.last - base
                self._prev_cumulative = window.last
                self._has_baseline = True
            else:
                value = 0.0
        elif count:
            assert window is not None
            if self.agg == "last":
                value = window.last
            elif self.agg == "max":
                value = window.high
            elif self.agg == "min":
                value = window.low
            else:
                value = window.total
        else:
            value = None
        return {
            "type": "series",
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "window": index,
            "start": self._start_of(index),
            "end": self._start_of(index + 1),
            "count": count,
            "value": value,
        }


class TimeSeriesBank:
    """A family of labelled series sharing one epoch, width and row buffer."""

    def __init__(
        self,
        *,
        width: float,
        epoch: float = 0.0,
        retention: int = 4096,
        max_empty_gap: int = 64,
    ) -> None:
        if width <= 0:
            raise TimeSeriesError(f"window width must be positive, got {width}")
        self.width = float(width)
        self.epoch = float(epoch)
        self.retention = int(retention)
        self.max_empty_gap = int(max_empty_gap)
        self.dropped_rows = 0
        self._rows: Deque[Dict[str, Any]] = deque()
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], TimeSeries] = {}

    def __len__(self) -> int:
        return len(self._series)

    def _append_row(self, row: Dict[str, Any]) -> None:
        if len(self._rows) >= self.retention:
            self._rows.popleft()
            self.dropped_rows += 1
        self._rows.append(row)

    def series(
        self,
        name: str,
        *,
        kind: str = GAUGE,
        agg: str = "last",
        **labels: str,
    ) -> TimeSeries:
        """Get-or-create the series ``name`` with exactly these labels."""
        key = (name, tuple(sorted(labels.items())))
        existing = self._series.get(key)
        if existing is not None:
            if existing.kind != kind or (kind == GAUGE and existing.agg != agg):
                raise TimeSeriesError(
                    f"series {name!r} already registered as "
                    f"{existing.kind}/{existing.agg}, not {kind}/{agg}"
                )
            return existing
        created = TimeSeries(
            name,
            kind=kind,
            agg=agg,
            labels=dict(labels),
            width=self.width,
            epoch=self.epoch,
            sink=self._append_row,
            max_empty_gap=self.max_empty_gap,
        )
        self._series[key] = created
        return created

    def sample(
        self,
        name: str,
        time: float,
        value: float,
        *,
        kind: str = GAUGE,
        agg: str = "last",
        **labels: str,
    ) -> bool:
        """Convenience one-shot: get-or-create then sample."""
        return self.series(name, kind=kind, agg=agg, **labels).sample(time, value)

    def advance(self, now: float) -> None:
        """Close completed windows across every series (sorted key order)."""
        for key in sorted(self._series):
            self._series[key].advance(now)

    def flush(self, now: Optional[float] = None) -> None:
        """End-of-run closure: advance (optional) then emit partial tails."""
        if now is not None:
            self.advance(now)
        for key in sorted(self._series):
            self._series[key].flush()

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return every buffered closed-window row, oldest first."""
        rows = list(self._rows)
        self._rows.clear()
        return rows

    def pending_rows(self) -> int:
        return len(self._rows)

    def iter_series(self) -> Iterable[TimeSeries]:
        for key in sorted(self._series):
            yield self._series[key]

    def stats(self) -> Dict[str, int]:
        """Aggregate bookkeeping totals (all deterministic)."""
        samples = rejected = skipped = 0
        for series in self._series.values():
            samples += series.samples
            rejected += series.rejected
            skipped += series.skipped_windows
        return {
            "series": len(self._series),
            "samples": samples,
            "rejected": rejected,
            "skipped_windows": skipped,
            "dropped_rows": self.dropped_rows,
        }
