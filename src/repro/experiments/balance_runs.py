"""Shared load-balance simulation runs (backing Figs 16–17, Tables 3–4)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.balance import BalanceResult
from repro.experiments import common
from repro.runner import run_cells

HARVARD_SYSTEMS = ("d2", "traditional", "traditional-file", "traditional+merc")
WEBCACHE_SYSTEMS = ("d2", "traditional")


def harvard_balance_matrix(
    *,
    systems: Sequence[str] = HARVARD_SYSTEMS,
    n_nodes: int = common.BALANCE_NODES,
    users: int = common.TRACE_USERS,
    days: float = common.BALANCE_TRACE_DAYS,
    seed: int = common.SEED,
    jobs: Optional[int] = None,
) -> Dict[str, BalanceResult]:
    def compute() -> Dict[str, BalanceResult]:
        cells = [
            {"system": system, "n_nodes": n_nodes, "users": users,
             "days": days, "seed": seed}
            for system in systems
        ]
        values = run_cells(
            "harvard-balance", cells, jobs=jobs,
            metrics_name="runner_harvard_balance",
        )
        return {cell["system"]: value for cell, value in zip(cells, values)}

    return common.cached(
        ("harvard-balance", tuple(systems), n_nodes, users, days, seed), compute
    )


def webcache_balance_matrix(
    *,
    systems: Sequence[str] = WEBCACHE_SYSTEMS,
    n_nodes: int = common.BALANCE_NODES,
    days: float = common.BALANCE_TRACE_DAYS,
    seed: int = common.SEED,
    jobs: Optional[int] = None,
) -> Dict[str, BalanceResult]:
    def compute() -> Dict[str, BalanceResult]:
        cells = [
            {"system": system, "n_nodes": n_nodes, "days": days, "seed": seed}
            for system in systems
        ]
        values = run_cells(
            "webcache-balance", cells, jobs=jobs,
            metrics_name="runner_webcache_balance",
        )
        return {cell["system"]: value for cell, value in zip(cells, values)}

    return common.cached(
        ("webcache-balance", tuple(systems), n_nodes, days, seed), compute
    )
