"""Shared load-balance simulation runs (backing Figs 16–17, Tables 3–4)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.balance import BalanceResult, run_harvard_balance, run_webcache_balance
from repro.experiments import common
from repro.experiments.workload_cache import harvard_trace, web_trace

HARVARD_SYSTEMS = ("d2", "traditional", "traditional-file", "traditional+merc")
WEBCACHE_SYSTEMS = ("d2", "traditional")


def harvard_balance_matrix(
    *,
    systems: Sequence[str] = HARVARD_SYSTEMS,
    n_nodes: int = common.BALANCE_NODES,
    users: int = common.TRACE_USERS,
    days: float = common.BALANCE_TRACE_DAYS,
    seed: int = common.SEED,
) -> Dict[str, BalanceResult]:
    def compute() -> Dict[str, BalanceResult]:
        trace = harvard_trace(users=users, days=days, seed=seed)
        return {
            system: run_harvard_balance(trace, system, n_nodes=n_nodes, seed=seed)
            for system in systems
        }

    return common.cached(
        ("harvard-balance", tuple(systems), n_nodes, users, days, seed), compute
    )


def webcache_balance_matrix(
    *,
    systems: Sequence[str] = WEBCACHE_SYSTEMS,
    n_nodes: int = common.BALANCE_NODES,
    days: float = common.BALANCE_TRACE_DAYS,
    seed: int = common.SEED,
) -> Dict[str, BalanceResult]:
    def compute() -> Dict[str, BalanceResult]:
        trace = web_trace(days=days, seed=seed)
        return {
            system: run_webcache_balance(trace, system, n_nodes=n_nodes, seed=seed)
            for system in systems
        }

    return common.cached(
        ("webcache-balance", tuple(systems), n_nodes, days, seed), compute
    )
