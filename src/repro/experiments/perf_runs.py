"""Shared performance run matrix (backing Figures 9–15)."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.performance import PerformanceResult
from repro.experiments import common
from repro.runner import run_cells

PerfKey = Tuple[str, str, int, float]  # (system, mode, n_nodes, bandwidth_kbps)


def emit_performance_metrics(
    name: str,
    matrix: Dict[PerfKey, PerformanceResult],
    params: Mapping[str, object],
    metrics_dir: Optional[str] = None,
) -> Optional[str]:
    """Write one metrics report for a performance-matrix figure run.

    One run entry per grid cell, labelled by (system, mode, n_nodes,
    bandwidth); a no-op unless *metrics_dir* or $REPRO_METRICS_DIR names a
    destination.
    """
    directory = common.metrics_out_dir(metrics_dir)
    if not directory:
        return None
    runs = [
        common.labeled_run(
            {
                "system": system,
                "mode": mode,
                "n_nodes": n_nodes,
                "bandwidth_kbps": bandwidth,
            },
            result.metrics,
        )
        for (system, mode, n_nodes, bandwidth), result in sorted(matrix.items())
        if result.metrics is not None
    ]
    return common.emit_metrics_report(name, runs, params, directory)


def performance_matrix(
    *,
    systems: Sequence[str] = ("d2", "traditional", "traditional-file"),
    modes: Sequence[str] = ("seq", "para"),
    node_sizes: Sequence[int] = common.NODE_SIZES,
    bandwidths_kbps: Sequence[float] = common.BANDWIDTHS_KBPS,
    users: int = common.TRACE_USERS,
    days: float = common.TRACE_DAYS,
    n_windows: int = common.PERF_WINDOWS,
    scale_with_size: bool = True,
    seed: int = common.SEED,
    jobs: Optional[int] = None,
) -> Dict[PerfKey, PerformanceResult]:
    """All performance runs for the evaluation grid, memoized.

    One run per (system, mode, size, bandwidth); several figures read
    different projections of the same grid, as in the paper.  With
    ``scale_with_size`` the stored file system is replicated so per-node
    data stays constant across sizes (Section 9.1's methodology).

    Cells execute through :mod:`repro.runner`: they are served from the
    on-disk result cache when ``$REPRO_RUN_CACHE`` is set, and computed in
    ``jobs`` worker processes (default ``$REPRO_JOBS`` / serial) otherwise.
    ``jobs`` never changes the rows — only how fast they arrive — so it is
    deliberately absent from the memo key.
    """

    def compute() -> Dict[PerfKey, PerformanceResult]:
        base_size = min(node_sizes)
        cells = [
            {
                "system": system,
                "mode": mode,
                "n_nodes": n_nodes,
                "bandwidth_kbps": bandwidth,
                "users": users,
                "days": days,
                "n_windows": n_windows,
                "scale_with_size": scale_with_size,
                "base_size": base_size,
                "seed": seed,
            }
            for n_nodes in node_sizes
            for bandwidth in bandwidths_kbps
            for system in systems
            for mode in modes
        ]
        values = run_cells(
            "performance", cells, jobs=jobs, metrics_name="runner_performance"
        )
        return {
            (cell["system"], cell["mode"], cell["n_nodes"], cell["bandwidth_kbps"]): value
            for cell, value in zip(cells, values)
        }

    return common.cached(
        (
            "performance",
            tuple(systems),
            tuple(modes),
            tuple(node_sizes),
            tuple(bandwidths_kbps),
            users,
            days,
            n_windows,
            scale_with_size,
            seed,
        ),
        compute,
    )
