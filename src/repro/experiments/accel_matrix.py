"""The acceleration matrix: ``python -m repro accel``.

Sweeps lookup-acceleration modes (:data:`repro.core.accel.ACCEL_MODES`)
against workload-shift scenarios (:data:`repro.workloads.shift.SCENARIOS`)
over identical deployments and request streams, printing the per-phase
hit-ratio recovery table and appending one labelled run to the
``BENCH_scale.json`` trajectory (same file, env knobs, and schema as the
scale matrix — a row's ``cell`` field tells the two apart).

Like the scale cells, accel cells time themselves, so the disk result
cache is disabled; the deterministic fingerprint of every row is still
byte-identical between serial and ``--jobs N`` runs (CI's ``accel-smoke``
job asserts it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.accel import AccelCellResult
from repro.core.accel import ACCEL_MODES
from repro.experiments import common
from repro.runner import RunCache, run_cells
from repro.workloads.shift import SCENARIOS

#: Default grid — every mode under every shift shape.
N_NODES = 64
CLIENTS = 12
PRE_OPS = 3000
POST_OPS = 5000
STATIC_CAPACITY = 12


def accel_cells(
    *,
    modes: Sequence[str] = ACCEL_MODES,
    scenarios: Sequence[str] = SCENARIOS,
    n_nodes: int = N_NODES,
    clients: int = CLIENTS,
    pre_ops: int = PRE_OPS,
    post_ops: int = POST_OPS,
    static_capacity: int = STATIC_CAPACITY,
    seed: int = common.SEED,
) -> List[Dict[str, Any]]:
    """The parameter bundles of one accel run (plain picklable dicts)."""
    return [
        {
            "mode": mode,
            "scenario": scenario,
            "n_nodes": n_nodes,
            "clients": clients,
            "pre_ops": pre_ops,
            "post_ops": post_ops,
            "static_capacity": static_capacity,
            "seed": seed,
        }
        for scenario in scenarios
        for mode in modes
    ]


def run_accel(
    *, cells: Optional[Sequence[Dict[str, Any]]] = None, jobs: Optional[int] = None
) -> List[AccelCellResult]:
    """Run the accel matrix, always fresh (disk cache disabled)."""
    bundles = list(cells) if cells is not None else accel_cells()
    return run_cells(
        "accel",
        bundles,
        jobs=jobs,
        cache=RunCache(None),
        metrics_name="runner_accel",
    )


def format_accel(results: Sequence[AccelCellResult]) -> str:
    rows = [result.row() for result in results]
    return common.format_table(
        rows,
        [
            "scenario", "mode", "lookups", "messages", "messages_post",
            "hit_pre", "hit_post", "hit_recovered", "stale_faults",
            "learned_hits", "capacity_end", "ttl_end", "checksum",
        ],
        title="Acceleration matrix: hit-ratio recovery under workload shift",
    )
