"""Figure 14: access-group latencies, D2 vs traditional (scatter).

Paper shape: the weight of the distribution lies above the diagonal (D2
faster); nearly every group slower in D2 is a short (<2 s) group whose
blocks happened to hash near the client; groups >5 s in either system
complete faster in D2, sometimes ~10x.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.performance import compare
from repro.experiments import common
from repro.experiments.perf_runs import performance_matrix


def run_fig14(baseline: str = "traditional", n_nodes: Optional[int] = None,
              **kwargs) -> List[dict]:
    matrix = performance_matrix(**kwargs)
    if n_nodes is None:
        n_nodes = max(k[2] for k in matrix)
    rows: List[dict] = []
    for mode in ("seq", "para"):
        base = matrix.get((baseline, mode, n_nodes, 1500.0))
        fast = matrix.get(("d2", mode, n_nodes, 1500.0))
        if base is None or fast is None:
            continue
        report = compare(base, fast)
        above = sum(1 for b, f in report.pairs if f < b)
        slow_pairs = [(b, f) for b, f in report.pairs if max(b, f) > 5.0]
        slow_d2_wins = sum(1 for b, f in slow_pairs if f <= b)
        rows.append(
            {
                "mode": mode,
                "n_nodes": n_nodes,
                "groups": len(report.pairs),
                "faster_in_d2": above,
                "fraction_above_diagonal": above / len(report.pairs) if report.pairs else 0.0,
                "slow_groups": len(slow_pairs),
                "slow_groups_d2_wins": slow_d2_wins,
            }
        )
    return rows


def scatter_points(baseline: str = "traditional", mode: str = "seq",
                   n_nodes: Optional[int] = None, **kwargs) -> List[dict]:
    """Raw (baseline, d2) latency pairs for plotting the scatter itself."""
    matrix = performance_matrix(**kwargs)
    if n_nodes is None:
        n_nodes = max(k[2] for k in matrix)
    base = matrix[(baseline, mode, n_nodes, 1500.0)]
    fast = matrix[("d2", mode, n_nodes, 1500.0)]
    report = compare(base, fast)
    return [
        {"baseline_s": b, "d2_s": f} for b, f in sorted(report.pairs, reverse=True)
    ]


def format_fig14(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["mode", "n_nodes", "groups", "faster_in_d2", "fraction_above_diagonal",
         "slow_groups", "slow_groups_d2_wins"],
        title="Figure 14: access-group latency scatter summary, D2 vs traditional",
    )


def plot_fig14(mode: str = "seq", **kwargs) -> str:
    """ASCII scatter with the diagonal, as the paper draws it."""
    from repro.analysis.plotting import ascii_scatter

    points = scatter_points(mode=mode, **kwargs)
    return ascii_scatter(
        [(p["baseline_s"], p["d2_s"]) for p in points],
        title=f"Figure 14 ({mode}): access-group latency, traditional vs D2",
    )


if __name__ == "__main__":
    print(format_fig14(run_fig14()))
    print()
    print(plot_fig14())
