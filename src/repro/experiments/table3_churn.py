"""Table 3: daily write and removal ratios (W_i/T_i, R_i/T_i).

Paper shape: Harvard writes and removes ~10–20% of stored bytes per day;
Webcache can write 100%–1300% of stored bytes in a day and removes
everything present at a day's start by its end (ratios ≥ ~0.8, sometimes
far above 1).
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.balance_runs import harvard_balance_matrix, webcache_balance_matrix


def run_table3(**kwargs) -> List[dict]:
    harvard = harvard_balance_matrix(systems=("d2",), **kwargs)["d2"]
    web_kwargs = {k: v for k, v in kwargs.items() if k != "users"}
    webcache = webcache_balance_matrix(systems=("d2",), **web_kwargs)["d2"]
    rows: List[dict] = []
    for result, name in ((harvard, "Harvard"), (webcache, "Webcache")):
        for churn in result.churn_rows():
            rows.append(
                {
                    "workload": name,
                    "day": churn["day"],
                    "W_over_T": churn["write_ratio"],
                    "R_over_T": churn["remove_ratio"],
                }
            )
    return rows


def format_table3(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["workload", "day", "W_over_T", "R_over_T"],
        title="Table 3: daily write/remove volume over bytes present at day start",
    )


if __name__ == "__main__":
    print(format_table3(run_table3()))
