"""Table 3: daily write and removal ratios (W_i/T_i, R_i/T_i).

Paper shape: Harvard writes and removes ~10–20% of stored bytes per day;
Webcache can write 100%–1300% of stored bytes in a day and removes
everything present at a day's start by its end (ratios ≥ ~0.8, sometimes
far above 1).

The dynamic-ring variant (:func:`run_table3_dynamic`) reruns the Harvard
ratios with live membership change — a steady join/leave/crash storm
driven through :class:`repro.dht.membership.MembershipService` — and adds
the repair traffic replica re-replication injects per day (``Rep_over_T``),
the cost column the static table cannot have.  The W/R ratios should hold
their paper shape under churn; repair traffic is the price of it.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.balance_runs import harvard_balance_matrix, webcache_balance_matrix

SECONDS_PER_DAY = 86400.0


def run_table3(**kwargs) -> List[dict]:
    harvard = harvard_balance_matrix(systems=("d2",), **kwargs)["d2"]
    web_kwargs = {k: v for k, v in kwargs.items() if k != "users"}
    webcache = webcache_balance_matrix(systems=("d2",), **web_kwargs)["d2"]
    rows: List[dict] = []
    for result, name in ((harvard, "Harvard"), (webcache, "Webcache")):
        for churn in result.churn_rows():
            rows.append(
                {
                    "workload": name,
                    "day": churn["day"],
                    "W_over_T": churn["write_ratio"],
                    "R_over_T": churn["remove_ratio"],
                }
            )
    return rows


def run_table3_dynamic(
    *,
    users: int = 4,
    days: float = 2.0,
    n_nodes: int = 32,
    join_rate: float = 2.0,
    leave_rate: float = 1.0,
    crash_rate: float = 1.0,
    seed: int = common.SEED,
) -> List[dict]:
    """Harvard daily churn ratios on a *dynamic* ring, plus repair cost.

    Replays the Harvard trace while a steady membership storm runs, and
    buckets write / remove / repair bytes per day against the bytes present
    at that day's start.  One extra column per day: ``Rep_over_T``, the
    repair + graceful-handoff traffic re-replication injected.
    """

    def compute() -> List[dict]:
        from repro.core.system import build_deployment
        from repro.experiments.workload_cache import harvard_trace
        from repro.sim.failures import ChurnStormConfig

        trace = harvard_trace(users=users, days=days, seed=seed)
        deployment = build_deployment("d2", n_nodes, seed=seed)
        deployment.load_initial_image(trace)
        deployment.stabilize()
        deployment.store.ledger = type(deployment.store.ledger)()  # reset accounting
        membership = deployment.enable_dynamic_membership()
        membership.schedule_churn_storm(
            ChurnStormConfig(
                duration=days * SECONDS_PER_DAY,
                join_rate=join_rate,
                leave_rate=leave_rate,
                crash_rate=crash_rate,
            )
        )
        deployment.start_periodic_balancing()
        repair = deployment.repair

        n_days = max(1, int(round(days)))
        day_start_bytes: List[int] = []
        repair_bytes_at: List[int] = []
        churn_ops_at: List[int] = []

        def sample_day_start() -> None:
            day_start_bytes.append(deployment.store.directory.total_bytes)
            repair_bytes_at.append(
                repair.stats.repaired_bytes + repair.stats.handoff_bytes
            )
            churn_ops_at.append(
                int(
                    deployment.metrics.counter("membership.joins").value
                    + deployment.metrics.counter("membership.leaves").value
                    + deployment.metrics.counter("membership.crashes").value
                )
            )

        sample_day_start()
        next_day = 1
        for record in trace.records:
            while next_day < n_days and record.time >= next_day * SECONDS_PER_DAY:
                deployment.advance_to(next_day * SECONDS_PER_DAY)
                sample_day_start()
                next_day += 1
            deployment.advance_to(record.time)
            deployment.replay_record(record)
        while next_day < n_days:
            deployment.advance_to(next_day * SECONDS_PER_DAY)
            sample_day_start()
            next_day += 1
        deployment.advance_to(days * SECONDS_PER_DAY)
        sample_day_start()  # end-of-run sample closes the last day's deltas

        rows: List[dict] = []
        series = deployment.store.ledger.daily_series(n_days)
        for day, entry in enumerate(series):
            present = day_start_bytes[day]
            repaired = repair_bytes_at[day + 1] - repair_bytes_at[day]
            rows.append(
                {
                    "workload": "Harvard (dynamic)",
                    "day": entry["day"],
                    "W_over_T": entry["written"] / present if present else float("inf"),
                    "R_over_T": entry["removed"] / present if present else float("inf"),
                    "Rep_over_T": repaired / present if present else float("inf"),
                    "churn_ops": churn_ops_at[day + 1] - churn_ops_at[day],
                    "lost_keys": repair.stats.lost_keys,
                }
            )
        return rows

    return common.cached(
        (
            "table3-dynamic",
            users,
            days,
            n_nodes,
            join_rate,
            leave_rate,
            crash_rate,
            seed,
        ),
        compute,
    )


def format_table3(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["workload", "day", "W_over_T", "R_over_T"],
        title="Table 3: daily write/remove volume over bytes present at day start",
    )


def format_table3_dynamic(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        [
            "workload",
            "day",
            "W_over_T",
            "R_over_T",
            "Rep_over_T",
            "churn_ops",
            "lost_keys",
        ],
        title="Table 3 (dynamic ring): daily ratios under live join/leave/crash churn",
    )


if __name__ == "__main__":
    print(format_table3(run_table3()))
    print()
    print(format_table3_dynamic(run_table3_dynamic()))
