"""Churn-storm matrix: sustained join/leave/kill × correlated outages.

The paper's Table 3 churn is daily-rate; production DHTs live with
continuous membership change.  This matrix replays the Harvard workload
against a *dynamic* ring while a churn storm runs — graceful leaves hand
arcs off through pointers, crashes destroy disks, and the bandwidth-capped
repair scheduler races the next failure — and reports the three numbers
that matter for durability:

* **pointer-stabilization time** — how long adopted arcs wait for their
  bytes (mean / p95 of the ``pointer.stabilization_seconds`` histogram);
* **repair backlog** — in-flight re-replication jobs (peak and end-state);
* **data-loss probability** — blocks whose whole replica group died inside
  one repair window, over all blocks tracked.

Every cell runs under sim-time health monitoring
(:mod:`repro.obs.health`): the replica-deficit and backlog SLO rules
turn the storm from a pass/fail total into an alert timeline — fire
during the storm, resolve after the drain — attached to each row as the
``health`` payload (written to ``runner_churn.health<k>.jsonl`` by the
runner, rendered by ``python -m repro.obs health``).

Every cell is a deterministic function of its parameter bundle and runs
through :mod:`repro.runner`, so rows are bit-identical serial vs
``--jobs N`` and cache cleanly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import common
from repro.runner import run_cells

SECONDS_PER_DAY = 86400.0

#: (join, leave, crash) arrivals per hour for the named storm levels.
STORM_LEVELS: Dict[str, Dict[str, float]] = {
    "calm": {"join_rate": 0.5, "leave_rate": 0.25, "crash_rate": 0.25},
    "steady": {"join_rate": 2.0, "leave_rate": 1.0, "crash_rate": 1.0},
    "storm": {"join_rate": 6.0, "leave_rate": 3.0, "crash_rate": 4.0},
}

CHURN_NODES = 48
CHURN_USERS = 4
CHURN_DAYS = 0.5
DRAIN_SECONDS = 4 * 3600.0


def run_churn_cell(params: Dict[str, object]) -> Dict[str, object]:
    """One (storm level, correlated, trial) churn run; returns a flat row.

    Deterministic: the workload trace, node IDs, storm schedule, outage
    trace, and every repair decision derive from the cell's parameters.
    """
    import random

    from repro.core.system import build_deployment
    from repro.experiments.workload_cache import harvard_trace
    from repro.sim.failures import ChurnStormConfig, FailureTrace, FailureTraceConfig

    users = int(params["users"])
    days = float(params["days"])
    n_nodes = int(params["n_nodes"])
    seed = int(params["seed"])
    trial = int(params["trial"])
    duration = days * SECONDS_PER_DAY

    trace = harvard_trace(users=users, days=days, seed=seed)
    deployment = build_deployment("d2", n_nodes, seed=seed + 17 * trial)
    deployment.load_initial_image(trace)
    deployment.stabilize()
    membership = deployment.enable_dynamic_membership()
    monitor = deployment.enable_health_monitoring(
        window=float(params.get("health_window", 900.0))
    )

    storm = ChurnStormConfig(
        duration=duration,
        join_rate=float(params["join_rate"]),
        leave_rate=float(params["leave_rate"]),
        crash_rate=float(params["crash_rate"]),
    )
    membership.schedule_churn_storm(storm)

    correlated_events = int(params["correlated_events"])
    if correlated_events > 0:
        # Outage-only trace: effectively-infinite MTTF leaves just the
        # correlated events, each crashing ~20% of the founding nodes.
        outage_config = FailureTraceConfig(
            duration=duration,
            mttf=1e15,
            mttr=3600.0,
            correlated_events=correlated_events,
            correlated_fraction=0.2,
            correlated_repair=1800.0,
        )
        outages = FailureTrace.generate(
            list(deployment.ring.names()),
            random.Random(seed + 31 * trial + 1),
            outage_config,
        )
        membership.schedule_failure_trace(outages)

    deployment.start_periodic_balancing()
    for record in trace.records:
        deployment.advance_to(record.time)
        deployment.replay_record(record)
    deployment.advance_to(duration)

    repair = deployment.repair
    backlog_end = repair.backlog()
    # Quiesce: stop the storm-free tail and let queued repairs drain so
    # convergence ("r live copies after any join/leave/crash sequence") is
    # measurable rather than assumed.
    deployment.stop_periodic_balancing()
    deployment.advance_to(duration + float(params.get("drain_seconds", DRAIN_SECONDS)))

    tracker = repair.tracker
    replicas = deployment.config.replica_count
    want = min(replicas, len(deployment.ring))
    tracked = tracker.tracked_keys()
    full = sum(1 for key in tracked if tracker.live_count(key) >= want)
    lost = repair.stats.lost_keys
    population = lost + len(deployment.store.directory)

    health_rows = monitor.finish()
    health_summary = monitor.summary()
    stabilization = deployment.metrics.histogram("pointer.stabilization_seconds")
    row: Dict[str, object] = {
        "level": params["level"],
        "correlated": correlated_events,
        "trial": trial,
        "joins": deployment.metrics.counter("membership.joins").value,
        "leaves": deployment.metrics.counter("membership.leaves").value,
        "crashes": deployment.metrics.counter("membership.crashes").value,
        "refused": deployment.metrics.counter("membership.refused").value,
        "nodes_end": len(deployment.ring),
        "stab_mean_s": round(stabilization.mean, 3),
        "stab_p95_s": round(stabilization.percentile(95.0), 3),
        "stabilized": stabilization.count,
        "backlog_peak": repair.stats.max_backlog,
        "backlog_end": backlog_end,
        "backlog_drained": repair.backlog(),
        "loss_prob": round(lost / population, 6) if population else 0.0,
        "fully_replicated": round(full / len(tracked), 6) if tracked else 1.0,
        "events_fired": deployment.metrics.counter("sim.events_fired").value,
        "alerts_fired": health_summary["alerts_fired"],
        "alerts_resolved": health_summary["alerts_resolved"],
        "alerts_active": health_summary["alerts_active"],
        # Full per-window health export: series + alert rows plus the
        # roll-up, attached for the runner's health-file writer and the
        # ``python -m repro.obs health`` CLI.
        "health": {
            "window": monitor.window,
            "summary": health_summary,
            "rows": health_rows,
        },
    }
    row.update(repair.stats.to_row())
    return row


def run_churn_storm(
    *,
    levels: Sequence[str] = ("calm", "steady", "storm"),
    correlated: Sequence[int] = (0, 3),
    trials: int = 1,
    users: int = CHURN_USERS,
    days: float = CHURN_DAYS,
    n_nodes: int = CHURN_NODES,
    seed: int = common.SEED,
    jobs: Optional[int] = None,
) -> List[dict]:
    """The full churn-storm matrix as flat rows, one per cell."""

    def compute() -> List[dict]:
        cells = []
        for level in levels:
            rates = STORM_LEVELS[level]
            for events in correlated:
                for trial in range(trials):
                    cells.append(
                        {
                            "level": level,
                            "correlated_events": events,
                            "trial": trial,
                            "users": users,
                            "days": days,
                            "n_nodes": n_nodes,
                            "seed": seed,
                            **rates,
                        }
                    )
        return run_cells("churn", cells, jobs=jobs, metrics_name="runner_churn")

    return common.cached(
        (
            "churn-storm",
            tuple(levels),
            tuple(correlated),
            trials,
            users,
            days,
            n_nodes,
            seed,
        ),
        compute,
    )


def format_churn_storm(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        [
            "level",
            "correlated",
            "trial",
            "joins",
            "leaves",
            "crashes",
            "stab_mean_s",
            "stab_p95_s",
            "backlog_peak",
            "backlog_drained",
            "repair_completed",
            "repair_retries",
            "lost_keys",
            "loss_prob",
            "fully_replicated",
            "alerts_fired",
            "alerts_resolved",
        ],
        title="Churn storm: membership dynamics, repair, and durability",
    )


if __name__ == "__main__":
    print(format_churn_storm(run_churn_storm()))
