"""Figure 17: storage load imbalance over time (Webcache workload).

Paper shape: more volatile than Harvard (the DHT starts empty and churn is
extreme), with warm-up spikes; after warm-up D2's imbalance stays below the
traditional DHT's in both stddev and max load.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.balance_runs import webcache_balance_matrix


def run_fig17(**kwargs) -> List[dict]:
    matrix = webcache_balance_matrix(**kwargs)
    rows: List[dict] = []
    for system, result in matrix.items():
        for sample in result.samples:
            rows.append(
                {
                    "system": system,
                    "day": sample.time / 86400.0,
                    "nsd": sample.nsd,
                    "max_over_mean": sample.max_over_mean,
                }
            )
    return rows


def summarize_fig17(**kwargs) -> List[dict]:
    matrix = webcache_balance_matrix(**kwargs)
    return [
        {
            "system": system,
            "mean_nsd": result.mean_nsd(),
            "mean_max_over_mean": result.mean_max_over_mean(),
            "moves": result.moves,
        }
        for system, result in matrix.items()
    ]


def format_fig17(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["system", "mean_nsd", "mean_max_over_mean", "moves"],
        title="Figure 17: load imbalance over time with Webcache (summary)",
    )


def plot_fig17(**kwargs) -> str:
    """ASCII rendering of the imbalance-over-time curves."""
    from repro.analysis.plotting import ascii_timeseries, timeseries_from_samples

    matrix = webcache_balance_matrix(**kwargs)
    series = {
        system: timeseries_from_samples(result.samples, lambda s: s.nsd)
        for system, result in matrix.items()
    }
    return ascii_timeseries(
        series,
        x_label="days",
        y_label="nsd",
        title="Figure 17: load imbalance over time (Webcache)",
    )


if __name__ == "__main__":
    print(format_fig17(summarize_fig17()))
    print()
    print(plot_fig17())
