"""Table 4: write traffic vs load-balancing (migration) traffic per day.

Paper shape: with Harvard, total migration ≈ 50% of total write volume
("for every 2 bytes written, 1 byte is migrated later"); with Webcache,
migration is comparable to — slightly above — the write volume (~1.16x).
Pointers are what keep both ratios near 1 instead of multiples.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.balance_runs import harvard_balance_matrix, webcache_balance_matrix


def run_table4(**kwargs) -> List[dict]:
    harvard = harvard_balance_matrix(systems=("d2",), **kwargs)["d2"]
    web_kwargs = {k: v for k, v in kwargs.items() if k != "users"}
    webcache = webcache_balance_matrix(systems=("d2",), **web_kwargs)["d2"]
    rows: List[dict] = []
    for result, name in ((harvard, "Harvard"), (webcache, "Webcache")):
        for overhead in result.overhead_rows():
            rows.append(
                {
                    "workload": name,
                    "day": overhead["day"],
                    "W_mb_per_node": overhead["write_mb_per_node"],
                    "L_mb_per_node": overhead["migration_mb_per_node"],
                }
            )
        rows.append(
            {
                "workload": name,
                "day": "total L/W",
                "W_mb_per_node": sum(result.daily_written) / 1e6 / result.n_nodes,
                "L_mb_per_node": sum(result.daily_migrated) / 1e6 / result.n_nodes,
            }
        )
    return rows


def migration_over_write(**kwargs) -> dict:
    harvard = harvard_balance_matrix(systems=("d2",), **kwargs)["d2"]
    web_kwargs = {k: v for k, v in kwargs.items() if k != "users"}
    webcache = webcache_balance_matrix(systems=("d2",), **web_kwargs)["d2"]
    return {
        "harvard": harvard.migration_over_write(),
        "webcache": webcache.migration_over_write(),
    }


def format_table4(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["workload", "day", "W_mb_per_node", "L_mb_per_node"],
        title="Table 4: daily write vs migration traffic per node (MB)",
    )


if __name__ == "__main__":
    print(format_table4(run_table4()))
