"""Memoized workload construction shared by all experiment drivers."""

from __future__ import annotations

from repro.experiments import common
from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.hp import HPConfig, generate_hp
from repro.workloads.trace import Trace
from repro.workloads.web import WebConfig, generate_web


def harvard_trace(users: int = common.TRACE_USERS, days: float = common.TRACE_DAYS,
                  seed: int = common.SEED) -> Trace:
    return common.cached(
        ("harvard", users, days, seed),
        lambda: generate_harvard(HarvardConfig(users=users, days=days, seed=seed)),
    )


def hp_trace(apps: int = 10, days: float = common.TRACE_DAYS, seed: int = common.SEED) -> Trace:
    return common.cached(
        ("hp", apps, days, seed),
        lambda: generate_hp(HPConfig(applications=apps, days=days, seed=seed)),
    )


def web_trace(users: int = 24, days: float = common.TRACE_DAYS, sites: int = 40,
              seed: int = common.SEED) -> Trace:
    return common.cached(
        ("web", users, days, sites, seed),
        lambda: generate_web(WebConfig(users=users, days=days, sites=sites, seed=seed)),
    )
