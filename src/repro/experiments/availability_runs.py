"""Shared availability simulation runs (backing Figures 7–8 and Table 2)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.availability import AvailabilityResult
from repro.experiments import common
from repro.runner import run_cells
from repro.sim.failures import FailureTraceConfig
from repro.workloads.trace import SECONDS_PER_DAY


def harsh_failure_config(days: float) -> FailureTraceConfig:
    """A deliberately failure-heavy period.

    Mirrors the paper's choice of a PlanetLab week "with a particularly
    large number of failures": short node MTTF, multi-hour repairs, and
    recurring correlated outages hitting ~22% of nodes.
    """
    return FailureTraceConfig(
        duration=days * SECONDS_PER_DAY,
        mttf=2.5 * SECONDS_PER_DAY,
        mttr=6 * 3600.0,
        correlated_events=max(2, int(2 * days)),
        correlated_fraction=0.22,
        correlated_repair=3 * 3600.0,
    )


def availability_matrix(
    *,
    systems: Sequence[str] = ("d2", "traditional", "traditional-file"),
    inters: Sequence[float] = common.INTERS,
    trials: int = common.TRIALS,
    n_nodes: int = common.AVAIL_NODES,
    users: int = common.TRACE_USERS,
    days: float = common.AVAIL_TRACE_DAYS,
    regeneration_delay: float = 2 * 3600.0,
    seed: int = common.SEED,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, float, int], AvailabilityResult]:
    """All (system, inter, trial) availability results, memoized.

    Each trial re-seeds node IDs (as in the paper) and its failure trace,
    so rare correlated events are sampled broadly.  The expensive replay
    runs once per (system, trial) cell; the *inter* sweep reuses it inside
    the cell.  Cells execute through :mod:`repro.runner` (disk cache +
    optional worker processes); ``jobs`` never changes the results.
    """

    def compute() -> Dict[Tuple[str, float, int], AvailabilityResult]:
        cells = [
            {
                "system": system,
                "trial": trial,
                "users": users,
                "days": days,
                "n_nodes": n_nodes,
                "regeneration_delay": regeneration_delay,
                "inters": tuple(inters),
                "seed": seed,
            }
            for trial in range(trials)
            for system in systems
        ]
        values = run_cells(
            "availability", cells, jobs=jobs, metrics_name="runner_availability"
        )
        results: Dict[Tuple[str, float, int], AvailabilityResult] = {}
        for cell, by_inter in zip(cells, values):
            for inter, result in by_inter.items():
                results[(cell["system"], inter, cell["trial"])] = result
        return results

    return common.cached(
        (
            "availability",
            tuple(systems),
            tuple(inters),
            trials,
            n_nodes,
            users,
            days,
            regeneration_delay,
            seed,
        ),
        compute,
    )
