"""Shared scaffolding for the per-figure/table experiment drivers.

Every driver follows the same contract:

* a ``run_*`` function takes scale knobs (defaulting to laptop-scale
  values recorded in EXPERIMENTS.md) and returns structured rows;
* a ``format_*`` function renders those rows as the table/series the paper
  prints, so benches can ``print()`` a directly comparable report.

Expensive underlying simulations are memoized per process (several figures
share one run matrix, exactly as the paper derives several figures from
one testbed execution).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.obs.report import build_report, write_report

_CACHE: "OrderedDict[Tuple, Any]" = OrderedDict()

#: Environment variable naming a directory for per-run metric snapshots.
#: When set (or when a driver is given an explicit ``metrics_dir``), the
#: fig9/fig13/fig16 drivers write one ``<name>.json`` report per invocation
#: so bench trajectories stay diffable across PRs.
METRICS_DIR_ENV = "REPRO_METRICS_DIR"

#: Process-memo controls.  Long bench sessions and parallel workers touch
#: many distinct traces/matrices; the memo is FIFO-bounded (oldest entry
#: evicted first) and ``$REPRO_NO_MEMO=1`` disables it outright.
MEMO_DISABLE_ENV = "REPRO_NO_MEMO"
MEMO_MAX_ENV = "REPRO_MEMO_MAX"
DEFAULT_MEMO_MAX = 32


def memo_max_entries() -> int:
    """Memo bound: $REPRO_MEMO_MAX when set to a positive int, else 32."""
    raw = os.environ.get(MEMO_MAX_ENV, "")
    try:
        value = int(raw) if raw else DEFAULT_MEMO_MAX
    except ValueError:
        value = DEFAULT_MEMO_MAX
    return max(1, value)


def cached(key: Tuple, compute: Callable[[], Any]) -> Any:
    """Process-wide memoization for shared simulation runs.

    Bounded FIFO (see :func:`memo_max_entries`); evicted entries are simply
    recomputed on next use.  ``$REPRO_NO_MEMO=1`` bypasses the memo
    entirely.  Cross-process persistence is the job of the disk cache in
    :mod:`repro.runner.cache`, not of this memo.
    """
    if os.environ.get(MEMO_DISABLE_ENV) == "1":
        return compute()
    if key in _CACHE:
        return _CACHE[key]
    value = compute()
    _CACHE[key] = value
    limit = memo_max_entries()
    while len(_CACHE) > limit:
        _CACHE.popitem(last=False)
    return value


def clear_cache() -> None:
    _CACHE.clear()


def metrics_out_dir(explicit: Optional[str] = None) -> Optional[str]:
    """Directory for metric snapshots: explicit arg, else $REPRO_METRICS_DIR."""
    return explicit if explicit is not None else os.environ.get(METRICS_DIR_ENV)


def emit_metrics_report(
    name: str,
    runs: Sequence[Mapping[str, Any]],
    params: Mapping[str, Any],
    directory: Optional[str],
) -> Optional[str]:
    """Write one schema-v1 metrics report; returns its path (None if disabled).

    *runs* pairs grid-cell labels with deployment observability snapshots:
    ``[{"labels": {...}, "counters": ..., "gauges": ..., "histograms": ...,
    "events": ...}, ...]``.
    """
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    report = build_report(name, runs, params=params)
    return write_report(report, os.path.join(directory, f"{name}.json"))


def labeled_run(labels: Mapping[str, Any], snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """One report run entry from a deployment observability snapshot."""
    entry: Dict[str, Any] = {"labels": dict(labels)}
    entry.update(snapshot)
    return entry


def format_table(rows: Sequence[dict], columns: Sequence[str], *, title: str = "") -> str:
    """Minimal fixed-width table renderer for bench reports."""
    if not rows:
        return f"{title}\n(no rows)"
    widths = {
        col: max(len(col), max(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100000:
            return f"{value:.2e}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


# ----------------------------------------------------------------------
# Default laptop-scale parameters (the paper-scale values in comments).

TRACE_USERS = 8          # paper: 83 active users
TRACE_DAYS = 1.0         # paper: 7 days (perf) / 7 days (availability)
BALANCE_TRACE_DAYS = 4.0  # paper: 6+ days
AVAIL_TRACE_DAYS = 2.0
NODE_SIZES = (60, 120, 240)   # paper: 200, 500, 1000 virtual nodes
AVAIL_NODES = 80               # paper: 247 PlanetLab nodes
BALANCE_NODES = 48
BANDWIDTHS_KBPS = (1500.0, 384.0)
INTERS = (1.0, 5.0, 15.0, 60.0)  # paper: 1 s, 5 s, 15 s, 1 min
TRIALS = 3                      # paper: 5 trials
PERF_WINDOWS = 3                # paper: 8 fifteen-minute windows
SEED = 11
