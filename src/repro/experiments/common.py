"""Shared scaffolding for the per-figure/table experiment drivers.

Every driver follows the same contract:

* a ``run_*`` function takes scale knobs (defaulting to laptop-scale
  values recorded in EXPERIMENTS.md) and returns structured rows;
* a ``format_*`` function renders those rows as the table/series the paper
  prints, so benches can ``print()`` a directly comparable report.

Expensive underlying simulations are memoized per process (several figures
share one run matrix, exactly as the paper derives several figures from
one testbed execution).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence, Tuple

_CACHE: Dict[Tuple, Any] = {}


def cached(key: Tuple, compute: Callable[[], Any]) -> Any:
    """Process-wide memoization for shared simulation runs."""
    if key not in _CACHE:
        _CACHE[key] = compute()
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def format_table(rows: Sequence[dict], columns: Sequence[str], *, title: str = "") -> str:
    """Minimal fixed-width table renderer for bench reports."""
    if not rows:
        return f"{title}\n(no rows)"
    widths = {
        col: max(len(col), max(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01 or abs(value) >= 100000:
            return f"{value:.2e}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


# ----------------------------------------------------------------------
# Default laptop-scale parameters (the paper-scale values in comments).

TRACE_USERS = 8          # paper: 83 active users
TRACE_DAYS = 1.0         # paper: 7 days (perf) / 7 days (availability)
BALANCE_TRACE_DAYS = 4.0  # paper: 6+ days
AVAIL_TRACE_DAYS = 2.0
NODE_SIZES = (60, 120, 240)   # paper: 200, 500, 1000 virtual nodes
AVAIL_NODES = 80               # paper: 247 PlanetLab nodes
BALANCE_NODES = 48
BANDWIDTHS_KBPS = (1500.0, 384.0)
INTERS = (1.0, 5.0, 15.0, 60.0)  # paper: 1 s, 5 s, 15 s, 1 min
TRIALS = 3                      # paper: 5 trials
PERF_WINDOWS = 3                # paper: 8 fifteen-minute windows
SEED = 11
