"""Ablation studies for D2's individual design choices.

The paper motivates each mechanism but only evaluates the assembled
system; these drivers isolate them:

* **pointers** — migration volume with vs without block pointers under a
  hot insert followed by churn (quantifying Figure 6's cascade);
* **threshold** — the balance quality / movement trade-off across the
  Karger–Ruhl threshold ``t`` (the paper fixes t = 4);
* **cache TTL** — lookup-cache miss rate vs entry lifetime under ring
  churn (the paper fixes 1.25 h from PlanetLab's leave/join rate);
* **replicas** — task availability as ``r`` grows (the paper notes that
  with r = 4 D2 had no failures at all while traditional still did).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.core.config import D2Config
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.load_balance import KargerRuhlBalancer, normalized_std_dev
from repro.dht.ring import Ring
from repro.experiments import common
from repro.experiments.workload_cache import harvard_trace
from repro.fs.fslayer import DhtFileSystem, apply_ops
from repro.fs.keyschemes import make_scheme
from repro.sim.engine import Simulator
from repro.store.migration import StorageCoordinator


def _hot_insert_system(use_pointers: bool, *, n_nodes: int, files: int,
                       file_size: int, seed: int):
    rng = random.Random(seed)
    ring = Ring()
    for i, node_id in enumerate(random_node_ids(n_nodes, rng)):
        ring.join(f"n{i:03d}", node_id)
    sim = Simulator()
    store = StorageCoordinator(
        ring, sim, use_pointers=use_pointers, pointer_stabilization_time=3600.0
    )
    fs = DhtFileSystem(make_scheme("d2", "ablation"))
    apply_ops(store, fs.format())
    fs.makedirs("/hot")
    for i in range(files):
        apply_ops(store, fs.create(f"/hot/part{i:05d}", size=file_size))
    return ring, sim, store, fs, rng


def run_pointer_ablation(
    *,
    n_nodes: int = 32,
    files: int = 300,
    file_size: int = 64_000,
    churn_rounds: int = 3,
    seed: int = common.SEED,
) -> List[dict]:
    """Hot insert + churn, with and without pointers.

    Returns rows with inserted bytes, migrated bytes, and the migration
    multiplier (migrated / inserted).  Without pointers the cascade of
    splits moves bytes repeatedly; with pointers each byte moves at most
    once per net placement change.
    """
    rows = []
    for use_pointers in (True, False):
        ring, sim, store, fs, rng = _hot_insert_system(
            use_pointers, n_nodes=n_nodes, files=files, file_size=file_size,
            seed=seed,
        )
        balancer = KargerRuhlBalancer(ring, store, rng=random.Random(seed + 1))
        balancer.balance_until_stable(max_rounds=200)
        # Churn: rewrite and extend parts of the dataset, re-balancing
        # after each burst, so deferred pointers see ongoing activity.
        for burst in range(churn_rounds):
            for i in range(0, files, 7):
                apply_ops(store, fs.write(f"/hot/part{i:05d}", 0, 16_000))
            balancer.balance_until_stable(max_rounds=100)
        sim.run()  # stabilize all pointers
        inserted = store.ledger.total_written
        rows.append(
            {
                "pointers": "on" if use_pointers else "off",
                "written_mb": inserted / 1e6,
                "migrated_mb": store.ledger.total_migrated / 1e6,
                "migration_multiplier": store.ledger.total_migrated / inserted,
                "moves": store.moves_executed,
                "final_nsd": normalized_std_dev(
                    list(store.primary_loads().values())
                ),
            }
        )
    return rows


def run_threshold_ablation(
    *,
    thresholds: Sequence[float] = (2.5, 4.0, 8.0),
    n_nodes: int = 32,
    files: int = 300,
    file_size: int = 64_000,
    seed: int = common.SEED,
) -> List[dict]:
    """Converged imbalance and movement cost across the threshold t.

    Lower t chases balance harder (more moves, flatter loads); higher t
    tolerates imbalance to save migration.  t = 4 is the paper's choice
    (and the smallest with a convergence proof).
    """
    rows = []
    for threshold in thresholds:
        ring, sim, store, fs, rng = _hot_insert_system(
            True, n_nodes=n_nodes, files=files, file_size=file_size, seed=seed
        )
        balancer = KargerRuhlBalancer(
            ring, store, threshold=threshold, rng=random.Random(seed + 1)
        )
        rounds = balancer.balance_until_stable(max_rounds=300)
        sim.run()
        loads = list(store.primary_loads().values())
        mean = sum(loads) / len(loads)
        rows.append(
            {
                "threshold": threshold,
                "rounds": rounds,
                "moves": store.moves_executed,
                "migrated_mb": store.ledger.total_migrated / 1e6,
                "final_nsd": normalized_std_dev(loads),
                "max_over_mean": max(loads) / mean if mean else 0.0,
            }
        )
    return rows


def run_cache_ttl_ablation(
    *,
    ttls: Sequence[float] = (60.0, 4500.0, 1e9),
    n_nodes: int = 48,
    accesses: int = 4000,
    churn_interval: float = 600.0,
    seed: int = common.SEED,
) -> List[dict]:
    """Lookup-cache miss rate vs TTL under ring churn.

    A client walks a user's working set (locality-ordered keys) while the
    ring occasionally changes (a random node re-joins elsewhere, as the
    balancer or churn would cause).  Short TTLs discard still-valid
    entries; infinite TTLs accumulate stale entries whose misdirected
    requests cost a fallback lookup.  The paper's 1.25 h sits between.
    """
    from repro.core.lookup_cache import LookupCache

    rows = []
    for ttl in ttls:
        rng = random.Random(seed)
        ring = Ring()
        for i, node_id in enumerate(random_node_ids(n_nodes, rng)):
            ring.join(f"n{i:03d}", node_id)
        sim_store = StorageCoordinator(ring, Simulator())
        fs = DhtFileSystem(make_scheme("d2", "ttl"))
        apply_ops(sim_store, fs.format())
        fs.makedirs("/ws")
        for i in range(50):
            apply_ops(sim_store, fs.create(f"/ws/f{i:03d}", size=40_000))
        keys = []
        for i in range(50):
            keys.extend(key for key, _ in [
                (fs.scheme.file_block_key(fs.namespace.resolve_file(f"/ws/f{i:03d}"), n, 1), 0)
                for n in range(5)
            ])
        cache = LookupCache(ttl=ttl)
        stale_penalties = 0
        now = 0.0
        access_gap = 8.0  # ~9 simulated hours over the access budget
        last_churn = 0.0
        for access in range(accesses):
            now += access_gap
            if now - last_churn >= churn_interval:
                last_churn = now
                # Half the churn hits the working set's own owners — that
                # is what load balancing does to a popular arc — and half
                # is background ring churn.
                if rng.random() < 0.5:
                    mover = ring.successor(keys[rng.randrange(len(keys))])
                else:
                    mover = f"n{rng.randrange(n_nodes):03d}"
                target = ring.free_position_at(rng.randrange(1 << 512))
                if target != ring.position_of(mover):
                    ring.change_position(mover, target)
            key = keys[rng.randrange(len(keys))]
            owner = ring.successor(key)
            cached = cache.probe(key, now)
            if cached is None:
                lo, hi = ring.range_of(owner)
                cache.insert(lo, hi, owner, now)
            elif cached != owner:
                stale_penalties += 1
                cache.invalidate(key)
                lo, hi = ring.range_of(owner)
                cache.insert(lo, hi, owner, now)
        stats = cache.stats
        rows.append(
            {
                "ttl_s": ttl,
                "miss_rate": stats.miss_rate,
                "stale_redirects": stale_penalties,
                "total_lookup_cost": stats.misses + stale_penalties,
            }
        )
    return rows


def run_replica_ablation(
    *,
    replica_counts: Sequence[int] = (2, 3, 4),
    systems: Sequence[str] = ("d2", "traditional"),
    n_nodes: int = 48,
    users: int = 6,
    days: float = 1.5,
    seed: int = common.SEED,
) -> List[dict]:
    """Task unavailability as the replication factor grows.

    The paper: "Increasing the number of replicas benefits D2 more; with 4
    replicas, D2 had no failures in all 5 trials while the traditional
    system had at least 3e-6 of its tasks fail."
    """
    from repro.analysis.availability import (
        matching_failure_trace,
        run_availability_trial,
    )
    from repro.experiments.availability_runs import harsh_failure_config

    trace = harvard_trace(users=users, days=days, seed=seed)
    failures = matching_failure_trace(
        n_nodes, random.Random(seed + 2), harsh_failure_config(days)
    )
    rows = []
    for r in replica_counts:
        row: Dict[str, object] = {"replicas": r}
        for system in systems:
            result = run_availability_trial(
                trace,
                failures,
                system,
                inter=5.0,
                config=D2Config(replica_count=r),
                regeneration_delay=2 * 3600.0,
            )
            row[f"unavail_{system}"] = result.unavailability
        rows.append(row)
    return rows


def run_sampling_ablation(
    *,
    n_nodes: int = 32,
    files: int = 300,
    file_size: int = 64_000,
    seed: int = common.SEED,
) -> List[dict]:
    """Global-membership vs Mercury random-walk sampling in the balancer.

    The simulation shortcut (sampling the membership list) and the
    decentralized protocol a real node can execute (Metropolis-corrected
    random walks, :mod:`repro.dht.sampling`) must converge to comparable
    balance at comparable cost — otherwise the simulated results would not
    transfer to a deployment.
    """
    rows = []
    for sampling in ("membership", "random-walk"):
        ring, sim, store, fs, rng = _hot_insert_system(
            True, n_nodes=n_nodes, files=files, file_size=file_size, seed=seed
        )
        balancer = KargerRuhlBalancer(
            ring, store, rng=random.Random(seed + 1), sampling=sampling
        )
        rounds = balancer.balance_until_stable(max_rounds=300)
        sim.run()
        loads = list(store.primary_loads().values())
        mean = sum(loads) / len(loads)
        rows.append(
            {
                "sampling": sampling,
                "rounds": rounds,
                "moves": store.moves_executed,
                "final_nsd": normalized_std_dev(loads),
                "max_over_mean": max(loads) / mean if mean else 0.0,
            }
        )
    return rows
