"""Figure 8: per-user unavailability, ranked (inter = 5 s).

Paper shape: under D2, failures concentrate in *fewer* users (most users
see none) while the traditional DHT spreads failures across many users —
the availability-isolation property of defragmentation (Section 4.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.experiments import common
from repro.experiments.availability_runs import availability_matrix


def run_fig8(inter: float = 5.0, **kwargs) -> List[dict]:
    kwargs.setdefault("inters", (inter,))
    matrix = availability_matrix(**kwargs)
    # Average each user's unavailability across trials, then rank.
    per_system: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    for (system, i, _trial), result in matrix.items():
        if i != inter:
            continue
        for user, value in result.per_user_unavailability().items():
            per_system[system][user].append(value)
    rows: List[dict] = []
    for system, users in sorted(per_system.items()):
        series = sorted(
            ((sum(v) / len(v)) for v in users.values()), reverse=True
        )
        affected = sum(1 for v in series if v > 0)
        for rank, value in enumerate(series, start=1):
            if value <= 0:
                continue
            rows.append(
                {"system": system, "rank": rank, "unavailability": value}
            )
        rows.append(
            {
                "system": system,
                "rank": "affected-users",
                "unavailability": affected,
            }
        )
    return rows


def format_fig8(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["system", "rank", "unavailability"],
        title="Figure 8: per-user unavailability, ranked (users with zero omitted)",
    )


if __name__ == "__main__":
    print(format_fig8(run_fig8()))
