"""The scale matrix: ``python -m repro scale`` and ``BENCH_scale.json``.

Runs the million-user scale cells (:mod:`repro.analysis.scale`) over a
node-count × user-multiplier grid and appends one labelled run to the
``BENCH_scale.json`` trajectory file, so engine throughput and peak RSS
are tracked PR-over-PR the way the figure rows track accuracy.

Unlike the figure matrices these cells *time themselves*, so they always
run fresh: the disk result-cache is explicitly disabled (a cached
wall-clock number would report the machine state of some earlier run).
The deterministic work fingerprints (op counts, hop totals, owner
checksums) are still byte-identical between serial and ``--jobs N``
runs — CI's ``scale-smoke`` job asserts exactly that.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — trajectory file path (default
  ``BENCH_scale.json`` in the current directory).
* ``REPRO_SCALE_LABEL`` — label recorded for this run (default
  ``local``).
* ``REPRO_SCALE_EXPORT_DIR`` — when set, read cells stream per-window
  metrics rows and finished spans to JSONL files under this directory.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.scale import ScaleCellResult
from repro.experiments import common
from repro.runner import RunCache, run_cells

BENCH_ENV = "REPRO_BENCH_SCALE"
LABEL_ENV = "REPRO_SCALE_LABEL"
DEFAULT_BENCH_PATH = "BENCH_scale.json"
BENCH_SCHEMA = 1

#: Per-run-entry schema version.  v1 entries predate versioning (the
#: committed pr7/pr8 runs) and are stamped by :func:`migrate_run` on
#: load; v2 read cells carry ``streamed_health`` (the health-export row
#: count added with the sim-time health monitor).
RUN_SCHEMA = 2

#: Default grid: routing throughput at 10^3 and 10^4 nodes, plus one
#: 10^5-user read replay on a 10^3-node deployment (image replicated
#: from a 250-node base, per Section 9.1).
ROUTING_NODES: Tuple[int, ...] = (1000, 10000)
ROUTING_OPS = 20000
ROUTING_BATCH = 4096
ROUTING_COLD_OPS = 2000
READ_CELLS: Tuple[Tuple[int, int], ...] = ((1000, 100000),)
READ_BASE_SIZE = 250
READ_OPS_PER_USER = 10
READ_WINDOW = 8192


def scale_cells(
    *,
    routing_nodes: Sequence[int] = ROUTING_NODES,
    routing_ops: int = ROUTING_OPS,
    routing_batch: int = ROUTING_BATCH,
    routing_cold_ops: int = ROUTING_COLD_OPS,
    read_cells: Sequence[Tuple[int, int]] = READ_CELLS,
    read_base_size: int = READ_BASE_SIZE,
    read_ops_per_user: int = READ_OPS_PER_USER,
    read_window: int = READ_WINDOW,
    system: str = "d2",
    users: int = common.TRACE_USERS,
    days: float = 0.25,
    seed: int = common.SEED,
) -> List[Dict[str, Any]]:
    """The parameter bundles of one scale run (all plain picklable dicts)."""
    cells: List[Dict[str, Any]] = []
    for n_nodes in routing_nodes:
        cells.append(
            {
                "cell": "routing",
                "n_nodes": n_nodes,
                "ops": routing_ops,
                "batch": routing_batch,
                "cold_ops": routing_cold_ops,
                "seed": seed,
            }
        )
    for n_nodes, target_users in read_cells:
        cells.append(
            {
                "cell": "read",
                "system": system,
                "n_nodes": n_nodes,
                "users": target_users,
                "ops_per_user": read_ops_per_user,
                "window": read_window,
                "base_users": users,
                "days": days,
                "base_size": read_base_size,
                "seed": seed,
            }
        )
    return cells


def run_scale(
    *, cells: Optional[Sequence[Dict[str, Any]]] = None, jobs: Optional[int] = None
) -> List[ScaleCellResult]:
    """Run the scale matrix, always fresh (disk cache disabled)."""
    bundles = list(cells) if cells is not None else scale_cells()
    return run_cells(
        "scale",
        bundles,
        jobs=jobs,
        cache=RunCache(None),
        metrics_name="runner_scale",
    )


def format_scale(results: Sequence[ScaleCellResult]) -> str:
    rows = []
    for result in results:
        row = result.row()
        row["rss_growth_kb"] = result.rss_growth_kb
        del row["rss_curve_kb"]
        rows.append(row)
    return common.format_table(
        rows,
        [
            "cell", "n_nodes", "users", "ops", "ops_per_sec", "speedup_vs_cold",
            "hops", "fetches", "windows", "peak_rss_kb", "rss_growth_kb",
            "checksum",
        ],
        title="Scale matrix: engine throughput and memory",
    )


def bench_path(explicit: Optional[str] = None) -> str:
    if explicit:
        return explicit
    return os.environ.get(BENCH_ENV, "").strip() or DEFAULT_BENCH_PATH


def migrate_run(run: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp an unversioned run entry as schema v1 (pre-versioning).

    The committed pr7/pr8 runs predate the per-entry ``schema`` field;
    loading stamps them ``1`` so every entry downstream tooling sees is
    explicitly versioned.  Already-versioned entries pass through
    untouched.  Returns the (possibly new) entry.
    """
    if "schema" not in run:
        run = dict(run, schema=1)
    return run


def validate_run(run: Any, index: int) -> List[str]:
    """Structural problems with one (already migrated) run entry."""
    problems: List[str] = []
    where = f"runs[{index}]"
    if not isinstance(run, dict):
        return [f"{where}: not an object"]
    schema = run.get("schema")
    if not isinstance(schema, int) or not 1 <= schema <= RUN_SCHEMA:
        problems.append(
            f"{where}: schema {schema!r} not an int in [1, {RUN_SCHEMA}]"
        )
    if not isinstance(run.get("label"), str) or not run["label"]:
        problems.append(f"{where}: missing/empty label")
    cells = run.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append(f"{where}: cells must be a non-empty list")
    else:
        for j, cell in enumerate(cells):
            if not isinstance(cell, dict) or "cell" not in cell:
                problems.append(f"{where}.cells[{j}]: not a cell row")
    return problems


def load_trajectory(path: str) -> Dict[str, Any]:
    """Load, migrate, and validate a ``BENCH_scale.json`` document.

    Unversioned run entries are migrated in memory (stamped schema 1);
    a document that still fails validation raises ``ValueError`` naming
    every problem, so a corrupt trajectory is an error rather than a
    silent reset.
    """
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict) or loaded.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: document schema {loaded.get('schema')!r} "
            f"!= {BENCH_SCHEMA}" if isinstance(loaded, dict)
            else f"{path}: not a JSON object"
        )
    runs = loaded.get("runs")
    if not isinstance(runs, list):
        raise ValueError(f"{path}: runs must be a list")
    loaded["runs"] = [
        migrate_run(run) if isinstance(run, dict) else run for run in runs
    ]
    problems: List[str] = []
    for index, run in enumerate(loaded["runs"]):
        problems.extend(validate_run(run, index))
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return loaded


def record_trajectory(
    results: Sequence[ScaleCellResult],
    *,
    path: Optional[str] = None,
    label: Optional[str] = None,
) -> str:
    """Append one labelled run to the ``BENCH_scale.json`` trajectory.

    The file holds every recorded run in order, so a sequence of PRs
    leaves a throughput/memory curve rather than a single overwritten
    number.  Existing entries are validated (and unversioned ones
    migrated to an explicit ``schema``) before the new run — stamped
    :data:`RUN_SCHEMA` — is appended.  Returns the path written.
    """
    target = bench_path(path)
    label = label or os.environ.get(LABEL_ENV, "").strip() or "local"
    document: Dict[str, Any] = {"schema": BENCH_SCHEMA, "runs": []}
    if os.path.exists(target):
        document = load_trajectory(target)
    document["runs"].append(
        {
            "label": label,
            "schema": RUN_SCHEMA,
            "cells": [result.row() for result in results],
        }
    )
    with open(target, "w", encoding="utf-8") as handle:
        # The $REPRO_SCALE_LABEL-derived run label is provenance metadata
        # (who recorded this run), never an input to any comparison.
        # lint: allow=DET004
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
