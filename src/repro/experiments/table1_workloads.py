"""Table 1: workloads analyzed (duration, accesses, active data).

Paper row shapes (absolute numbers are testbed-scale; ours are generated
at laptop scale — what must hold is a week-long span, access counts far
exceeding file counts, and tens of GB→tens of MB of active data scaling):

=========  ========  ========  ===========
Workload   Duration  Accesses  Active Data
HP         1 week    238M      40 GB
Harvard    1 week    60M       83 GB
Web        1 week    47M       93 GB
=========  ========  ========  ===========
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.workload_cache import harvard_trace, hp_trace, web_trace


def run_table1(users: int = common.TRACE_USERS, days: float = common.TRACE_DAYS,
               seed: int = common.SEED) -> List[dict]:
    rows = []
    for trace in (
        hp_trace(days=days, seed=seed),
        harvard_trace(users=users, days=days, seed=seed),
        web_trace(days=days, seed=seed),
    ):
        stats = trace.stats()
        rows.append(
            {
                "workload": stats["workload"],
                "duration_days": stats["duration_days"],
                "accesses": stats["accesses"],
                "users": stats["users"],
                "active_mb": stats["active_bytes"] / 1e6,
            }
        )
    return rows


def format_table1(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["workload", "duration_days", "accesses", "users", "active_mb"],
        title="Table 1: workloads analyzed (generated, laptop scale)",
    )


if __name__ == "__main__":
    print(format_table1(run_table1()))
