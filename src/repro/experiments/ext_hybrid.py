"""Extension experiment: hybrid replica placement (Section 11 future work).

Compares three placements on one D2 deployment's keys:

* ``locality`` — D2's r consecutive successors;
* ``hybrid``   — locality primary + hashed secondaries (this repo's
  implementation of the paper's proposal);
* ``traditional`` — what fully hashed per-block placement would give, as
  the reference point.

Three questions, matching the paper's motivations:

1. **capture** — what fraction of a victim directory's blocks does an
   adversary controlling ``r`` consecutive ring positions fully own?
2. **fanout** — how many distinct uploaders can a bulk read of a very
   large file use?
3. **correlated-failure availability** — if a contiguous run of nodes
   fails (a rack/site outage under locality-correlated placement), what
   fraction of a user's blocks stays readable?
"""

from __future__ import annotations

import random
from typing import List

from repro.core.hybrid import (
    arc_capture_exposure,
    parallel_read_fanout,
    placement_holders,
)
from repro.core.system import build_deployment
from repro.experiments import common
from repro.fs.blocks import BLOCK_SIZE


def run_hybrid_extension(
    *,
    n_nodes: int = 64,
    victim_files: int = 20,
    big_file_blocks: int = 64,
    replicas: int = 3,
    seed: int = common.SEED,
) -> List[dict]:
    rng = random.Random(seed)
    deployment = build_deployment("d2", n_nodes, seed=seed)
    deployment.bootstrap_volume()
    deployment.apply_fs_ops(deployment.fs.makedirs("/victim"))
    for i in range(victim_files):
        deployment.apply_fs_ops(
            deployment.fs.create(f"/victim/doc{i:03d}", size=4 * BLOCK_SIZE)
        )
    deployment.stabilize()
    # The large file is written *after* balancing converges: until probes
    # catch up it sits on a single replica group — exactly the situation
    # the paper's Section 9.3/11 discussion worries about.
    deployment.apply_fs_ops(
        deployment.fs.create("/bigfile.bin", size=big_file_blocks * BLOCK_SIZE)
    )

    victim_keys = []
    for i in range(victim_files):
        victim_keys.extend(
            key for key, _ in deployment.read_fetches(f"/victim/doc{i:03d}")
        )
    big_keys = [key for key, _ in deployment.read_fetches("/bigfile.bin")]
    ring = deployment.ring

    rows: List[dict] = []
    for placement in ("locality", "hybrid", "hybrid-position"):
        capture = arc_capture_exposure(
            ring,
            victim_keys,
            replicas,
            placement=placement,
            arc_nodes=replicas,
            trials=150,
            rng=random.Random(seed + 1),
        )
        fanout = parallel_read_fanout(ring, big_keys, replicas, placement=placement)
        # Correlated outage: a random contiguous quarter of the ring fails.
        names = list(ring.names())
        survived = 0.0
        trials = 100
        for _ in range(trials):
            start = rng.randrange(len(names))
            down = {names[(start + i) % len(names)] for i in range(len(names) // 4)}
            alive = set(names) - down
            readable = 0
            for key in victim_keys:
                if any(h in alive
                       for h in placement_holders(ring, key, replicas, placement)):
                    readable += 1
            survived += readable / len(victim_keys)
        rows.append(
            {
                "placement": placement,
                "captured_fraction": capture,
                "bulk_read_fanout": fanout,
                "bulk_read_blocks": len(big_keys),
                "readable_under_arc_outage": survived / trials,
            }
        )
    return rows


def format_hybrid(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        [
            "placement",
            "captured_fraction",
            "readable_under_arc_outage",
            "bulk_read_fanout",
            "bulk_read_blocks",
        ],
        title=(
            "Extension: hybrid replica placement "
            "(adversarial capture / arc outage / bulk-read parallelism)"
        ),
    )


if __name__ == "__main__":
    print(format_hybrid(run_hybrid_extension()))
