"""Figure 9: DHT lookup messages per node vs system size.

Paper shape: lookup traffic per node *increases* with system size for the
traditional DHT (its cache miss rate grows with n), *decreases* for D2 and
traditional-file (miss rates ~independent of n, denominator grows); at the
largest size D2 sends <1/20 of traditional's messages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import common
from repro.experiments.perf_runs import emit_performance_metrics, performance_matrix


def run_fig9(*, metrics_dir: Optional[str] = None, **kwargs) -> List[dict]:
    matrix = performance_matrix(**kwargs)
    rows: List[dict] = []
    sizes = sorted({k[2] for k in matrix})
    systems = sorted({k[0] for k in matrix})
    for mode in ("seq", "para"):
        for n_nodes in sizes:
            row = {"mode": mode, "n_nodes": n_nodes}
            for system in systems:
                result = matrix.get((system, mode, n_nodes, 1500.0))
                if result is not None:
                    row[f"msgs_per_node_{system}"] = result.messages_per_node
            rows.append(row)
    emit_performance_metrics("fig9", matrix, kwargs, metrics_dir)
    return rows


def format_fig9(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["mode", "n_nodes", "msgs_per_node_traditional",
         "msgs_per_node_traditional-file", "msgs_per_node_d2"],
        title="Figure 9: lookup messages per node vs system size",
    )


if __name__ == "__main__":
    print(format_fig9(run_fig9()))
