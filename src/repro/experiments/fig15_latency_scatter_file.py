"""Figure 15: access-group latencies, D2 vs traditional-file (scatter).

Paper shape: like Figure 14 — the mass sits above the diagonal, and no
slow (>5 s) group is much faster under traditional-file.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.fig14_latency_scatter import run_fig14, scatter_points


def run_fig15(**kwargs) -> List[dict]:
    return run_fig14(baseline="traditional-file", **kwargs)


def scatter_points_file(mode: str = "seq", **kwargs) -> List[dict]:
    return scatter_points(baseline="traditional-file", mode=mode, **kwargs)


def format_fig15(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["mode", "n_nodes", "groups", "faster_in_d2", "fraction_above_diagonal",
         "slow_groups", "slow_groups_d2_wins"],
        title="Figure 15: access-group latency scatter summary, D2 vs traditional-file",
    )


if __name__ == "__main__":
    print(format_fig15(run_fig15()))
