"""Figure 11: mean speedup of D2 over the traditional-file DHT.

Paper shape: seq speedup similar to the traditional comparison at small
sizes but *not* growing with system size (traditional-file's cache miss
rate is size-stable); para speedup over traditional-file *exceeds* the
speedup over traditional at the smallest size; D2 wins consistently.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.fig10_speedup import run_fig10


def run_fig11(**kwargs) -> List[dict]:
    return run_fig10(baseline="traditional-file", **kwargs)


def format_fig11(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["bandwidth_kbps", "mode", "n_nodes", "speedup", "users_above_1"],
        title="Figure 11: speedup of D2 over the traditional-file DHT",
    )


if __name__ == "__main__":
    print(format_fig11(run_fig11()))
