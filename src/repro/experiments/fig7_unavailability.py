"""Figure 7: task unavailability vs *inter*, per system, over trials.

Paper shape: D2 roughly an order of magnitude below the traditional DHT at
every *inter* (average, max, and min over trials), with several D2 trials
showing *no* failures at all; traditional-file sits between the two.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.experiments import common
from repro.experiments.availability_runs import availability_matrix


def run_fig7(**kwargs) -> List[dict]:
    matrix = availability_matrix(**kwargs)
    grouped: Dict[tuple, List[float]] = defaultdict(list)
    for (system, inter, _trial), result in matrix.items():
        grouped[(system, inter)].append(result.unavailability)
    rows = []
    for (system, inter), values in sorted(grouped.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append(
            {
                "inter_s": inter,
                "system": system,
                "mean_unavailability": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "zero_trials": sum(1 for v in values if v == 0.0),
                "trials": len(values),
            }
        )
    return rows


def format_fig7(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["inter_s", "system", "mean_unavailability", "min", "max", "zero_trials", "trials"],
        title="Figure 7: task unavailability while varying inter",
    )


if __name__ == "__main__":
    print(format_fig7(run_fig7()))
