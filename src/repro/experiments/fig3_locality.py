"""Figure 3: mean nodes accessed per user-hour, normalized vs traditional.

Paper shape: ~2 orders of magnitude between *traditional* and
*lower-bound*; *ordered* (name-space keys) within ~10x of traditional's
nodes count (i.e., ~0.1 normalized) and within an order of magnitude of the
bound, for all three workloads (Web somewhat farther from the bound).

Scaling note: the paper stores 250 MB (32,000 blocks) per node; at our
trace sizes that would collapse everything onto one node, so the driver
shrinks ``blocks_per_node`` proportionally (recorded in the output) while
keeping the three scenarios' *relative* standings — the quantity Figure 3
actually plots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.locality import analyze_locality
from repro.experiments import common
from repro.experiments.workload_cache import harvard_trace, hp_trace, web_trace


def run_fig3(
    *,
    blocks_per_node: Optional[int] = None,
    users: int = common.TRACE_USERS,
    days: float = common.TRACE_DAYS,
    seed: int = common.SEED,
) -> List[dict]:
    rows: List[dict] = []
    for trace in (
        hp_trace(days=days, seed=seed),
        harvard_trace(users=users, days=days, seed=seed),
        web_trace(days=days, seed=seed),
    ):
        bpn = blocks_per_node
        if bpn is None:
            # Aim for ~50+ nodes so scenario differences are visible.
            from repro.analysis.locality import trace_block_accesses

            universe = set()
            for entries in trace_block_accesses(trace).values():
                universe.update(block for _, block in entries)
            bpn = max(16, len(universe) // 64)
        result = analyze_locality(trace, blocks_per_node=bpn)
        for row in result.rows():
            row["blocks_per_node"] = bpn
            row["n_nodes"] = result.n_nodes
            rows.append(row)
    return rows


def format_fig3(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["workload", "scenario", "nodes_per_user_hour", "normalized", "n_nodes"],
        title="Figure 3: mean nodes accessed per user-hour (normalized vs traditional)",
    )


if __name__ == "__main__":
    print(format_fig3(run_fig3()))
