"""Figure 16: storage load imbalance over time (Harvard workload).

Paper shape: normalized stddev ordering traditional-file >> traditional >
D2 ≈ Traditional+Merc, with short D2 spikes after very large file inserts
that balancing quickly flattens; D2's max node load ~1.6x mean (traditional
~2.4x) and never above the t = 4 bound.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import common
from repro.experiments.balance_runs import harvard_balance_matrix


def _emit_metrics(matrix, params, metrics_dir: Optional[str]) -> None:
    directory = common.metrics_out_dir(metrics_dir)
    if not directory:
        return
    runs = [
        common.labeled_run({"system": system}, result.metrics)
        for system, result in sorted(matrix.items())
        if result.metrics is not None
    ]
    common.emit_metrics_report("fig16", runs, params, directory)


def run_fig16(*, metrics_dir: Optional[str] = None, **kwargs) -> List[dict]:
    matrix = harvard_balance_matrix(**kwargs)
    _emit_metrics(matrix, kwargs, metrics_dir)
    rows: List[dict] = []
    for system, result in matrix.items():
        for sample in result.samples:
            rows.append(
                {
                    "system": system,
                    "day": sample.time / 86400.0,
                    "nsd": sample.nsd,
                    "max_over_mean": sample.max_over_mean,
                }
            )
    return rows


def summarize_fig16(**kwargs) -> List[dict]:
    matrix = harvard_balance_matrix(**kwargs)
    _emit_metrics(matrix, kwargs, None)  # honors $REPRO_METRICS_DIR
    return [
        {
            "system": system,
            "mean_nsd": result.mean_nsd(),
            "mean_max_over_mean": result.mean_max_over_mean(),
            "moves": result.moves,
        }
        for system, result in matrix.items()
    ]


def format_fig16(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["system", "mean_nsd", "mean_max_over_mean", "moves"],
        title="Figure 16: load imbalance over time with Harvard (summary)",
    )


def plot_fig16(**kwargs) -> str:
    """ASCII rendering of the imbalance-over-time curves."""
    from repro.analysis.plotting import ascii_timeseries, timeseries_from_samples

    matrix = harvard_balance_matrix(**kwargs)
    series = {
        system: timeseries_from_samples(result.samples, lambda s: s.nsd)
        for system, result in matrix.items()
    }
    return ascii_timeseries(
        series,
        x_label="days",
        y_label="nsd",
        title="Figure 16: load imbalance over time (Harvard)",
    )


if __name__ == "__main__":
    print(format_fig16(summarize_fig16()))
    print()
    print(plot_fig16())
