"""Figure 10: mean speedup of D2 over the traditional DHT.

Paper shape: seq speedup always > 1 and growing with system size (≥ 1.9x
at 1000 nodes); para speedup > 1 at 1500 kbps, but *below* 1 at 384 kbps
for the smaller sizes (the parallelism-vs-locality crossover), recovering
above 1 at the largest size.
"""

from __future__ import annotations

from typing import List

from repro.analysis.performance import compare
from repro.experiments import common
from repro.experiments.perf_runs import performance_matrix


def run_fig10(baseline: str = "traditional", **kwargs) -> List[dict]:
    matrix = performance_matrix(**kwargs)
    rows: List[dict] = []
    sizes = sorted({k[2] for k in matrix})
    bandwidths = sorted({k[3] for k in matrix}, reverse=True)
    for bandwidth in bandwidths:
        for mode in ("seq", "para"):
            for n_nodes in sizes:
                base = matrix.get((baseline, mode, n_nodes, bandwidth))
                fast = matrix.get(("d2", mode, n_nodes, bandwidth))
                if base is None or fast is None:
                    continue
                report = compare(base, fast)
                rows.append(
                    {
                        "bandwidth_kbps": bandwidth,
                        "mode": mode,
                        "n_nodes": n_nodes,
                        "speedup": report.overall,
                        "users_above_1": report.fraction_above_one,
                    }
                )
    return rows


def format_fig10(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["bandwidth_kbps", "mode", "n_nodes", "speedup", "users_above_1"],
        title="Figure 10: speedup of D2 over the traditional DHT",
    )


if __name__ == "__main__":
    print(format_fig10(run_fig10()))
