"""Table 2: mean objects and mean nodes accessed per task.

Paper shape (r = 3, 247 nodes)::

    inter   blocks  files   nodes: block  file  D2
    1 s     63      10      10            6     2
    5 s     91      15      11            8     2
    15 s    128     22      14            10    3
    1 min   237     38      23            16    4

What must hold: blocks >> files per task; nodes(traditional) ≈ saturating
in the tens, nodes(traditional-file) somewhat below it, nodes(D2) a small
constant (2–4), all growing slowly with *inter*.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.experiments.availability_runs import availability_matrix


def run_table2(**kwargs) -> List[dict]:
    matrix = availability_matrix(**kwargs)
    inters = sorted({inter for (_s, inter, _t) in matrix})
    systems = sorted({system for (system, _i, _t) in matrix})
    rows: List[dict] = []
    for inter in inters:
        row: Dict[str, object] = {"inter_s": inter}
        for system in systems:
            results = [r for (s, i, _t), r in matrix.items() if s == system and i == inter]
            row[f"nodes_{system}"] = _mean([r.mean_nodes_per_task for r in results])
            if system == "traditional":
                row["blocks_per_task"] = _mean([r.mean_blocks_per_task for r in results])
                row["files_per_task"] = _mean([r.mean_files_per_task for r in results])
        rows.append(row)
    return rows


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_table2(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        [
            "inter_s",
            "blocks_per_task",
            "files_per_task",
            "nodes_traditional",
            "nodes_traditional-file",
            "nodes_d2",
        ],
        title="Table 2: mean objects and nodes accessed per task",
    )


if __name__ == "__main__":
    print(format_table2(run_table2()))
