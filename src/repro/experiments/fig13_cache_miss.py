"""Figure 13: mean lookup-cache miss rate per scenario.

Paper shape: D2's miss rate ~13% and independent of system size; the
traditional DHT's miss rate ≥ 47% and *growing* with size; the
traditional-file DHT in between and size-stable (a user's file working set
is small).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import common
from repro.experiments.perf_runs import emit_performance_metrics, performance_matrix


def run_fig13(*, metrics_dir: Optional[str] = None, **kwargs) -> List[dict]:
    matrix = performance_matrix(**kwargs)
    rows: List[dict] = []
    sizes = sorted({k[2] for k in matrix})
    systems = sorted({k[0] for k in matrix})
    for mode in ("seq", "para"):
        for n_nodes in sizes:
            row = {"mode": mode, "n_nodes": n_nodes}
            for system in systems:
                result = matrix.get((system, mode, n_nodes, 1500.0))
                if result is not None:
                    row[f"miss_rate_{system}"] = result.mean_miss_rate
            rows.append(row)
    emit_performance_metrics("fig13", matrix, kwargs, metrics_dir)
    return rows


def format_fig13(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["mode", "n_nodes", "miss_rate_traditional",
         "miss_rate_traditional-file", "miss_rate_d2"],
        title="Figure 13: mean lookup cache miss rate",
    )


if __name__ == "__main__":
    print(format_fig13(run_fig13()))
