"""Figure 12: per-user mean speedup, largest size at 1500 kbps.

Paper shape: ~half the users beat the overall mean; a small minority (6 of
83) see a mild slowdown — users whose replicas happen to sit far away —
much smaller in magnitude than the typical speedup.
"""

from __future__ import annotations

from typing import List

from repro.analysis.performance import compare
from repro.experiments import common
from repro.experiments.perf_runs import performance_matrix


def run_fig12(baseline: str = "traditional", **kwargs) -> List[dict]:
    matrix = performance_matrix(**kwargs)
    n_nodes = max(k[2] for k in matrix)
    rows: List[dict] = []
    for mode in ("seq", "para"):
        base = matrix.get((baseline, mode, n_nodes, 1500.0))
        fast = matrix.get(("d2", mode, n_nodes, 1500.0))
        if base is None or fast is None:
            continue
        report = compare(base, fast)
        for rank, (user, speedup) in enumerate(
            sorted(report.per_user.items(), key=lambda kv: kv[1], reverse=True), start=1
        ):
            rows.append(
                {"mode": mode, "rank": rank, "user": user, "speedup": speedup,
                 "n_nodes": n_nodes}
            )
    return rows


def format_fig12(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["mode", "rank", "user", "speedup", "n_nodes"],
        title="Figure 12: per-user mean speedup over the traditional DHT",
    )


if __name__ == "__main__":
    print(format_fig12(run_fig12()))
