"""Extension experiment: request-load balancing via retrieval caches.

Section 6 points out that D2's Mercury-based balancing flattens *storage*
load while request hot spots are handled orthogonally by retrieval caches.
This experiment makes that claim measurable: a Zipf-popular set of files
(one extremely hot) is fetched by many clients, and we compare per-node
service load with and without the retrieval-cache layer.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.system import build_deployment
from repro.experiments import common
from repro.fs.blocks import BLOCK_SIZE
from repro.store.retrieval_cache import RetrievalCacheLayer, replica_only_service


def run_hotspot_extension(
    *,
    n_nodes: int = 48,
    n_files: int = 30,
    n_clients: int = 40,
    requests: int = 6000,
    zipf_s: float = 1.2,
    cache_ttl: float = 300.0,
    seed: int = common.SEED,
) -> List[dict]:
    rng = random.Random(seed)
    deployment = build_deployment("d2", n_nodes, seed=seed)
    deployment.bootstrap_volume()
    deployment.apply_fs_ops(deployment.fs.makedirs("/pub"))
    file_keys = []
    for i in range(n_files):
        deployment.apply_fs_ops(
            deployment.fs.create(f"/pub/item{i:03d}", size=2 * BLOCK_SIZE)
        )
        file_keys.append(
            [key for key, _ in deployment.read_fetches(f"/pub/item{i:03d}")]
        )
    deployment.stabilize()
    # Re-derive keys' owners after balancing (keys themselves are stable).
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(n_files)]
    total = sum(weights)
    weights = [w / total for w in weights]
    clients = [deployment.node_names[rng.randrange(n_nodes)] for _ in range(n_clients)]

    request_stream = []
    now = 0.0
    for _ in range(requests):
        now += rng.expovariate(10.0)  # ~10 requests/sec across the system
        file_index = rng.choices(range(n_files), weights=weights, k=1)[0]
        key = file_keys[file_index][rng.randrange(len(file_keys[file_index]))]
        client = clients[rng.randrange(n_clients)]
        request_stream.append((now, key, client))

    layer = RetrievalCacheLayer(
        deployment.ring,
        replica_count=deployment.config.replica_count,
        cache_ttl=cache_ttl,
        rng=random.Random(seed + 1),
    )
    for when, key, client in request_stream:
        layer.serve(key, client, when)

    baseline = replica_only_service(
        deployment.ring,
        [(key, client) for _, key, client in request_stream],
        replica_count=deployment.config.replica_count,
        rng=random.Random(seed + 1),
    )
    baseline_counts = list(baseline.values())
    base_mean = sum(baseline_counts) / len(baseline_counts)

    return [
        {
            "scheme": "replicas-only",
            "max_over_mean_requests": max(baseline_counts) / base_mean,
            "cache_hit_fraction": 0.0,
            "nodes_serving": sum(1 for c in baseline_counts if c > 0),
        },
        {
            "scheme": "retrieval-caches",
            "max_over_mean_requests": layer.hot_spot_factor(),
            "cache_hit_fraction": layer.stats.cache_fraction,
            "nodes_serving": sum(1 for c in layer.served_counts().values() if c > 0),
        },
    ]


def format_hotspot(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["scheme", "max_over_mean_requests", "cache_hit_fraction", "nodes_serving"],
        title="Extension: request-load balancing under a Zipf hot spot",
    )


if __name__ == "__main__":
    print(format_hotspot(run_hotspot_extension()))
