"""Extension experiment: replication vs erasure coding (Section 3's claim).

The paper asserts that defragmentation's availability advantage is
redundancy-agnostic: whether each block uses r-way replication or an
(m, k) erasure code, tasks that touch 2 groups beat tasks that touch 20.
This experiment replays tasks against a failure trace under both schemes
and both key layouts (D2 vs traditional) at *matched storage cost*:

* replication r = 3      (3.0x storage)
* erasure (6, 2)         (3.0x storage, stronger within-group redundancy)
* erasure (4, 2)         (2.0x storage, i.e. 33% cheaper than replication)
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.availability import matching_failure_trace
from repro.core.system import build_deployment
from repro.experiments import common
from repro.experiments.availability_runs import harsh_failure_config
from repro.experiments.workload_cache import harvard_trace
from repro.store.erasure import ErasureConfig
from repro.workloads.tasks import segment_tasks
from repro.workloads.trace import READ, WRITE


def run_erasure_extension(
    *,
    n_nodes: int = 64,
    users: int = 6,
    days: float = 1.0,
    inter: float = 5.0,
    seed: int = common.SEED,
) -> List[dict]:
    trace = harvard_trace(users=users, days=days, seed=seed)
    failures = matching_failure_trace(
        n_nodes, random.Random(seed + 5), harsh_failure_config(days)
    )
    schemes = [
        ("replication r=3", ErasureConfig.replication(3)),
        ("erasure (6,2)", ErasureConfig(total=6, needed=2)),
        ("erasure (4,2)", ErasureConfig(total=4, needed=2)),
    ]
    rows: List[dict] = []
    for system in ("d2", "traditional"):
        deployment = build_deployment(system, n_nodes, seed=seed)
        deployment.load_initial_image(trace)
        deployment.stabilize()
        deployment.start_periodic_balancing()

        # Replay once, precomputing for every accessed key how many of its
        # first i successors were alive at access time; each scheme is then
        # a pure threshold test on the same numbers.
        max_total = max(config.total for _, config in schemes)
        record_counts = {}
        for record in trace.records:
            deployment.advance_to(record.time)
            outcome = deployment.replay_record(record)
            if outcome.skipped or record.op not in (READ, WRITE):
                continue
            alive = failures.up_set(record.time)
            per_key = []
            for key in outcome.keys:
                holders = deployment.ring.successors(key, max_total)
                up_prefix = []
                up = 0
                for holder in holders:
                    up += holder in alive
                    up_prefix.append(up)
                per_key.append(up_prefix)
            record_counts[id(record)] = per_key
        tasks = segment_tasks(trace, inter)

        for label, config in schemes:
            failed = 0
            for task in tasks:
                ok = True
                for record in task.records:
                    per_key = record_counts.get(id(record))
                    if per_key is None:
                        continue
                    for up_prefix in per_key:
                        index = min(config.total, len(up_prefix)) - 1
                        if up_prefix[index] < config.needed:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    failed += 1
            rows.append(
                {
                    "system": system,
                    "redundancy": label,
                    "storage_overhead": config.storage_overhead,
                    "tasks": len(tasks),
                    "failed": failed,
                    "unavailability": failed / len(tasks) if tasks else 0.0,
                }
            )
    return rows


def format_erasure(rows: List[dict]) -> str:
    return common.format_table(
        rows,
        ["system", "redundancy", "storage_overhead", "tasks", "failed",
         "unavailability"],
        title="Extension: replication vs erasure coding at matched storage cost",
    )


if __name__ == "__main__":
    print(format_erasure(run_erasure_extension()))
