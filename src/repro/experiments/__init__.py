"""Per-figure/table experiment drivers shared by benches and examples."""
