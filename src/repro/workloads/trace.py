"""Trace model: timestamped file-system operations, stats, (de)serialization.

All three workloads the paper analyzes (Table 1) reduce to streams of
timestamped per-user operations; this module defines that common record
format plus the summary statistics the paper reports (duration, access
count, active data volume).

Records are deliberately path-level, not block-level: the same trace is
replayed through each system's file-system layer, which maps it to that
system's keys — exactly how the paper drives its comparison systems from
one trace.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

SECONDS_PER_DAY = 86400.0

READ = "read"
WRITE = "write"
CREATE = "create"
DELETE = "delete"
MKDIR = "mkdir"
RENAME = "rename"

OPS = (READ, WRITE, CREATE, DELETE, MKDIR, RENAME)


@dataclass(frozen=True)
class TraceRecord:
    """One file-system operation by one user.

    ``offset``/``length`` apply to reads and writes; ``size`` to creates;
    ``dst_path`` to renames.
    """

    time: float
    user: str
    op: str
    path: str
    offset: int = 0
    length: int = 0
    size: int = 0
    dst_path: str = ""

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}")
        if self.time < 0:
            raise ValueError("record time must be non-negative")


@dataclass
class Trace:
    """An ordered stream of records plus the initial file-system image."""

    name: str
    records: List[TraceRecord]
    initial_dirs: List[str] = field(default_factory=list)
    initial_files: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda r: r.time)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].time - self.records[0].time

    def users(self) -> List[str]:
        return sorted({r.user for r in self.records})

    def slice(self, start: float, end: float) -> "Trace":
        """Records with ``start <= time < end`` (shared initial image)."""
        subset = [r for r in self.records if start <= r.time < end]
        return Trace(
            name=f"{self.name}[{start:.0f}:{end:.0f}]",
            records=subset,
            initial_dirs=self.initial_dirs,
            initial_files=self.initial_files,
        )

    def per_user(self) -> Dict[str, List[TraceRecord]]:
        by_user: Dict[str, List[TraceRecord]] = {}
        for record in self.records:
            by_user.setdefault(record.user, []).append(record)
        return by_user

    # ------------------------------------------------------------------
    # Table-1 style statistics

    def stats(self) -> Dict[str, object]:
        """The workload summary row reported in Table 1."""
        accesses = sum(1 for r in self.records if r.op in (READ, WRITE))
        sizes: Dict[str, int] = dict(self.initial_files)
        active_paths: Set[str] = set()
        for record in self.records:
            if record.op in (READ, WRITE, CREATE):
                active_paths.add(record.path)
            if record.op == CREATE:
                sizes[record.path] = max(sizes.get(record.path, 0), record.size)
            elif record.op in (READ, WRITE) and record.length:
                sizes[record.path] = max(
                    sizes.get(record.path, 0), record.offset + record.length
                )
        active_bytes = sum(sizes.get(p, 0) for p in active_paths)
        return {
            "workload": self.name,
            "duration_days": self.duration / SECONDS_PER_DAY,
            "operations": len(self.records),
            "accesses": accesses,
            "users": len(self.users()),
            "active_files": len(active_paths),
            "active_bytes": active_bytes,
            "initial_files": len(self.initial_files),
            "initial_bytes": sum(size for _, size in self.initial_files),
        }

    # ------------------------------------------------------------------
    # serialization (JSON lines; header object then one record per line)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            header = {
                "name": self.name,
                "initial_dirs": self.initial_dirs,
                "initial_files": self.initial_files,
            }
            fh.write(json.dumps(header) + "\n")
            for record in self.records:
                fh.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            records = [TraceRecord(**json.loads(line)) for line in fh if line.strip()]
        return cls(
            name=header["name"],
            records=records,
            initial_dirs=list(header.get("initial_dirs", [])),
            initial_files=[tuple(item) for item in header.get("initial_files", [])],
        )


def merge_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Interleave several traces into one (used when scaling workloads)."""
    records: List[TraceRecord] = []
    dirs: List[str] = []
    files: List[Tuple[str, int]] = []
    seen_dirs: Set[str] = set()
    seen_files: Set[str] = set()
    for trace in traces:
        records.extend(trace.records)
        for d in trace.initial_dirs:
            if d not in seen_dirs:
                seen_dirs.add(d)
                dirs.append(d)
        for path, size in trace.initial_files:
            if path not in seen_files:
                seen_files.add(path)
                files.append((path, size))
    return Trace(name=name, records=records, initial_dirs=dirs, initial_files=files)
