"""Workload scaling by file-system replication (Section 9.1).

"In experiments with larger system sizes, we scale up the workload
accordingly by replicating the initial file system ... we have 5.5 million
blocks in the 200 node experiment, so in the 1000 node experiment, we add
four extra copies of the file system ... Since we only have 83 distinct
access patterns, we still only replay accesses from 83 users."

This helper does exactly that: the initial image (directories and files)
is cloned under ``/replicaN`` prefixes so the stored-data volume grows
with the node count, while the access stream is left untouched — keeping
per-node storage constant across system sizes, which is what makes the
paper's cross-size comparisons meaningful.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.trace import Trace


def replicate_filesystem(trace: Trace, extra_copies: int) -> Trace:
    """A trace whose initial image contains ``extra_copies`` clones.

    Copy 0 is the original (accessed by the replayed users); copies live
    under ``/replica1`` .. ``/replicaN`` and are never accessed — they are
    storage ballast, exactly as in the paper.
    """
    if extra_copies < 0:
        raise ValueError("extra_copies must be non-negative")
    if extra_copies == 0:
        return trace
    dirs: List[str] = list(trace.initial_dirs)
    files: List[Tuple[str, int]] = list(trace.initial_files)
    for copy in range(1, extra_copies + 1):
        prefix = f"/replica{copy}"
        dirs.append(prefix)
        dirs.extend(f"{prefix}{d}" for d in trace.initial_dirs)
        files.extend((f"{prefix}{path}", size) for path, size in trace.initial_files)
    return Trace(
        name=f"{trace.name}+{extra_copies}copies",
        records=list(trace.records),
        initial_dirs=dirs,
        initial_files=files,
    )


def copies_for_size(base_nodes: int, target_nodes: int) -> int:
    """Extra copies needed to keep per-node data constant when growing
    from *base_nodes* to *target_nodes* (the paper: 200 -> 1000 adds 4)."""
    if base_nodes <= 0 or target_nodes <= 0:
        raise ValueError("node counts must be positive")
    return max(0, round(target_nodes / base_nodes) - 1)
