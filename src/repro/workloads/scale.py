"""Workload scaling by file-system replication (Section 9.1).

"In experiments with larger system sizes, we scale up the workload
accordingly by replicating the initial file system ... we have 5.5 million
blocks in the 200 node experiment, so in the 1000 node experiment, we add
four extra copies of the file system ... Since we only have 83 distinct
access patterns, we still only replay accesses from 83 users."

This helper does exactly that: the initial image (directories and files)
is cloned under ``/replicaN`` prefixes so the stored-data volume grows
with the node count, while the access stream is left untouched — keeping
per-node storage constant across system sizes, which is what makes the
paper's cross-size comparisons meaningful.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.workloads.trace import Trace

#: One read request: (user, path, offset, length).
ReadRequest = Tuple[str, str, int, int]


def replicate_filesystem(trace: Trace, extra_copies: int) -> Trace:
    """A trace whose initial image contains ``extra_copies`` clones.

    Copy 0 is the original (accessed by the replayed users); copies live
    under ``/replica1`` .. ``/replicaN`` and are never accessed — they are
    storage ballast, exactly as in the paper.
    """
    if extra_copies < 0:
        raise ValueError("extra_copies must be non-negative")
    if extra_copies == 0:
        return trace
    dirs: List[str] = list(trace.initial_dirs)
    files: List[Tuple[str, int]] = list(trace.initial_files)
    for copy in range(1, extra_copies + 1):
        prefix = f"/replica{copy}"
        dirs.append(prefix)
        dirs.extend(f"{prefix}{d}" for d in trace.initial_dirs)
        files.extend((f"{prefix}{path}", size) for path, size in trace.initial_files)
    return Trace(
        name=f"{trace.name}+{extra_copies}copies",
        records=list(trace.records),
        initial_dirs=dirs,
        initial_files=files,
    )


def copies_for_size(base_nodes: int, target_nodes: int) -> int:
    """Extra copies needed to keep per-node data constant when growing
    from *base_nodes* to *target_nodes* (the paper: 200 -> 1000 adds 4)."""
    if base_nodes <= 0 or target_nodes <= 0:
        raise ValueError("node counts must be positive")
    return max(0, round(target_nodes / base_nodes) - 1)


def replica_path(path: str, replica: int) -> str:
    """*path* inside replica image *replica* (0 = the original image)."""
    if replica == 0:
        return path
    return f"/replica{replica}{path}"


def scaled_read_stream(
    reads: Sequence[ReadRequest],
    *,
    clones: int,
    ops_per_clone: int,
    copies: int = 0,
) -> Iterator[ReadRequest]:
    """Lazily multiply a base read template across *clones* user populations.

    The paper replays 83 distinct access patterns regardless of system
    size; the million-user scale harness instead clones the base
    population: clone ``c`` replays ``ops_per_clone`` requests from the
    template (starting at a clone-dependent stride so clones do not all
    hammer the same files in the same order) against replica image
    ``c % (copies + 1)``.  Users are renamed ``user~c`` so every clone is
    a distinct principal, and nothing is materialized — the stream is a
    generator, so peak memory is independent of ``clones``.
    """
    if clones <= 0:
        raise ValueError(f"clones must be positive, got {clones}")
    if ops_per_clone <= 0:
        raise ValueError(f"ops_per_clone must be positive, got {ops_per_clone}")
    if copies < 0:
        raise ValueError(f"copies must be non-negative, got {copies}")
    n = len(reads)
    if n == 0:
        return
    per_clone = min(ops_per_clone, n)
    for clone in range(clones):
        replica = clone % (copies + 1)
        start = clone % n
        for step in range(per_clone):
            user, path, offset, length = reads[(start + step) % n]
            yield (
                user if clone == 0 else f"{user}~{clone}",
                replica_path(path, replica),
                offset,
                length,
            )
