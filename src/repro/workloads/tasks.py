"""Task and access-group segmentation (Sections 8.1 and 9.1).

The Harvard trace carries no explicit task boundaries, so the paper defines
them from timing:

* a **task** is a maximal same-user run of accesses with every gap below an
  inter-arrival threshold ``inter`` (1 s … 1 min in the evaluation), capped
  at 5 minutes — the availability unit: a task fails if *any* object it
  needs is unavailable;
* an **access group** is a same-user run with every gap below 1 second of
  *think time* — the latency unit: its completion time is what a user
  perceives, and its accesses are replayed either fully sequentially
  (``seq``) or fully in parallel (``para``), bracketing the real dependency
  structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.workloads.trace import READ, Trace, TraceRecord, WRITE

TASK_DURATION_CAP = 300.0  # 5 minutes, per Section 8.1
THINK_TIME = 1.0           # access-group boundary, per Section 9.1


@dataclass
class Task:
    """A correlated unit of user work; fails if any needed object does."""

    user: str
    records: List[TraceRecord]

    @property
    def start(self) -> float:
        return self.records[0].time

    @property
    def end(self) -> float:
        return self.records[-1].time

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class AccessGroup:
    """A burst of accesses between two think times (the latency unit)."""

    user: str
    records: List[TraceRecord]

    @property
    def start(self) -> float:
        return self.records[0].time

    def __len__(self) -> int:
        return len(self.records)


def _segment(
    records: Sequence[TraceRecord],
    gap_threshold: float,
    duration_cap: float,
) -> List[List[TraceRecord]]:
    segments: List[List[TraceRecord]] = []
    current: List[TraceRecord] = []
    for record in records:
        if not current:
            current = [record]
            continue
        gap = record.time - current[-1].time
        over_cap = duration_cap > 0 and (record.time - current[0].time) > duration_cap
        if gap > gap_threshold or over_cap:
            segments.append(current)
            current = [record]
        else:
            current.append(record)
    if current:
        segments.append(current)
    return segments


def segment_tasks(
    trace: Trace,
    inter: float,
    *,
    duration_cap: float = TASK_DURATION_CAP,
    accesses_only: bool = True,
) -> List[Task]:
    """Split *trace* into per-user tasks at gaps larger than *inter*.

    With ``accesses_only`` (the default, matching the paper) only read and
    write records define and populate tasks; namespace operations ride
    along with whichever task encloses them during replay.
    """
    tasks: List[Task] = []
    for user, records in trace.per_user().items():
        if accesses_only:
            records = [r for r in records if r.op in (READ, WRITE)]
        for segment in _segment(records, inter, duration_cap):
            tasks.append(Task(user=user, records=segment))
    tasks.sort(key=lambda t: t.start)
    return tasks


def segment_access_groups(
    trace: Trace,
    *,
    think_time: float = THINK_TIME,
    reads_only: bool = True,
) -> List[AccessGroup]:
    """Split *trace* into access groups at think times (> 1 s gaps).

    The performance evaluation replays reads only (writes are absorbed by
    the 30 s write-back cache; Section 9.1 evaluates end-to-end read
    performance as CFS did).
    """
    groups: List[AccessGroup] = []
    for user, records in trace.per_user().items():
        if reads_only:
            records = [r for r in records if r.op == READ]
        for segment in _segment(records, think_time, 0.0):
            groups.append(AccessGroup(user=user, records=segment))
    groups.sort(key=lambda g: g.start)
    return groups


def task_statistics(tasks: Iterable[Task]) -> Dict[str, float]:
    """Mean records per task and related aggregates (Table 2 inputs)."""
    tasks = list(tasks)
    if not tasks:
        return {"tasks": 0, "mean_accesses": 0.0, "mean_duration": 0.0}
    return {
        "tasks": len(tasks),
        "mean_accesses": sum(len(t) for t in tasks) / len(tasks),
        "mean_duration": sum(t.duration for t in tasks) / len(tasks),
    }
