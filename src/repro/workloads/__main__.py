"""Command-line workload generator.

Usage::

    python -m repro.workloads harvard --users 16 --days 7 -o harvard.jsonl
    python -m repro.workloads web --sites 60 --days 7 -o web.jsonl
    python -m repro.workloads hp --apps 12 --days 7 -o hp.jsonl
    python -m repro.workloads stats harvard.jsonl

Traces serialize as JSON lines (header + one record per line) and load
back with :meth:`repro.workloads.trace.Trace.load`, so experiments can run
against saved traces instead of regenerating.
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.hp import HPConfig, generate_hp
from repro.workloads.trace import Trace
from repro.workloads.web import WebConfig, generate_web


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Generate or inspect synthetic workload traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    harvard = sub.add_parser("harvard", help="Harvard-like NFS workload")
    harvard.add_argument("--users", type=int, default=16)
    harvard.add_argument("--days", type=float, default=7.0)
    harvard.add_argument("--seed", type=int, default=0)
    harvard.add_argument("-o", "--output", required=True)

    hp = sub.add_parser("hp", help="HP-like block-level workload")
    hp.add_argument("--apps", type=int, default=12)
    hp.add_argument("--days", type=float, default=7.0)
    hp.add_argument("--seed", type=int, default=0)
    hp.add_argument("-o", "--output", required=True)

    web = sub.add_parser("web", help="NLANR-like web workload")
    web.add_argument("--users", type=int, default=40)
    web.add_argument("--sites", type=int, default=60)
    web.add_argument("--days", type=float, default=7.0)
    web.add_argument("--seed", type=int, default=0)
    web.add_argument("-o", "--output", required=True)

    stats = sub.add_parser("stats", help="print a saved trace's Table-1 row")
    stats.add_argument("path")

    args = parser.parse_args(argv)

    if args.command == "harvard":
        trace = generate_harvard(
            HarvardConfig(users=args.users, days=args.days, seed=args.seed)
        )
    elif args.command == "hp":
        trace = generate_hp(
            HPConfig(applications=args.apps, days=args.days, seed=args.seed)
        )
    elif args.command == "web":
        trace = generate_web(
            WebConfig(users=args.users, sites=args.sites, days=args.days,
                      seed=args.seed)
        )
    elif args.command == "stats":
        trace = Trace.load(args.path)
        for key, value in trace.stats().items():
            print(f"{key}: {value}")
        return 0
    else:  # pragma: no cover - argparse enforces choices
        return 2

    trace.save(args.output)
    summary = trace.stats()
    print(
        f"wrote {args.output}: {summary['operations']} records, "
        f"{summary['users']} users, {summary['active_bytes'] / 1e6:.1f} MB "
        f"active data over {summary['duration_days']:.2f} days"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
