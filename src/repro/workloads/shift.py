"""Workload-shift request streams for the acceleration experiments.

The paper's replays hold the key popularity distribution fixed, which is
exactly the regime a static-TTL, fixed-capacity lookup cache is sized
for.  This module generates the three shift shapes the ``accel`` matrix
measures recovery under — each a deterministic ``(time, client, key)``
stream with a single phase boundary:

``hotspot``
    A flash crowd: the pre-phase Zipf working set keeps a background
    share of traffic while most post-phase requests pile onto the
    (previously cold) post key population — the `ext_hotspot` regime.
``migrate``
    Task-set migration: the client population switches wholesale from
    the pre key set to a disjoint post set (a batch job finishing and
    the next one starting on different files).
``churn``
    The key stream never shifts; the *ring* does.  The stream keeps
    serving the pre keys and the harness crashes/joins nodes at the
    boundary (dynamic membership, PR 6), so every cached range crossing
    the dead arcs goes stale at once.

Everything derives from one seeded RNG — same seed, same stream — so
accelerated replays stay inside the determinism contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

SCENARIOS = ("hotspot", "migrate", "churn")

#: Fraction of post-phase requests a flash crowd sends to the new keys.
FLASH_FRACTION = 0.75


@dataclass(frozen=True)
class ShiftRequest:
    """One request of a shift stream (``phase`` is ``"pre"`` or ``"post"``)."""

    now: float
    client: str
    key: int
    phase: str


def zipf_weights(count: int, s: float = 1.2) -> List[float]:
    """Normalized Zipf(s) popularity weights over *count* ranks."""
    weights = [1.0 / (rank + 1) ** s for rank in range(count)]
    total = sum(weights)
    return [w / total for w in weights]


def shift_stream(
    scenario: str,
    pre_keys: Sequence[int],
    post_keys: Sequence[int],
    clients: Sequence[str],
    *,
    pre_ops: int,
    post_ops: int,
    zipf_s: float = 1.2,
    rate: float = 10.0,
    flash_fraction: float = FLASH_FRACTION,
    seed: int = 0,
) -> Iterator[ShiftRequest]:
    """Yield ``pre_ops`` then ``post_ops`` requests around one shift.

    Keys are drawn Zipf-by-rank from the key populations (rank order =
    list order, so callers control which keys are hot).  For ``churn``
    the post phase keeps drawing from *pre_keys* — the membership change
    is the caller's job; for ``migrate`` it switches entirely to
    *post_keys*; for ``hotspot`` a *flash_fraction* share stampedes onto
    *post_keys* while the rest continues as before.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"expected one of {SCENARIOS}")
    if not pre_keys or not clients:
        raise ValueError("need at least one pre key and one client")
    if scenario in ("hotspot", "migrate") and not post_keys:
        raise ValueError(f"scenario {scenario!r} needs post keys")
    rng = random.Random(seed)
    pre_ranks = range(len(pre_keys))
    pre_weights = zipf_weights(len(pre_keys), zipf_s)
    post_ranks = range(len(post_keys)) if post_keys else range(0)
    post_weights = zipf_weights(len(post_keys), zipf_s) if post_keys else []
    now = 0.0
    for index in range(pre_ops + post_ops):
        now += rng.expovariate(rate)
        client = clients[rng.randrange(len(clients))]
        phase = "pre" if index < pre_ops else "post"
        if phase == "pre" or scenario == "churn":
            key = pre_keys[rng.choices(pre_ranks, weights=pre_weights, k=1)[0]]
        elif scenario == "migrate":
            key = post_keys[rng.choices(post_ranks, weights=post_weights, k=1)[0]]
        else:  # hotspot: flash crowd on the new keys, background on the old
            if rng.random() < flash_fraction:
                key = post_keys[rng.choices(post_ranks, weights=post_weights, k=1)[0]]
            else:
                key = pre_keys[rng.choices(pre_ranks, weights=pre_weights, k=1)[0]]
        yield ShiftRequest(now=now, client=client, key=key, phase=phase)
