"""Synthetic HP-like block-level disk trace (Figure 3's HP workload).

The real HP trace (Cello, 1999) records block-level accesses from a
multi-disk research server: each access names a physical disk block, and
the paper exploits the fact that local file systems allocate temporally
related data in nearby blocks — so ordering keys by block number preserves
most task locality even without path information.

The generator reproduces that structure: each application ("user" in the
paper's analysis, identified by pid) owns a handful of *extents* — dense
block regions, as a file-system allocator would produce — and issues
sequential runs inside them with occasional seeks, plus some accesses to
shared extents (binaries, swap).  Only reads/writes of block addresses are
emitted; blocks are named by zero-padded decimal strings so that
lexicographic name order equals numeric block order (the paper's *ordered*
scenario for HP).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.trace import READ, SECONDS_PER_DAY, Trace, TraceRecord, WRITE

BLOCK_NAME_WIDTH = 12


def block_name(block_number: int) -> str:
    """Stable name whose lexicographic order is numeric order."""
    return f"/blk/{block_number:0{BLOCK_NAME_WIDTH}d}"


@dataclass(frozen=True)
class HPConfig:
    applications: int = 12
    days: float = 7.0
    disk_blocks: int = 2_000_000          # 8 KB blocks ~ 16 GB disk
    extents_per_app: int = 6
    extent_blocks_mean: int = 4096        # dense allocator regions
    runs_per_active_hour: float = 30.0
    run_length_mean: float = 48.0         # sequential blocks per run
    seek_within_extent: float = 0.85      # else jump to another extent
    shared_extents: int = 2
    write_fraction: float = 0.3
    intra_run_gap: float = 0.02
    work_start_hour: int = 8
    work_end_hour: int = 20
    off_hours_activity: float = 0.15
    seed: int = 0


def generate_hp(config: HPConfig = HPConfig()) -> Trace:
    rng = random.Random(config.seed)

    # Carve extents out of the disk; apps own private extents plus shares.
    def carve() -> Tuple[int, int]:
        length = max(256, int(rng.expovariate(1.0 / config.extent_blocks_mean)))
        start = rng.randrange(max(1, config.disk_blocks - length))
        return start, length

    shared = [carve() for _ in range(config.shared_extents)]
    records: List[TraceRecord] = []
    for a in range(config.applications):
        app = f"app{a:03d}"
        extents = [carve() for _ in range(config.extents_per_app)]
        _generate_app(app, extents, shared, config, rng, records)

    return Trace(name="hp-synth", records=records)


def _generate_app(
    app: str,
    extents: List[Tuple[int, int]],
    shared: List[Tuple[int, int]],
    config: HPConfig,
    rng: random.Random,
    records: List[TraceRecord],
) -> None:
    total_seconds = config.days * SECONDS_PER_DAY
    current_extent = rng.choice(extents)
    hour = 0
    while hour * 3600.0 < total_seconds:
        hour_of_day = hour % 24
        active = config.work_start_hour <= hour_of_day < config.work_end_hour
        rate = config.runs_per_active_hour if active else (
            config.runs_per_active_hour * config.off_hours_activity
        )
        for _ in range(_poisson(rng, rate)):
            start_time = hour * 3600.0 + rng.uniform(0.0, 3600.0)
            if rng.random() >= config.seek_within_extent:
                pool = extents + (shared if rng.random() < 0.5 else [])
                current_extent = rng.choice(pool)
            base, length = current_extent
            run = max(1, int(rng.expovariate(1.0 / config.run_length_mean)))
            offset = rng.randrange(max(1, length))
            op = WRITE if rng.random() < config.write_fraction else READ
            when = start_time
            for i in range(run):
                block = base + (offset + i) % length
                records.append(
                    TraceRecord(when, app, op, block_name(block), offset=0, length=8192)
                )
                when += rng.expovariate(1.0 / config.intra_run_gap) if config.intra_run_gap > 0 else 0.0
        hour += 1


def _poisson(rng: random.Random, lam: float) -> int:
    import math

    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1
