"""Synthetic NLANR-like web trace (Figure 3's Web; Section 10's Webcache).

The real trace records accesses seen by NLANR's IRCache proxies.  For the
locality analysis, each web object is named by its URL with the domain
tuples reversed (www.yahoo.com/a.html → com.yahoo.www/a.html) so that name
order groups objects by site — the paper's *ordered* scenario for Web.

The generator reproduces the consumed structure:

* **Zipf site popularity** over a universe of sites;
* **per-site path trees** (sections/pages/embedded objects), so one page
  view touches several objects that are adjacent in reversed-URL order —
  the name-space locality the analysis measures;
* **user sessions** that browse a few pages on one site before moving on,
  with occasional cross-site jumps (ads, links);
* **heavy churn** for the Webcache experiment: objects are modified at the
  origin over time, so re-fetches insert new versions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.trace import READ, SECONDS_PER_DAY, Trace, TraceRecord


@dataclass(frozen=True)
class WebConfig:
    sites: int = 60
    users: int = 40
    days: float = 7.0
    zipf_s: float = 0.9
    sections_per_site: int = 6
    pages_per_section: int = 10
    objects_per_page_mean: float = 8.0
    page_size_median: float = 12_000.0
    page_size_sigma: float = 1.4
    sessions_per_user_day: float = 8.0
    pages_per_session_mean: float = 6.0
    same_site_stickiness: float = 0.8
    inter_click_mean: float = 15.0
    intra_page_gap: float = 0.1
    seed: int = 0


def reversed_domain(host: str) -> str:
    """www.yahoo.com -> com.yahoo.www (Section 4.1's Web naming)."""
    return ".".join(reversed(host.split(".")))


@dataclass(frozen=True)
class WebObject:
    url: str        # canonical reversed name, e.g. /com.site07.www/s2/p4/img3
    size: int


class WebUniverse:
    """The site/page/object structure shared by the trace and the cache."""

    def __init__(self, config: WebConfig, rng: random.Random) -> None:
        self.config = config
        self.sites: List[str] = [
            reversed_domain(f"www.site{i:03d}.com") for i in range(config.sites)
        ]
        self.pages: Dict[str, List[List[WebObject]]] = {}
        for site in self.sites:
            site_pages: List[List[WebObject]] = []
            for s in range(config.sections_per_site):
                for p in range(config.pages_per_section):
                    objects = [
                        WebObject(
                            url=f"/{site}/s{s}/p{p}/index.html",
                            size=_lognormal(rng, config.page_size_median, config.page_size_sigma),
                        )
                    ]
                    n_embedded = max(0, _poisson(rng, config.objects_per_page_mean - 1))
                    for o in range(n_embedded):
                        objects.append(
                            WebObject(
                                url=f"/{site}/s{s}/p{p}/obj{o:02d}",
                                size=_lognormal(
                                    rng, config.page_size_median, config.page_size_sigma
                                ),
                            )
                        )
                    site_pages.append(objects)
            self.pages[site] = site_pages
        # Zipf weights over sites.
        weights = [1.0 / (rank + 1) ** config.zipf_s for rank in range(len(self.sites))]
        total = sum(weights)
        self.site_weights = [w / total for w in weights]

    def pick_site(self, rng: random.Random) -> str:
        return rng.choices(self.sites, weights=self.site_weights, k=1)[0]

    def all_objects(self) -> List[WebObject]:
        return [obj for pages in self.pages.values() for page in pages for obj in page]


def generate_web(config: WebConfig = WebConfig()) -> Trace:
    """A week of user page views as read records (object name = URL path).

    Object sizes ride in the record's ``length`` field so downstream
    analyses know the byte volume without a separate catalogue; the
    universe itself is recoverable via :class:`WebUniverse` with the same
    seed.
    """
    rng = random.Random(config.seed)
    universe = WebUniverse(config, rng)
    records: List[TraceRecord] = []
    total_seconds = config.days * SECONDS_PER_DAY
    for u in range(config.users):
        user = f"client{u:03d}"
        day = 0.0
        while day < config.days:
            day_start = day * SECONDS_PER_DAY
            for _ in range(_poisson(rng, config.sessions_per_user_day)):
                start = day_start + rng.uniform(0, SECONDS_PER_DAY)
                if start >= total_seconds:
                    continue
                _generate_session(user, universe, config, rng, records, start)
            day += 1.0
    return Trace(name="web-synth", records=records)


def _generate_session(
    user: str,
    universe: WebUniverse,
    config: WebConfig,
    rng: random.Random,
    records: List[TraceRecord],
    start: float,
) -> None:
    site = universe.pick_site(rng)
    when = start
    n_pages = max(1, _poisson(rng, config.pages_per_session_mean))
    for _ in range(n_pages):
        if rng.random() >= config.same_site_stickiness:
            site = universe.pick_site(rng)
        page = rng.choice(universe.pages[site])
        for obj in page:
            records.append(
                TraceRecord(when, user, READ, obj.url, offset=0, length=obj.size)
            )
            when += rng.expovariate(1.0 / config.intra_page_gap)
        when += rng.expovariate(1.0 / config.inter_click_mean)


def _lognormal(rng: random.Random, median: float, sigma: float) -> int:
    return max(128, int(median * math.exp(sigma * rng.gauss(0.0, 1.0))))


def _poisson(rng: random.Random, lam: float) -> int:
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1
