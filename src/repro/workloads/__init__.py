"""Workload generators and trace tooling (Harvard/HP/Web-like)."""

from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.hp import HPConfig, generate_hp
from repro.workloads.scale import copies_for_size, replicate_filesystem
from repro.workloads.tasks import segment_access_groups, segment_tasks
from repro.workloads.trace import Trace, TraceRecord
from repro.workloads.web import WebConfig, generate_web
from repro.workloads.webcache import WebCache, WebCacheKeyScheme

__all__ = [
    "HarvardConfig",
    "generate_harvard",
    "HPConfig",
    "generate_hp",
    "WebConfig",
    "generate_web",
    "WebCache",
    "WebCacheKeyScheme",
    "Trace",
    "TraceRecord",
    "segment_tasks",
    "segment_access_groups",
    "copies_for_size",
    "replicate_filesystem",
]
