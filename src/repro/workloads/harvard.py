"""Synthetic Harvard-like NFS workload (research + email, Table 1).

The real Harvard trace (Ellard et al., FAST '03; EECS workload) is a week
of timestamped NFS accesses by a research group — the only trace in the
paper with both path information and writes, so it drives every dynamic
experiment.  This generator reproduces the properties those experiments
consume:

* a **directory hierarchy** of per-user home trees plus a shared area,
  with heavy-tailed file sizes (lognormal body, occasional very large
  files — the paper notes a 4-orders-of-magnitude mean-to-max spread);
* **name-space-local tasks**: users work in bursts inside one directory at
  a time (compile, edit, survey a project tree), with sub-second gaps
  inside a task and think times between tasks — which is why ordering keys
  by path is nearly as good as an oracle (Figure 3);
* **diurnal activity** concentrated in working hours (the paper samples
  its 15-minute replay segments from 9 AM–6 PM);
* **daily churn** of roughly 10–20% of stored bytes written and a similar
  volume removed (Table 3), including mailbox appends and temporary files.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.trace import (
    CREATE,
    DELETE,
    READ,
    RENAME,
    SECONDS_PER_DAY,
    Trace,
    TraceRecord,
    WRITE,
)


@dataclass(frozen=True)
class HarvardConfig:
    """Scale and shape knobs; defaults give a laptop-sized workload."""

    users: int = 16
    days: float = 7.0
    dirs_per_user: int = 10
    mean_files_per_dir: float = 10.0
    file_size_median: float = 8192.0
    file_size_sigma: float = 1.6
    big_file_fraction: float = 0.01
    big_file_bytes: int = 8 << 20
    tasks_per_active_hour: float = 5.0
    reads_per_task_mean: float = 10.0
    intra_task_gap_mean: float = 0.35
    write_fraction: float = 0.10
    create_fraction: float = 0.04
    delete_fraction: float = 0.035
    rename_fraction: float = 0.0005  # 0.05% of operations, per Section 4.2
    mailbox_appends_per_day: float = 20.0
    work_start_hour: int = 9
    work_end_hour: int = 18
    off_hours_activity: float = 0.08
    seed: int = 0


class _UserState:
    """Generator-side view of one user's files (keeps the trace replayable)."""

    def __init__(self, name: str, home: str) -> None:
        self.name = name
        self.home = home
        self.dirs: List[str] = []
        self.files: Dict[str, int] = {}  # path -> size
        self.files_by_dir: Dict[str, List[str]] = {}
        self.mailbox: Optional[str] = None
        self.current_dir: Optional[str] = None
        self.next_file_id = 0

    def add_file(self, path: str, size: int) -> None:
        self.files[path] = size
        directory = path.rsplit("/", 1)[0]
        self.files_by_dir.setdefault(directory, []).append(path)

    def drop_file(self, path: str) -> None:
        size = self.files.pop(path, None)
        if size is None:
            return
        directory = path.rsplit("/", 1)[0]
        siblings = self.files_by_dir.get(directory, [])
        if path in siblings:
            siblings.remove(path)


def _lognormal_size(rng: random.Random, median: float, sigma: float) -> int:
    return max(64, int(median * math.exp(sigma * rng.gauss(0.0, 1.0))))


def generate_harvard(config: HarvardConfig = HarvardConfig()) -> Trace:
    """Generate the full workload bundle (initial image + week of records)."""
    rng = random.Random(config.seed)
    users: List[_UserState] = []
    initial_dirs: List[str] = []
    initial_files: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # initial file-system image

    initial_dirs.append("/home")
    shared = "/shared"
    initial_dirs.append(shared)
    shared_files: List[str] = []
    for i in range(24):
        path = f"{shared}/lib{i:02d}.so"
        size = _lognormal_size(rng, 4 * config.file_size_median, config.file_size_sigma)
        initial_files.append((path, size))
        shared_files.append(path)

    for u in range(config.users):
        name = f"user{u:03d}"
        home = f"/home/{name}"
        state = _UserState(name, home)
        initial_dirs.append(home)
        # Grow a project tree by preferential attachment (natural shapes).
        state.dirs.append(home)
        for d in range(config.dirs_per_user):
            parent = rng.choice(state.dirs)
            if parent.count("/") >= 8:
                parent = home
            path = f"{parent}/proj{d:02d}"
            initial_dirs.append(path)
            state.dirs.append(path)
        for directory in state.dirs:
            n_files = rng.randint(1, max(2, int(2 * config.mean_files_per_dir)))
            for f in range(n_files):
                path = f"{directory}/f{state.next_file_id:05d}.dat"
                state.next_file_id += 1
                if rng.random() < config.big_file_fraction:
                    size = rng.randint(config.big_file_bytes // 4, config.big_file_bytes)
                else:
                    size = _lognormal_size(rng, config.file_size_median, config.file_size_sigma)
                initial_files.append((path, size))
                state.add_file(path, size)
        # Mailbox (email is half the real workload's character).
        mail_dir = f"{home}/mail"
        initial_dirs.append(mail_dir)
        state.dirs.append(mail_dir)
        mailbox = f"{mail_dir}/inbox.mbox"
        mailbox_size = _lognormal_size(rng, 64 * config.file_size_median, 1.0)
        initial_files.append((mailbox, mailbox_size))
        state.add_file(mailbox, mailbox_size)
        state.mailbox = mailbox
        users.append(state)

    # ------------------------------------------------------------------
    # the week of activity

    records: List[TraceRecord] = []
    for state in users:
        _generate_user_activity(state, shared_files, config, rng, records)

    return Trace(
        name="harvard-synth",
        records=records,
        initial_dirs=initial_dirs,
        initial_files=initial_files,
    )


def _generate_user_activity(
    state: _UserState,
    shared_files: Sequence[str],
    config: HarvardConfig,
    rng: random.Random,
    records: List[TraceRecord],
) -> None:
    total_seconds = config.days * SECONDS_PER_DAY
    hour = 0
    while hour * 3600.0 < total_seconds:
        hour_start = hour * 3600.0
        hour_of_day = hour % 24
        active = config.work_start_hour <= hour_of_day < config.work_end_hour
        rate = config.tasks_per_active_hour if active else (
            config.tasks_per_active_hour * config.off_hours_activity
        )
        n_tasks = _poisson(rng, rate)
        for _ in range(n_tasks):
            start = hour_start + rng.uniform(0.0, 3600.0)
            _generate_task(state, shared_files, config, rng, records, start)
        # Mailbox appends arrive around the clock.
        n_mail = _poisson(rng, config.mailbox_appends_per_day / 24.0)
        for _ in range(n_mail):
            when = hour_start + rng.uniform(0.0, 3600.0)
            if state.mailbox and state.mailbox in state.files:
                size = state.files[state.mailbox]
                length = rng.randint(512, 24 * 1024)
                records.append(
                    TraceRecord(when, state.name, WRITE, state.mailbox, offset=size, length=length)
                )
                state.files[state.mailbox] = size + length
        hour += 1


def _generate_task(
    state: _UserState,
    shared_files: Sequence[str],
    config: HarvardConfig,
    rng: random.Random,
    records: List[TraceRecord],
    start: float,
) -> None:
    """One user task: a burst of operations, mostly inside one directory."""
    # Sticky working directory: tasks revisit the same project most times.
    if state.current_dir is None or rng.random() < 0.35:
        candidates = [d for d in state.dirs if state.files_by_dir.get(d)]
        if not candidates:
            return
        state.current_dir = rng.choice(candidates)
    directory = state.current_dir
    local_files = state.files_by_dir.get(directory, [])
    if not local_files:
        return
    n_ops = max(1, _poisson(rng, config.reads_per_task_mean))
    when = start
    for _ in range(n_ops):
        roll = rng.random()
        if roll < config.rename_fraction and local_files:
            src = rng.choice(local_files)
            dst = f"{directory}/r{state.next_file_id:05d}.dat"
            state.next_file_id += 1
            size = state.files[src]
            state.drop_file(src)
            state.add_file(dst, size)
            records.append(TraceRecord(when, state.name, RENAME, src, dst_path=dst))
        elif roll < config.create_fraction:
            path = f"{directory}/f{state.next_file_id:05d}.dat"
            state.next_file_id += 1
            size = _lognormal_size(rng, config.file_size_median, config.file_size_sigma)
            state.add_file(path, size)
            local_files = state.files_by_dir[directory]
            records.append(TraceRecord(when, state.name, CREATE, path, size=size))
        elif roll < config.create_fraction + config.delete_fraction and len(local_files) > 2:
            victim = rng.choice(local_files)
            if victim == state.mailbox:
                pass
            else:
                state.drop_file(victim)
                records.append(TraceRecord(when, state.name, DELETE, victim))
        elif roll < config.create_fraction + config.delete_fraction + config.write_fraction:
            path = rng.choice(local_files)
            size = state.files[path]
            if size <= 0 or rng.random() < 0.3:
                # Append (log-style growth).
                length = rng.randint(256, 16 * 1024)
                records.append(
                    TraceRecord(when, state.name, WRITE, path, offset=size, length=length)
                )
                state.files[path] = size + length
            else:
                # Overwrite a region in place.
                length = min(size, rng.randint(256, 32 * 1024))
                offset = rng.randint(0, max(0, size - length))
                records.append(
                    TraceRecord(when, state.name, WRITE, path, offset=offset, length=length)
                )
        else:
            # Read — usually a local file, occasionally a shared library.
            if shared_files and rng.random() < 0.08:
                path = rng.choice(list(shared_files))
                size = 0  # size resolved at replay; read whole file
                records.append(TraceRecord(when, state.name, READ, path))
            else:
                path = rng.choice(local_files)
                size = state.files[path]
                if size > 256 * 1024 and rng.random() < 0.7:
                    # Partial read of a large file.
                    length = rng.randint(8 * 1024, 256 * 1024)
                    offset = rng.randint(0, max(0, size - length))
                    records.append(
                        TraceRecord(when, state.name, READ, path, offset=offset, length=length)
                    )
                else:
                    records.append(
                        TraceRecord(when, state.name, READ, path, offset=0, length=size)
                    )
        when += rng.expovariate(1.0 / config.intra_task_gap_mean)


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (lam is small everywhere we use it)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1
