"""DHT-as-web-cache workload (Squirrel-style, Section 10).

Clients fetch URLs through the DHT: a hit reads the cached object; a miss
downloads from the origin and *inserts* it, so insertions and evictions —
not overwrites — dominate.  Cached content not refreshed for a day is
evicted, and a newer origin version replaces the cached copy.  The result
is the paper's stress test: up to 13x the stored volume written in a day
(Table 3), a rapidly shifting key distribution, and the hardest case for
active load balancing (Figure 17).

Keys: with D2, a URL's components are encoded with 2-byte *hash slots*
(footnote 2 — the writer has no parent-directory state); with the
traditional system the URL is hashed.  Objects larger than one block get
consecutive block numbers under the same URL key prefix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.keys import (
    MAX_PATH_LEVELS,
    encode_path_key,
    hash_slot,
    version_hash,
    volume_id,
)
from repro.dht.consistent_hashing import hashed_key
from repro.fs.blocks import BLOCK_SIZE

EVICTION_AGE = 86400.0  # cached content unrefreshed for a day is evicted


def url_components(url: str) -> List[str]:
    """Split a canonical (reversed-domain) URL path into components."""
    return [part for part in url.split("/") if part]


class WebCacheKeyScheme:
    """Block keys for cached URLs under either system."""

    def __init__(self, system: str, volume_name: str = "webcache") -> None:
        if system not in ("d2", "traditional"):
            raise ValueError(f"webcache supports 'd2' or 'traditional', not {system!r}")
        self.system = system
        self.volume = volume_id(volume_name)
        self.volume_name = volume_name

    def block_keys(self, url: str, size: int, version: int) -> List[Tuple[int, int]]:
        """(key, block_size) pairs for a cached object of *size* bytes."""
        n_blocks = max(1, -(-size // BLOCK_SIZE))
        sizes = [BLOCK_SIZE] * (n_blocks - 1)
        sizes.append(size - BLOCK_SIZE * (n_blocks - 1) if size > 0 else 0)
        if self.system == "traditional":
            return [
                (hashed_key(f"{self.volume_name}|{url}|b{i}|v{version}"), sizes[i - 1])
                for i in range(1, n_blocks + 1)
            ]
        components = url_components(url)
        slots = [hash_slot(c) for c in components[:MAX_PATH_LEVELS]]
        overflow = components[MAX_PATH_LEVELS:]
        return [
            (
                encode_path_key(
                    self.volume,
                    slots,
                    overflow_components=overflow,
                    block_number=i,
                    version=version_hash(version),
                ),
                sizes[i - 1],
            )
            for i in range(1, n_blocks + 1)
        ]


@dataclass
class _CachedObject:
    version: int
    size: int
    inserted_at: float
    refreshed_at: float
    keys: List[Tuple[int, int]]


@dataclass
class WebCacheStats:
    requests: int = 0
    hits: int = 0
    insertions: int = 0
    replacements: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class WebCache:
    """The cache-state machine: which URLs are in the DHT, at what version.

    The caller supplies ``put``/``remove`` callbacks (normally bound to a
    :class:`repro.store.migration.StorageCoordinator`), keeping this class
    independent of the storage backend.
    """

    def __init__(
        self,
        scheme: WebCacheKeyScheme,
        *,
        origin_change_interval: float = 4 * 3600.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.scheme = scheme
        self.origin_change_interval = origin_change_interval
        self._rng = rng if rng is not None else random.Random(0)
        self._cached: Dict[str, _CachedObject] = {}
        self._origin_version: Dict[str, int] = {}
        self._origin_changed_at: Dict[str, float] = {}
        self.stats = WebCacheStats()

    def request(self, url: str, size: int, now: float, put, remove) -> bool:
        """One client fetch; returns True on a cache hit.

        On a miss (or a stale cached version) the object is inserted at the
        current origin version via *put*; the superseded version's blocks
        are removed via *remove*.
        """
        self.stats.requests += 1
        self._advance_origin(url, now)
        origin_version = self._origin_version.setdefault(url, 0)
        cached = self._cached.get(url)
        if cached is not None and cached.version == origin_version:
            cached.refreshed_at = now
            self.stats.hits += 1
            return True
        if cached is not None:
            # Replaced with a newer version fetched by this client.
            for key, _ in cached.keys:
                remove(key)
            self.stats.replacements += 1
        keys = self.scheme.block_keys(url, size, origin_version)
        for key, block_size in keys:
            put(key, block_size)
        self._cached[url] = _CachedObject(
            version=origin_version,
            size=size,
            inserted_at=now,
            refreshed_at=now,
            keys=keys,
        )
        self.stats.insertions += 1
        return False

    def evict_stale(self, now: float, remove) -> int:
        """Evict everything unrefreshed for :data:`EVICTION_AGE` seconds."""
        victims = [
            url
            for url, obj in self._cached.items()
            if now - obj.refreshed_at >= EVICTION_AGE
        ]
        for url in victims:
            for key, _ in self._cached[url].keys:
                remove(key)
            del self._cached[url]
            self.stats.evictions += 1
        return len(victims)

    def _advance_origin(self, url: str, now: float) -> None:
        """Origin content changes over time; each change bumps the version."""
        last = self._origin_changed_at.get(url)
        if last is None:
            self._origin_changed_at[url] = now
            return
        elapsed = now - last
        if elapsed <= 0:
            return
        # Memoryless origin updates: expected one per change interval.
        changes = 0
        remaining = elapsed
        while True:
            step = self._rng.expovariate(1.0 / self.origin_change_interval)
            if step > remaining:
                break
            remaining -= step
            changes += 1
        if changes:
            self._origin_version[url] = self._origin_version.get(url, 0) + changes
            self._origin_changed_at[url] = now

    @property
    def cached_count(self) -> int:
        return len(self._cached)

    def cached_bytes(self) -> int:
        return sum(obj.size for obj in self._cached.values())
