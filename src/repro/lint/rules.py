"""The invariant rules: determinism, observability, and key hygiene.

Six rule families, each a :class:`Rule` producing :class:`Finding`\\ s:

* **DET001** — no wall-clock reads (``time.time``, ``datetime.now``,
  ``time.monotonic``...) anywhere results can depend on them.
* **DET002** — no unseeded or module-global randomness (``random.random()``,
  bare ``random.Random()``, ``os.urandom``, ``uuid.uuid4``...).
* **DET003** — no iteration over ``set``/``frozenset`` values (or values of
  functions annotated to return sets) without ``sorted(...)``; set order is
  salted per process and silently breaks serial-vs-parallel equality.
* **OBS001** — observability contracts: ``tracer.span(...)`` only as a
  context manager; every emitted event kind registered in the vocabulary
  (:func:`repro.obs.events.register_kind` or the core constants).
* **OBS002** — time-series samples carry **sim-time**, never host-clock
  reads: no ``time.perf_counter()`` / ``time.process_time()`` (nor any
  DET001 wall-clock source) fed into ``series.sample(...)`` /
  ``bank.sample(...)``.
* **KEY001** — ring keys are built by ``KeyScheme``/``compose_block_key``/
  ``hashed_key``, never hand-packed from shifts, digests, or raw bytes.

Rules resolve call targets through each module's import table and never
flag what they cannot resolve: a missed violation is recoverable (add a
pattern), a false positive teaches people to sprinkle suppressions.

Suppression: ``# lint: allow=DET001`` on (or directly above) the line.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.walker import ParsedModule, imported_names, resolve_call_target

# ---------------------------------------------------------------------------
# findings and shared context


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    #: Module-qualified enclosing def/class ("repro.dht.ring.Ring.lookup"),
    #: or the bare module name for module-level findings.  Baseline v2
    #: fingerprints hang off this, so moves/reformats don't churn them.
    symbol: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "symbol": self.symbol,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class LintContext:
    """Cross-module facts shared by all rule passes.

    Built once from every scanned module (plus, for the event vocabulary,
    whatever ``repro.obs.events`` declares), so rules can resolve names
    that cross file boundaries without importing any project code.
    """

    #: Registered event kinds: core constants + register_kind() literals.
    event_kinds: Set[str] = field(default_factory=set)
    #: dotted module name -> {constant name -> string value}
    module_constants: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Names of functions annotated to return Set/FrozenSet/AbstractSet.
    set_returning: Set[str] = field(default_factory=set)


def _register_kind_literal(node: ast.Call) -> Optional[str]:
    """The literal kind of a ``register_kind("...")`` call, if any."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name != "register_kind" or not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet",
                           "AbstractSet", "MutableSet")
    return False


def build_context(modules: Sequence[ParsedModule]) -> LintContext:
    context = LintContext()
    for module in modules:
        constants: Dict[str, str] = {}
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                constants[target.id] = value.value
            elif isinstance(value, ast.Call):
                literal = _register_kind_literal(value)
                if literal is not None:
                    constants[target.id] = literal
        if constants:
            context.module_constants[module.module] = constants
        if module.module == "repro.obs.events":
            # Every module-level string constant of the events module is part
            # of the core vocabulary (they are what BASE_EVENT_KINDS wraps).
            context.event_kinds.update(constants.values())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                literal = _register_kind_literal(node)
                if literal is not None:
                    context.event_kinds.add(literal)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_set_annotation(node.returns):
                    context.set_returning.add(node.name)
    return context


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# ---------------------------------------------------------------------------
# rule framework


class Rule:
    """One named invariant; subclasses implement :meth:`check`."""

    id: str = ""
    title: str = ""
    hint: str = ""
    #: Dotted module names this rule never applies to (sanctioned low-level
    #: implementation sites).
    exempt_modules: Tuple[str, ...] = ()

    def applies_to(self, module: ParsedModule) -> bool:
        return module.module not in self.exempt_modules

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def _filter_allowed(module: ParsedModule, findings: Iterable[Finding]) -> List[Finding]:
    return [f for f in findings if not module.allowed(f.rule, f.line)]


def _symbol_spans(module: ParsedModule) -> List[Tuple[int, int, str]]:
    """(start, end, qualified name) for every def/class, innermost last."""
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qual = f"{scope}.{child.name}"
                end = getattr(child, "end_lineno", None) or child.lineno
                spans.append((child.lineno, end, qual))
                visit(child, qual)
            else:
                visit(child, scope)

    visit(module.tree, module.module)
    spans.sort(key=lambda span: (span[0], -span[1]))
    return spans


def annotate_symbols(modules: Sequence[ParsedModule],
                     findings: Iterable[Finding]) -> List[Finding]:
    """Fill each finding's ``symbol`` with its enclosing def/class.

    Findings outside any def/class get the module's dotted name; findings
    whose path was not scanned keep whatever symbol they carry.
    """
    spans_by_path: Dict[str, List[Tuple[int, int, str]]] = {}
    module_names: Dict[str, str] = {}
    for module in modules:
        spans_by_path[module.path] = _symbol_spans(module)
        module_names[module.path] = module.module
    annotated: List[Finding] = []
    for finding in findings:
        if finding.symbol or finding.path not in spans_by_path:
            annotated.append(finding)
            continue
        symbol = module_names[finding.path]
        for start, end, qual in spans_by_path[finding.path]:
            if start <= finding.line <= end:
                symbol = qual  # innermost match wins (sorted outer-first)
        annotated.append(dataclasses.replace(finding, symbol=symbol))
    return annotated


# ---------------------------------------------------------------------------
# DET001 — wall-clock reads


class WallClockRule(Rule):
    id = "DET001"
    title = "no wall-clock reads in deterministic code"
    hint = ("derive time from the simulator (sim.now) or pass timestamps in; "
            "for wall-clock *reporting* only, time.perf_counter() is allowed")

    BANNED = frozenset({
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    })

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        imports = imported_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_target(node.func, imports)
            if origin in self.BANNED:
                findings.append(self.finding(
                    module, node, f"wall-clock read {origin}() in deterministic code"
                ))
        return _filter_allowed(module, findings)


# ---------------------------------------------------------------------------
# DET002 — unseeded / module-global randomness


class UnseededRandomRule(Rule):
    id = "DET002"
    title = "no unseeded or module-global randomness"
    hint = ("use an explicitly seeded random.Random(seed) instance derived "
            "from the parameter bundle")

    #: Module-level functions of ``random`` that draw from (or mutate) the
    #: hidden process-global generator.
    GLOBAL_RANDOM_FNS = frozenset({
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "expovariate", "gauss", "normalvariate",
        "lognormvariate", "betavariate", "gammavariate", "paretovariate",
        "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
        "randbytes", "binomialvariate", "seed",
    })

    BANNED = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        imports = imported_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_target(node.func, imports)
            if not origin:
                continue
            if origin in self.BANNED or origin.startswith("secrets."):
                findings.append(self.finding(
                    module, node, f"nondeterministic entropy source {origin}()"
                ))
            elif origin == "random.SystemRandom":
                findings.append(self.finding(
                    module, node, "random.SystemRandom is OS entropy, never reproducible"
                ))
            elif origin == "random.Random" and not node.args and not node.keywords:
                findings.append(self.finding(
                    module, node,
                    "bare random.Random() seeds from OS entropy",
                ))
            elif (origin.startswith("random.")
                  and origin[len("random."):] in self.GLOBAL_RANDOM_FNS):
                findings.append(self.finding(
                    module, node,
                    f"module-global RNG call {origin}() shares hidden state "
                    "across the whole process",
                ))
        return _filter_allowed(module, findings)


# ---------------------------------------------------------------------------
# DET003 — unordered iteration


#: Consumers whose result does not depend on iteration order.
_ORDER_FREE_CALLS = frozenset({
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
})

#: Iteration-forcing calls: their output *order* mirrors input order.
_ORDER_CAPTURING_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


class _ScopeSets(ast.NodeVisitor):
    """Collect names that are definitely set-typed within one scope."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.other_names: Set[str] = set()
        self.set_attrs: Set[str] = set()   # self.<attr> assigned a set

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _note(self, target: ast.expr, value: Optional[ast.expr],
              annotation: Optional[ast.expr] = None) -> None:
        is_set = (value is not None and self._is_set_expr(value)) or (
            annotation is not None and _is_set_annotation(annotation)
        )
        if isinstance(target, ast.Name):
            (self.set_names if is_set else self.other_names).add(target.id)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self" and is_set):
            self.set_attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note(node.target, node.value, node.annotation)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.other_names.add(node.target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.other_names.add(node.target.id)
        self.generic_visit(node)

    # Nested functions get their own scope pass; don't mix their locals in.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class UnorderedIterationRule(Rule):
    id = "DET003"
    title = "no iteration over unordered sets"
    hint = ("wrap the iterable in sorted(...) — set iteration order is salted "
            "per process and poisons results and cache keys")

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        parents = _parent_map(module.tree)
        findings: List[Finding] = []

        # Scope tables: module body plus each function body.
        scopes: List[Tuple[ast.AST, _ScopeSets]] = []
        for scope_node in [module.tree] + [
            n for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]:
            table = _ScopeSets()
            body = scope_node.body if isinstance(scope_node, ast.Module) else scope_node.body
            for stmt in body:
                table.visit(stmt)
            scopes.append((scope_node, table))

        def enclosing_table(node: ast.AST) -> _ScopeSets:
            current: Optional[ast.AST] = node
            while current is not None:
                for scope_node, table in scopes:
                    if current is scope_node:
                        return table
                current = parents.get(current)
            return scopes[0][1]

        def class_set_attrs(node: ast.AST) -> Set[str]:
            """Set-typed ``self.<attr>`` names across the enclosing class."""
            current: Optional[ast.AST] = node
            while current is not None and not isinstance(current, ast.ClassDef):
                current = parents.get(current)
            if current is None:
                return set()
            attrs: Set[str] = set()
            for scope_node, table in scopes:
                inner: Optional[ast.AST] = scope_node
                while inner is not None:
                    if inner is current:
                        attrs.update(table.set_attrs)
                        break
                    inner = parents.get(inner)
            return attrs

        def is_set_valued(expr: ast.expr, at: ast.AST) -> Optional[str]:
            """A description when *expr* is statically set-typed, else None."""
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return "a set literal"
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name):
                    if func.id in ("set", "frozenset"):
                        return f"{func.id}(...)"
                    if func.id in context.set_returning:
                        return f"{func.id}() (annotated -> Set)"
                elif isinstance(func, ast.Attribute):
                    if func.attr in context.set_returning:
                        return f"{func.attr}() (annotated -> Set)"
                return None
            if isinstance(expr, ast.Name):
                table = enclosing_table(at)
                if expr.id in table.set_names and expr.id not in table.other_names:
                    return f"set-typed local {expr.id!r}"
                return None
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                if expr.attr in class_set_attrs(at):
                    return f"set-typed attribute self.{expr.attr}"
            return None

        def order_free_consumer(node: ast.AST) -> bool:
            """True when the nearest enclosing call absorbs iteration order."""
            current = parents.get(node)
            while current is not None:
                if isinstance(current, ast.Call):
                    func = current.func
                    name = func.id if isinstance(func, ast.Name) else (
                        func.attr if isinstance(func, ast.Attribute) else ""
                    )
                    return name in _ORDER_FREE_CALLS
                if isinstance(current, (ast.stmt, ast.Module)):
                    return False
                current = parents.get(current)
            return False

        def flag(expr: ast.expr, site: ast.AST, how: str, what: str) -> None:
            findings.append(self.finding(
                module, site,
                f"{how} iterates over {what} in unspecified order",
            ))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                what = is_set_valued(node.iter, node)
                if what:
                    flag(node.iter, node, "for loop", what)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                kind = {"ListComp": "list comprehension",
                        "GeneratorExp": "generator expression",
                        "DictComp": "dict comprehension"}[type(node).__name__]
                for gen in node.generators:
                    what = is_set_valued(gen.iter, node)
                    if what and not order_free_consumer(node):
                        flag(gen.iter, node, kind, what)
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else ""
                )
                if name in _ORDER_CAPTURING_CALLS and node.args:
                    what = is_set_valued(node.args[0], node)
                    if what and not order_free_consumer(node):
                        flag(node.args[0], node, f"{name}(...)", what)
                elif name == "join" and node.args:
                    what = is_set_valued(node.args[0], node)
                    if what:
                        flag(node.args[0], node, "str.join", what)
        return _filter_allowed(module, findings)


# ---------------------------------------------------------------------------
# OBS001 — observability contracts


class ObservabilityRule(Rule):
    id = "OBS001"
    title = "span/event API contracts"
    hint = ("use `with tracer.span(...):` (or start_span/finish pairs) and "
            "register event kinds via repro.obs.events.register_kind")

    #: Receivers whose ``.emit`` is an event-tracer emit; other ``.emit``
    #: methods (if any ever appear) are out of scope for this rule.
    _TRACERISH = ("tracer", "events")

    def _receiver_name(self, func: ast.Attribute) -> str:
        value = func.value
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Name):
            return value.id
        return ""

    def _resolve_kind(self, expr: ast.expr, module: ParsedModule,
                      imports: Dict[str, str], context: LintContext) -> Optional[str]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            local = context.module_constants.get(module.module, {})
            if expr.id in local:
                return local[expr.id]
            origin = imports.get(expr.id)
            if origin and "." in origin:
                origin_module, _, constant = origin.rpartition(".")
                return context.module_constants.get(origin_module, {}).get(constant)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            origin = imports.get(expr.value.id)
            if origin:
                return context.module_constants.get(origin, {}).get(expr.attr)
        return None

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        imports = imported_names(module.tree)
        parents = _parent_map(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr == "span":
                parent = parents.get(node)
                in_with = isinstance(parent, ast.withitem)
                in_enter_context = (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Attribute)
                    and parent.func.attr == "enter_context"
                )
                if not (in_with or in_enter_context):
                    findings.append(self.finding(
                        module, node,
                        "tracer.span(...) outside a `with` statement leaks an "
                        "open span",
                        hint="use `with tracer.span(...) as s:` or the explicit "
                             "start_span/finish pair",
                    ))
            elif attr == "emit" and node.args:
                receiver = self._receiver_name(node.func).lower()
                if not any(tag in receiver for tag in self._TRACERISH):
                    continue
                kind = self._resolve_kind(node.args[0], module, imports, context)
                if kind is not None and kind not in context.event_kinds:
                    findings.append(self.finding(
                        module, node,
                        f"event kind {kind!r} emitted but never registered",
                        hint="declare it: KIND = register_kind(\"...\") "
                             "(repro.obs.events)",
                    ))
        return _filter_allowed(module, findings)


# ---------------------------------------------------------------------------
# OBS002 — time-series samples carry sim-time


class TimeSeriesSimTimeRule(Rule):
    id = "OBS002"
    title = "time-series samples carry sim-time, not host-clock reads"
    hint = ("sample(sim.now, value) — a host-clock timestamp makes the "
            "window geometry (and every SLO evaluation) machine-dependent; "
            "time.perf_counter belongs in measured wall-clock fields only")

    #: Receivers whose ``.sample``/``.record`` is a time-series write;
    #: other samplers (if any ever appear) are out of scope.
    _SERIESISH = ("series", "bank", "timeseries", "health", "monitor")

    #: Every DET001 wall-clock source, plus the process timers DET001
    #: sanctions for wall-clock *reporting* — none of them may become a
    #: sample timestamp or value.
    BANNED = WallClockRule.BANNED | frozenset({
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    })

    def _receiver_name(self, func: ast.Attribute) -> str:
        value = func.value
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Name):
            return value.id
        return ""

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        imports = imported_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("sample", "record"):
                continue
            receiver = self._receiver_name(node.func).lower()
            if not any(tag in receiver for tag in self._SERIESISH):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for inner in ast.walk(argument):
                    if not isinstance(inner, ast.Call):
                        continue
                    origin = resolve_call_target(inner.func, imports)
                    if origin in self.BANNED:
                        findings.append(self.finding(
                            module, inner,
                            f"host-clock read {origin}() fed into a "
                            f"time-series .{node.func.attr}()",
                        ))
        return _filter_allowed(module, findings)


# ---------------------------------------------------------------------------
# KEY001 — no hand-packed ring keys


class KeyCompositionRule(Rule):
    id = "KEY001"
    title = "ring keys go through KeyScheme/compose_block_key"
    hint = ("build keys with KeyScheme implementations, encode_path_key/"
            "compose_block_key, or hashed_key — never by hand-packing bytes "
            "or bit-shifting fields")

    exempt_modules = (
        "repro.core.keys",
        "repro.dht.keyspace",
        "repro.dht.consistent_hashing",
    )

    _RAW_PACKERS = frozenset({"key_from_bytes", "hash_to_key"})
    #: Shifting a *computed* value by >= 32 bits is the classic layout pack;
    #: literal left operands (1 << 512, 8 << 20) are size constants, not keys.
    _MIN_FIELD_SHIFT = 32

    def _shift_names(self, expr: ast.expr) -> List[str]:
        return [
            n.id for n in ast.walk(expr)
            if isinstance(n, ast.Name)
            and (n.id.endswith("_BYTES") or n.id.endswith("_SHIFT")
                 or n.id == "KEY_BITS")
        ]

    def check(self, module: ParsedModule, context: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else ""
                )
                if name in self._RAW_PACKERS:
                    findings.append(self.finding(
                        module, node,
                        f"raw key packer {name}() outside the key modules",
                    ))
                elif (name == "encode" and isinstance(func, ast.Attribute)
                      and isinstance(func.value, ast.Call)
                      and isinstance(func.value.func, ast.Name)
                      and func.value.func.id == "BlockKey"):
                    findings.append(self.finding(
                        module, node,
                        "BlockKey(...).encode() hand-builds a 64-byte key",
                        hint="use encode_path_key(...) / the KeyScheme API",
                    ))
                elif (name == "from_bytes" and isinstance(func, ast.Attribute)
                      and isinstance(func.value, ast.Name)
                      and func.value.id == "int" and node.args):
                    if self._is_wide_digest(node.args[0]):
                        findings.append(self.finding(
                            module, node,
                            "int.from_bytes over a full-width digest "
                            "hand-hashes a ring key",
                            hint="use hashed_key(name) for uniform keys",
                        ))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
                if isinstance(node.left, ast.Constant):
                    continue  # 1 << 512 style size constants
                shift = node.right
                wide = (isinstance(shift, ast.Constant)
                        and isinstance(shift.value, int)
                        and shift.value >= self._MIN_FIELD_SHIFT)
                if wide or self._shift_names(shift):
                    findings.append(self.finding(
                        module, node,
                        "bit-shifting key fields together hand-packs the "
                        "Figure-4 layout",
                        hint="use compose_block_key(prefix, block_number, version)",
                    ))
        return _filter_allowed(module, findings)

    @staticmethod
    def _is_wide_digest(expr: ast.expr) -> bool:
        """True for sha512(...).digest() or <digest>[:N] slices with N >= 64."""
        if isinstance(expr, ast.Subscript):
            sl = expr.slice
            if isinstance(sl, ast.Slice) and isinstance(sl.upper, ast.Constant):
                if isinstance(sl.upper.value, int) and sl.upper.value >= 64:
                    return KeyCompositionRule._is_digest_call(expr.value)
            return False
        return KeyCompositionRule._is_digest_call(expr, wide_only=True)

    @staticmethod
    def _is_digest_call(expr: ast.expr, wide_only: bool = False) -> bool:
        if not (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "digest"):
            return False
        inner = expr.func.value
        if not (isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute)):
            return False
        algo = inner.func.attr
        return algo == "sha512" if wide_only else algo.startswith(("sha", "md5", "blake"))


#: The rule set, in report order.
ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    UnorderedIterationRule(),
    ObservabilityRule(),
    TimeSeriesSimTimeRule(),
    KeyCompositionRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def run_rules(modules: Sequence[ParsedModule],
              rules: Sequence[Rule] = ALL_RULES,
              context: Optional[LintContext] = None) -> List[Finding]:
    """Run *rules* over *modules*; findings sorted by location then rule."""
    if context is None:
        context = build_context(modules)
    findings: List[Finding] = []
    for module in modules:
        for rule in rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module, context))
    findings = annotate_symbols(modules, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
