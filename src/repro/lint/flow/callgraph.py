"""Project-wide function index and conservative call resolution.

The flow engine needs to follow calls *across* files — something the
per-file rules deliberately avoid — so this module builds:

* a :class:`FunctionIndex` of every function/method in the scanned tree,
  keyed by dotted qualified name (``repro.core.system.Deployment.read``);
* per-function :class:`ResolvedCall` lists, resolving each call site to a
  project function, an external dotted origin (``time.time``), or nothing.

Resolution is *conservative in the false-positive direction*: a call is
linked to a project function only when the link is statically certain —
imports, module-local names, ``self``/``cls`` receivers, receivers whose
class is known from an annotation or a constructor assignment, and (as a
last resort) method names that are defined exactly once in the whole
project and are not generic container verbs.  Everything else stays
unresolved, which makes the downstream passes miss paths rather than
invent them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.walker import ParsedModule, imported_names

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names too generic to resolve by project-wide uniqueness: they
#: collide with builtin container/file verbs, so a bare ``obj.get(...)``
#: must never be linked to a project method by name alone.
_GENERIC_METHOD_NAMES = frozenset({
    "get", "put", "set", "add", "append", "extend", "update", "pop",
    "popitem", "clear", "remove", "discard", "insert", "setdefault",
    "keys", "values", "items", "copy", "sort", "reverse", "count",
    "index", "join", "split", "strip", "read", "write", "close", "open",
    "encode", "decode", "format", "emit", "inc", "observe", "record",
    "sample", "next", "send", "submit", "result", "cancel", "done",
    "load", "save", "run", "start", "stop", "finish", "reset",
})


@dataclass
class FunctionInfo:
    """One function or method in the scanned project."""

    qualname: str                   # repro.mod.Class.method / repro.mod.func
    module: ParsedModule
    node: FunctionNode
    class_qualname: Optional[str]   # enclosing class qualname, if a method
    decorators: Tuple[str, ...]     # resolved dotted origins / bare names
    cell_kind: Optional[str] = None  # @cell_kind("name") literal, if any
    returns_class: Optional[str] = None  # qualname of annotated return class

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class: its methods plus resolvable base classes."""

    qualname: str
    module: ParsedModule
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_qualnames: Tuple[str, ...] = ()


@dataclass
class ResolvedCall:
    """One call site inside a function body."""

    node: ast.Call
    target: Optional[FunctionInfo]  # project function, when resolvable
    origin: str                     # dotted external origin ("time.time") or ""


def _decorator_origin(dec: ast.expr, imports: Dict[str, str]) -> Tuple[str, Optional[ast.Call]]:
    """(resolved-or-bare dotted name, call node if the decorator is a call)."""
    call = None
    if isinstance(dec, ast.Call):
        call = dec
        dec = dec.func
    parts: List[str] = []
    current: ast.expr = dec
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return "", call
    root = imports.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts)), call


def _cell_kind_of(decorators: Sequence[ast.expr], imports: Dict[str, str]) -> Optional[str]:
    """The literal kind of a ``@cell_kind("...")`` decorator, if present."""
    for dec in decorators:
        origin, call = _decorator_origin(dec, imports)
        if call is None or not call.args:
            continue
        if origin == "cell_kind" or origin.endswith(".cell_kind"):
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
    return None


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """The (possibly dotted) class name an annotation refers to, if simple.

    Handles ``Deployment``, ``"Deployment"`` (string form), and
    ``Optional[Deployment]``; anything fancier returns None.
    """
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip()
        return name if name.isidentifier() else None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_name(node.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return _annotation_name(node.slice)
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
    return None


class FunctionIndex:
    """Every function, method, and class across the scanned modules."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        self.modules = list(modules)
        self.by_qualname: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module dotted name -> {local symbol -> qualname} for top-level defs
        self.module_symbols: Dict[str, Dict[str, str]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self.module_names = {m.module for m in modules}
        for module in modules:
            self._index_module(module)
        self._resolve_annotations()

    # ------------------------------------------------------------------
    # construction

    def _index_module(self, module: ParsedModule) -> None:
        imports = imported_names(module.tree)
        self.imports[module.module] = imports
        symbols: Dict[str, str] = {}
        self.module_symbols[module.module] = symbols

        def visit(node: ast.AST, scope: str, class_qual: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{scope}.{child.name}"
                    info = FunctionInfo(
                        qualname=qual,
                        module=module,
                        node=child,
                        class_qualname=class_qual,
                        decorators=tuple(
                            _decorator_origin(d, imports)[0]
                            for d in child.decorator_list
                        ),
                        cell_kind=_cell_kind_of(child.decorator_list, imports),
                    )
                    self.by_qualname[qual] = info
                    if class_qual is not None:
                        self.classes[class_qual].methods[child.name] = info
                        self.methods_by_name.setdefault(child.name, []).append(info)
                    elif scope == module.module:
                        symbols[child.name] = qual
                    visit(child, qual, None)
                elif isinstance(child, ast.ClassDef):
                    qual = f"{scope}.{child.name}"
                    bases = tuple(
                        name for name in (
                            _annotation_name(b) for b in child.bases
                        ) if name
                    )
                    self.classes[qual] = ClassInfo(
                        qualname=qual, module=module, node=child,
                        base_qualnames=bases,
                    )
                    if scope == module.module:
                        symbols[child.name] = qual
                    visit(child, qual, qual)
                else:
                    visit(child, scope, class_qual)

        visit(module.tree, module.module, None)

    def _resolve_annotations(self) -> None:
        for info in self.by_qualname.values():
            returns = _annotation_name(info.node.returns)
            if returns:
                cls = self.resolve_class_name(returns, info.module)
                if cls:
                    info.returns_class = cls.qualname
        for cls in self.classes.values():
            resolved: List[str] = []
            for base in cls.base_qualnames:
                base_cls = self.resolve_class_name(base, cls.module)
                if base_cls:
                    resolved.append(base_cls.qualname)
            cls.base_qualnames = tuple(resolved)

    # ------------------------------------------------------------------
    # name resolution

    def resolve_class_name(self, name: str, module: ParsedModule) -> Optional[ClassInfo]:
        """The ClassInfo *name* refers to inside *module*, if any."""
        imports = self.imports.get(module.module, {})
        head, _, _ = name.partition(".")
        dotted = name
        if head in imports:
            dotted = imports[head] + name[len(head):]
        for candidate in (f"{module.module}.{name}", dotted, name):
            if candidate in self.classes:
                return self.classes[candidate]
        return None

    def _split_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Map a dotted origin onto a project function/method, if it is one."""
        if dotted in self.by_qualname:
            return self.by_qualname[dotted]
        # module.Class.method / module.Class (constructor)
        head, _, tail = dotted.rpartition(".")
        if head in self.classes:
            cls = self.classes[head]
            method = self.class_method(cls, tail)
            if method is not None:
                return method
        if dotted in self.classes:
            return self.class_method(self.classes[dotted], "__init__")
        return None

    def class_method(self, cls: Optional[ClassInfo], name: str) -> Optional[FunctionInfo]:
        """Look up *name* on *cls* or its resolvable project bases."""
        seen = set()
        while cls is not None and cls.qualname not in seen:
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            nxt = None
            for base in cls.base_qualnames:
                if base in self.classes:
                    nxt = self.classes[base]
                    break
            cls = nxt
        return None

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Variable -> class-qualname map for one function body.

        Seeds: annotated parameters, plus simple assignments from a
        resolvable constructor or from a call whose return annotation
        names a project class.  Conflicting reassignments drop the entry.
        """
        types: Dict[str, str] = {}
        dropped = set()

        def note(name: str, qual: Optional[str]) -> None:
            if name in dropped:
                return
            if qual is None:
                if name in types:
                    del types[name]
                dropped.add(name)
            elif name in types and types[name] != qual:
                del types[name]
                dropped.add(name)
            else:
                types[name] = qual

        args = info.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            ann = _annotation_name(arg.annotation)
            if ann:
                cls = self.resolve_class_name(ann, info.module)
                if cls:
                    types[arg.arg] = cls.qualname
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            note(target.id, self._call_result_class(node.value, info))
        return types

    def _call_result_class(self, expr: ast.expr, info: FunctionInfo) -> Optional[str]:
        """Class qualname of *expr*'s value, when expr is a resolvable call."""
        if not isinstance(expr, ast.Call):
            return None
        target = self._resolve_call_func(expr.func, info, {})
        if target is None:
            return None
        if target.name == "__init__" and target.class_qualname:
            return target.class_qualname
        return target.returns_class

    def _resolve_call_func(self, func: ast.expr, info: FunctionInfo,
                           local_types: Dict[str, str]) -> Optional[FunctionInfo]:
        module = info.module
        imports = self.imports.get(module.module, {})
        symbols = self.module_symbols.get(module.module, {})

        if isinstance(func, ast.Name):
            name = func.id
            if name in symbols:
                qual = symbols[name]
                if qual in self.by_qualname:
                    return self.by_qualname[qual]
                if qual in self.classes:
                    return self.class_method(self.classes[qual], "__init__")
            if name in imports:
                return self._split_dotted(imports[name])
            return None

        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        value = func.value

        # self.m() / cls.m(): the enclosing class (plus bases).
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            if info.class_qualname:
                cls = self.classes.get(info.class_qualname)
                return self.class_method(cls, attr)
            return None

        # Chain rooted at a Name: alias.Class.method, module.func, var.method.
        parts: List[str] = [attr]
        current: ast.expr = value
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            root = current.id
            if root in local_types and len(parts) == 1:
                cls = self.classes.get(local_types[root])
                return self.class_method(cls, attr)
            origin_root = imports.get(root) or symbols.get(root)
            if origin_root:
                dotted = origin_root + "." + ".".join(reversed(parts))
                target = self._split_dotted(dotted)
                if target is not None:
                    return target
        elif isinstance(current, ast.Call):
            # method chained on a call result: resolve the inner call's class
            inner_class = self._call_result_class(current, info)
            if inner_class:
                return self.class_method(self.classes.get(inner_class), attr)

        # Last resort: the method name is defined exactly once project-wide
        # and is not a generic container verb.
        if attr not in _GENERIC_METHOD_NAMES:
            candidates = self.methods_by_name.get(attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    # ------------------------------------------------------------------
    # per-function call extraction

    def calls_in(self, info: FunctionInfo) -> List[ResolvedCall]:
        """Every call site in *info*'s body, resolved where possible.

        Nested function/class bodies are included: the flow passes treat a
        closure's behavior as part of its definer (closures in this
        codebase are thunks executed by the function that builds them).
        The function's *own* decorators and argument defaults are excluded
        — those run at definition time, not when the function is called.
        """
        from repro.lint.walker import resolve_call_target

        imports = self.imports.get(info.module.module, {})
        local_types = self._local_types(info)
        calls: List[ResolvedCall] = []
        for stmt in info.node.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                target = self._resolve_call_func(node.func, info, local_types)
                origin = ""
                if target is None:
                    origin = resolve_call_target(node.func, imports)
                calls.append(ResolvedCall(node=node, target=target, origin=origin))
        return calls
