"""CACHE001 — cache-key soundness for runner-cached cells.

The disk cache addresses a cell result by ``(SCHEMA_VERSION, kind,
params, ambient)``.  Soundness therefore requires that *every* input the
cell body actually consumes is either (a) inside the parameter bundle,
(b) part of the ambient environment fingerprint
(:data:`repro.runner.cache.AMBIENT_ENV_KEYS`), or (c) provably unable to
alter the result's content.  Parameters are covered by construction —
``cache_key`` hashes the whole bundle — so the gap this pass closes is
**ambient inputs**: ``os.environ`` reads reachable from a cached cell
body.  An unsanctioned env read means two runs with different
environments can share one cache entry — the second silently returns the
first's bytes.

Cells that never cache (the self-timing ``scale``/``accel`` matrices)
are excluded from the proof; their wall-clock numbers are recomputed on
every run by design.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.flow.callgraph import FunctionIndex, FunctionInfo
from repro.lint.flow.purity import EXECUTOR_ENTRY, _chain_text, _reachable
from repro.lint.flow.summaries import FunctionSummary
from repro.lint.rules import Finding

RULE_ID = "CACHE001"
HINT = ("move the value into the cell's parameter bundle, add the variable "
        "to repro.runner.cache.AMBIENT_ENV_KEYS so it participates in the "
        "fingerprint, or prove it content-neutral and add it to the "
        "sanctioned list with a reason")

#: Cell kinds the drivers always run with the disk cache disabled (they
#: time themselves; a cached wall-clock number would be a lie).  Keep in
#: sync with the ``scale``/``accel`` drivers.
UNCACHED_CELL_KINDS = frozenset({"scale", "accel"})

#: Env vars a cached cell may read, with the reason each one cannot make
#: a cache hit return wrong bytes.
SANCTIONED_ENV: Dict[str, str] = {
    # Ambient-fingerprinted: participates in cache_key via AMBIENT_ENV_KEYS,
    # so differing values address different entries.
    "REPRO_TRACE_SAMPLE": "ambient-fingerprinted in cache_key",
    # Fail-stop gate: raises on violations instead of changing results.
    "REPRO_DETSAN": "sanitizer gate; raises, never alters results",
    # Memo policy: changes *when* values are recomputed, never their value.
    "REPRO_NO_MEMO": "memo bypass; value-transparent",
    "REPRO_MEMO_MAX": "memo capacity; value-transparent",
    # Side channels: directories results are exported to, not read from.
    "REPRO_METRICS_DIR": "metrics export side channel; not in results",
    "REPRO_RUN_CACHE": "the cache location itself",
    # Parallelism degree: serial-vs-jobs byte-identity is test-enforced.
    "REPRO_JOBS": "worker count; byte-identity enforced by tests",
}


def check_cache_keys(index: FunctionIndex,
                     summaries: Dict[str, FunctionSummary]) -> List[Finding]:
    roots: List[FunctionInfo] = []
    entry = index.by_qualname.get(EXECUTOR_ENTRY)
    if entry is not None:
        roots.append(entry)
    roots.extend(
        info for info in index.by_qualname.values()
        if info.cell_kind is not None and info.cell_kind not in UNCACHED_CELL_KINDS
    )
    roots.sort(key=lambda info: info.qualname)
    chains = _reachable(roots, summaries)
    findings: List[Finding] = []
    for qualname in sorted(chains):
        summary = summaries.get(qualname)
        if summary is None:
            continue
        module = summary.info.module
        for env in summary.env_reads:
            if env.key is not None and env.key in SANCTIONED_ENV:
                continue
            if env.key is None:
                message = (
                    f"env read with unresolvable key reachable from a cached "
                    f"cell via {_chain_text(chains[qualname])} — the cache "
                    f"fingerprint cannot be proven to cover it"
                )
            else:
                message = (
                    f"os.environ[{env.key}] reachable from a cached cell via "
                    f"{_chain_text(chains[qualname])} but absent from the "
                    f"cache fingerprint — cache hits may return bytes "
                    f"computed under a different environment"
                )
            findings.append(Finding(
                rule=RULE_ID,
                path=module.path,
                line=getattr(env.node, "lineno", 0),
                col=getattr(env.node, "col_offset", 0) + 1,
                message=message,
                hint=HINT,
            ))
    return findings
