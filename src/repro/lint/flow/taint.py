"""DET004 — interprocedural nondeterminism taint.

Sources: wall-clock reads, entropy, ``os.environ``, ``id()``, and
iteration over unordered sets.  Taint propagates through assignments,
attributes, containers, f-strings, and *returns* of project functions
(a whole-program fixpoint over per-function return-taint).  Sinks are
the places results leave the process: JSONL/file writers, ``json.dump``,
time-series samples, metric updates, and the return value of a
``@cell_kind`` function (the cell's result row).

Deliberate conservatisms, chosen to keep the false-positive rate at
zero on this codebase:

* taint does **not** flow into callee parameters — only back out of
  returns.  A helper that archives its argument must be flagged at the
  call site's own sink, or caught by a later pass;
* storing under a tainted *key* does not taint the container (``id()``
  is routinely used as an identity-dict key);
* implicit flows (tainted branch conditions) are ignored — CACHE001
  covers the env-gated-behavior case.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.callgraph import FunctionIndex, FunctionInfo, ResolvedCall
from repro.lint.flow.summaries import (
    _MUTATOR_METHODS,
    SOURCE_ORIGINS,
    FunctionSummary,
    resolve_env_key,
)
from repro.lint.rules import Finding, LintContext

RULE_ID = "DET004"
HINT = ("derive the value from the parameter bundle or sim-time, or move it "
        "to a measured/wall-clock-labelled field; suppress intentional "
        "provenance metadata with `# lint: allow=DET004` at the sink")

#: External calls whose result does not depend on argument *values* in a
#: nondeterminism-relevant way (cardinality/type predicates).
_SANITIZERS = frozenset({
    "len", "bool", "any", "all", "isinstance", "issubclass", "hasattr",
    "callable", "range", "type",
})

#: Receiver-name fragments whose ``.sample``/``.record`` is a series write.
_SERIESISH = ("series", "bank", "timeseries", "health", "monitor")

#: Metric update methods and the factory names that produce metric objects.
_METRIC_METHODS = frozenset({"inc", "observe"})
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


@dataclass
class _TaintState:
    """Flow-insensitive taint over one function's local names."""

    reasons: Dict[str, str]

    def get(self, name: str) -> Optional[str]:
        return self.reasons.get(name)

    def taint(self, name: str, reason: str) -> bool:
        if name in self.reasons:
            return False
        self.reasons[name] = reason
        return True


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


def _receiver_name(func: ast.Attribute) -> str:
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


class _FunctionTaint:
    """Taint analysis of a single function body."""

    def __init__(self, summary: FunctionSummary, index: FunctionIndex,
                 summaries: Dict[str, FunctionSummary],
                 context: LintContext) -> None:
        self.summary = summary
        self.info = summary.info
        self.index = index
        self.summaries = summaries
        self.context = context
        self.imports = index.imports.get(self.info.module.module, {})
        self.state = _TaintState(reasons={})
        #: call node -> resolved target/origin, from the summary pass.
        self.call_map: Dict[ast.Call, ResolvedCall] = {
            call.node: call for call in summary.calls
        }

    # -- expression taint ----------------------------------------------

    def expr_taint(self, expr: Optional[ast.expr]) -> Optional[str]:
        if expr is None or isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Name):
            return self.state.get(expr.id)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr)
        if isinstance(expr, ast.Attribute):
            return self.expr_taint(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.expr_taint(expr.value)
        if isinstance(expr, ast.Starred):
            return self.expr_taint(expr.value)
        if isinstance(expr, (ast.Lambda, ast.FunctionDef)):
            return None
        if isinstance(expr, ast.Dict):
            for part in list(expr.keys) + list(expr.values):
                if part is not None:
                    reason = self.expr_taint(part)
                    if reason:
                        return reason
            return None
        # Everything else: tainted iff any child expression is tainted.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                reason = self.expr_taint(child)
                if reason:
                    return reason
            elif isinstance(child, ast.comprehension):
                reason = self.expr_taint(child.iter)
                if reason:
                    return reason
        return None

    def _call_taint(self, node: ast.Call) -> Optional[str]:
        resolved = self.call_map.get(node)
        if resolved is not None and resolved.target is not None:
            callee = self.summaries.get(resolved.target.qualname)
            if callee is not None and callee.returns_taint:
                return f"{callee.returns_taint} via {resolved.target.name}()"
            return None
        origin = resolved.origin if resolved is not None else ""
        if origin in SOURCE_ORIGINS:
            return f"{origin}()"
        if origin in ("os.environ.get", "os.getenv"):
            key = resolve_env_key(node.args[0], self.info.module.module,
                                  self.imports, self.context) if node.args else None
            return f"os.environ[{key or '?'}]"
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "id":
                return "id()"
            if name in _SANITIZERS:
                return None
        # Unresolved/external call: propagate taint from arguments and the
        # receiver object (a method on a tainted object yields tainted data).
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            reason = self.expr_taint(arg)
            if reason:
                return reason
        if isinstance(node.func, ast.Attribute):
            return self.expr_taint(node.func.value)
        return None

    # -- statement pass ------------------------------------------------

    def _names_in(self, target: ast.expr) -> List[str]:
        return [leaf.id for leaf in ast.walk(target)
                if isinstance(leaf, ast.Name)]

    def propagate(self) -> Tuple[Optional[str], bool]:
        """One pass over the body; returns (return-taint, state-changed)."""
        changed = False
        returns: Optional[str] = None

        def note_target(target: ast.expr, reason: str) -> None:
            nonlocal changed
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    note_target(element, reason)
                return
            if isinstance(target, ast.Name):
                changed |= self.state.taint(target.id, reason)
            elif isinstance(target, ast.Attribute):
                # x.field = tainted: the object x now carries taint.
                for name in self._names_in(target.value):
                    changed |= self.state.taint(name, reason)
            elif isinstance(target, ast.Subscript):
                # d[k] = tainted taints d; a tainted *key* alone does not.
                for name in self._names_in(target.value):
                    changed |= self.state.taint(name, reason)
            elif isinstance(target, ast.Starred):
                note_target(target.value, reason)

        own_returns = self._own_returns()
        for node in ast.walk(self.info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None:
                    continue
                reason = self.expr_taint(value)
                if not reason:
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    note_target(target, reason)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                reason = self.expr_taint(node.iter)
                if reason:
                    note_target(node.target, reason)
                elif _is_set_expr(node.iter):
                    note_target(node.target, "unordered set iteration")
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is None:
                        continue
                    reason = self.expr_taint(item.context_expr)
                    if reason:
                        note_target(item.optional_vars, reason)
            elif isinstance(node, ast.comprehension):
                reason = self.expr_taint(node.iter)
                if reason:
                    note_target(node.target, reason)
                elif _is_set_expr(node.iter):
                    note_target(node.target, "unordered set iteration")
            elif isinstance(node, ast.NamedExpr):
                reason = self.expr_taint(node.value)
                if reason:
                    note_target(node.target, reason)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _MUTATOR_METHODS):
                # container.append(tainted) / d.update(tainted): the
                # receiver container now carries the taint.
                arguments = [*node.args, *(kw.value for kw in node.keywords)]
                for argument in arguments:
                    reason = self.expr_taint(argument)
                    if reason:
                        note_target(node.func.value, reason)
                        break
        for ret in own_returns:
            reason = self.expr_taint(ret.value)
            if reason:
                returns = reason
                break
        return returns, changed

    def _own_returns(self) -> List[ast.Return]:
        """Return statements of this function, not of nested defs."""
        returns: List[ast.Return] = []

        def scan(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, ast.Return):
                    returns.append(stmt)
                    continue
                scan([child for child in ast.iter_child_nodes(stmt)
                      if isinstance(child, ast.stmt)])

        scan(self.info.node.body)
        return returns

    def run_to_fixpoint(self) -> Optional[str]:
        returns: Optional[str] = None
        for _ in range(20):
            returns, changed = self.propagate()
            if not changed:
                break
        return returns

    # -- sinks ---------------------------------------------------------

    def find_sinks(self) -> List[Tuple[ast.AST, str, str]]:
        """(node, taint reason, sink description) triples for this body."""
        sinks: List[Tuple[ast.AST, str, str]] = []
        for node in ast.walk(self.info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.call_map.get(node)
            origin = resolved.origin if resolved is not None else ""
            if origin in ("json.dump", "json.dumps") and node.args:
                reason = self.expr_taint(node.args[0])
                if reason:
                    sinks.append((node, reason, f"{origin}()"))
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            receiver = _receiver_name(node.func).lower()
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            if attr == "write" and arguments:
                reason = self.expr_taint(arguments[0])
                if reason:
                    sinks.append((node, reason, "a file/stream .write()"))
            elif attr in ("sample", "record") and arguments and any(
                    tag in receiver for tag in _SERIESISH):
                for argument in arguments:
                    reason = self.expr_taint(argument)
                    if reason:
                        sinks.append(
                            (node, reason, f"a time-series .{attr}()"))
                        break
            elif arguments and (
                    attr in _METRIC_METHODS
                    or (attr == "set" and self._metric_receiver(node.func))):
                if attr in _METRIC_METHODS and not (
                        self._metric_receiver(node.func)
                        or any(tag in receiver for tag in
                               ("counter", "gauge", "metric", "hist"))):
                    continue
                reason = self.expr_taint(arguments[0])
                if reason:
                    sinks.append((node, reason, f"a metric .{attr}()"))
        if self.info.cell_kind is not None:
            for ret in self._own_returns():
                reason = self.expr_taint(ret.value)
                if reason:
                    sinks.append((
                        ret, reason,
                        f"the {self.info.cell_kind!r} cell's result row",
                    ))
        return sinks

    @staticmethod
    def _metric_receiver(func: ast.Attribute) -> bool:
        value = func.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            return value.func.attr in _METRIC_FACTORIES
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in _METRIC_FACTORIES
        return False


def analyze_taint(index: FunctionIndex,
                  summaries: Dict[str, FunctionSummary],
                  context: LintContext) -> List[Finding]:
    """Run the whole-program taint fixpoint; emit DET004 findings."""
    analyses: Dict[str, _FunctionTaint] = {}
    order = sorted(summaries)
    for qualname in order:
        analyses[qualname] = _FunctionTaint(
            summaries[qualname], index, summaries, context)
    # Whole-program fixpoint over per-function return taint.
    for _ in range(10):
        changed = False
        for qualname in order:
            analysis = analyses[qualname]
            analysis.state = _TaintState(reasons={})
            returns = analysis.run_to_fixpoint()
            summary = summaries[qualname]
            # Monotone: never retract taint once established.
            if returns is not None and summary.returns_taint is None:
                summary.returns_taint = returns
                changed = True
        if not changed:
            break
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for qualname in order:
        analysis = analyses[qualname]
        module = analysis.info.module
        for node, reason, sink in analysis.find_sinks():
            line = getattr(node, "lineno", 0)
            key = (module.path, line, sink)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                rule=RULE_ID,
                path=module.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=(f"nondeterministic data ({reason}) flows into "
                         f"{sink} in {analysis.info.qualname}"),
                hint=HINT,
            ))
    return findings
