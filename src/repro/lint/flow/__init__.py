"""Interprocedural dataflow passes layered on the per-file walker.

``run_flow`` builds the project call graph once, summarizes every
function, and runs the three whole-program passes:

* **DET004** — nondeterminism taint from sources to export sinks
  (:mod:`repro.lint.flow.taint`);
* **PAR001** / **PUR001** — parallel-purity of the executor's reachable
  set and argument-purity of memoized functions
  (:mod:`repro.lint.flow.purity`);
* **CACHE001** — ambient-input soundness of the runner cache fingerprint
  (:mod:`repro.lint.flow.cachekey`).

Findings honor the same ``# lint: allow=RULE`` suppressions and baseline
as the per-file rules, and carry the enclosing symbol for line-number-
independent baseline fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.flow import cachekey, purity, taint
from repro.lint.flow.callgraph import FunctionIndex
from repro.lint.flow.summaries import build_summaries
from repro.lint.rules import (
    Finding,
    LintContext,
    annotate_symbols,
    build_context,
)
from repro.lint.walker import ParsedModule


@dataclass(frozen=True)
class FlowRule:
    """Descriptor for one whole-program rule (for reports and --rules)."""

    id: str
    title: str
    hint: str


FLOW_RULES: Sequence[FlowRule] = (
    FlowRule(
        id=taint.RULE_ID,
        title="no nondeterminism taint into result/export sinks",
        hint=taint.HINT,
    ),
    FlowRule(
        id=purity.PAR_RULE_ID,
        title="no module-state writes reachable from the parallel executor",
        hint=purity.PAR_HINT,
    ),
    FlowRule(
        id=purity.PUR_RULE_ID,
        title="memoized functions are pure in their arguments",
        hint=purity.PUR_HINT,
    ),
    FlowRule(
        id=cachekey.RULE_ID,
        title="cached cells read no ambient inputs outside the fingerprint",
        hint=cachekey.HINT,
    ),
)

FLOW_RULES_BY_ID: Dict[str, FlowRule] = {rule.id: rule for rule in FLOW_RULES}


def run_flow(modules: Sequence[ParsedModule],
             context: Optional[LintContext] = None,
             rule_ids: Optional[Set[str]] = None) -> List[Finding]:
    """Run the whole-program passes over *modules*.

    *rule_ids* restricts output to a subset of the flow rules (None means
    all).  Findings are suppression-filtered, symbol-annotated, and sorted
    exactly like :func:`repro.lint.rules.run_rules` output, so the CLI can
    concatenate the two lists.
    """
    if context is None:
        context = build_context(modules)
    index = FunctionIndex(modules)
    summaries = build_summaries(index, context)
    findings: List[Finding] = []
    wanted = rule_ids if rule_ids is not None else set(FLOW_RULES_BY_ID)
    if taint.RULE_ID in wanted:
        findings.extend(taint.analyze_taint(index, summaries, context))
    if purity.PAR_RULE_ID in wanted:
        findings.extend(purity.check_parallel_purity(index, summaries))
    if purity.PUR_RULE_ID in wanted:
        findings.extend(purity.check_memo_purity(index, summaries))
    if cachekey.RULE_ID in wanted:
        findings.extend(cachekey.check_cache_keys(index, summaries))
    by_path = {module.path: module for module in modules}
    findings = [
        finding for finding in findings
        if not (finding.path in by_path
                and by_path[finding.path].allowed(finding.rule, finding.line))
    ]
    findings = annotate_symbols(modules, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
