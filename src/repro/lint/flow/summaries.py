"""Per-function effect summaries for the flow passes.

For every function in the :class:`~repro.lint.flow.callgraph.FunctionIndex`
this pass records, from a single AST walk:

* **calls** — resolved call sites (the call-graph edges);
* **env_reads** — ``os.environ`` / ``os.getenv`` reads with the key
  resolved through module string constants where possible;
* **source_calls** — direct nondeterminism sources (wall clock, entropy,
  ``id()``);
* **mutations** — writes to module-level mutable state: subscript stores,
  mutator-method calls (``.add``/``.update``/...), ``global`` rebinds,
  attribute stores on imported modules or project classes;
* **global_reads** — reads of module-level mutable containers (used by
  the memo-purity pass).

Names that are bound locally (parameters, assignments) shadow module
globals and are never reported — missing a mutation through an alias is
recoverable; flagging local state teaches people to sprinkle
suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.callgraph import FunctionIndex, FunctionInfo, ResolvedCall
from repro.lint.rules import LintContext, UnseededRandomRule, WallClockRule
from repro.lint.walker import resolve_call_target

#: Direct nondeterminism sources by dotted origin: every DET001 wall-clock
#: read plus the DET002 entropy sources.  ``id()`` is handled separately
#: (it is a builtin, not an import).
SOURCE_ORIGINS = frozenset(WallClockRule.BANNED) | frozenset(
    UnseededRandomRule.BANNED
) | frozenset(
    f"random.{name}" for name in UnseededRandomRule.GLOBAL_RANDOM_FNS
)

#: Constructors whose module-level result is a mutable container worth
#: tracking for parallel-purity.
_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "Counter", "WeakKeyDictionary", "WeakValueDictionary", "ChainMap",
})

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "add", "append", "extend", "update", "pop", "popitem", "clear",
    "remove", "discard", "insert", "setdefault", "appendleft", "extendleft",
})

_ENV_GET_ORIGINS = frozenset({"os.environ.get", "os.getenv"})

#: Ambient configuration env vars that are process-constant and either
#: content-neutral or ambient-fingerprinted in the runner cache key.
#: CACHE001 sanctions these for cached cells (see
#: :data:`repro.lint.flow.cachekey.SANCTIONED_ENV` for per-key reasons)
#: and PUR001 sanctions them for per-process memos — a single process
#: cannot observe two values of its own environment.
AMBIENT_SANCTIONED_ENV = frozenset({
    "REPRO_TRACE_SAMPLE",
    "REPRO_DETSAN",
    "REPRO_NO_MEMO",
    "REPRO_MEMO_MAX",
    "REPRO_METRICS_DIR",
    "REPRO_RUN_CACHE",
    "REPRO_JOBS",
})


@dataclass
class EnvRead:
    """One ``os.environ`` read; ``key`` is None when not statically known."""

    node: ast.AST
    key: Optional[str]


@dataclass
class SourceCall:
    """One direct nondeterminism source call (``time.time()``, ``id()``...)."""

    node: ast.Call
    origin: str


@dataclass
class Mutation:
    """One write to module-level state."""

    node: ast.AST
    target: str   # dotted name, e.g. "repro.runner.cells.CELL_KINDS"
    verb: str     # "subscript store", ".update()", "rebind", ...


@dataclass
class FunctionSummary:
    """Everything the flow passes need to know about one function."""

    info: FunctionInfo
    calls: List[ResolvedCall] = field(default_factory=list)
    env_reads: List[EnvRead] = field(default_factory=list)
    source_calls: List[SourceCall] = field(default_factory=list)
    mutations: List[Mutation] = field(default_factory=list)
    global_reads: List[Tuple[ast.AST, str]] = field(default_factory=list)
    #: Human-readable provenance when the return value can carry
    #: nondeterminism ("time.time() via _stamp()"); set by the taint pass.
    returns_taint: Optional[str] = None


def mutable_globals(index: FunctionIndex) -> Dict[str, Set[str]]:
    """module dotted name -> names bound to mutable containers at top level."""
    table: Dict[str, Set[str]] = {}
    for module in index.modules:
        names: Set[str] = set()
        for node in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            if not _is_mutable_container(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        table[module.module] = names
    return table


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _CONTAINER_CTORS
    return False


def resolve_env_key(expr: ast.expr, module_name: str,
                    imports: Dict[str, str],
                    context: LintContext) -> Optional[str]:
    """The literal value of an env-var key expression, when resolvable."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        local = context.module_constants.get(module_name, {})
        if expr.id in local:
            return local[expr.id]
        origin = imports.get(expr.id)
        if origin and "." in origin:
            origin_module, _, constant = origin.rpartition(".")
            return context.module_constants.get(origin_module, {}).get(constant)
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        origin = imports.get(expr.value.id)
        if origin:
            return context.module_constants.get(origin, {}).get(expr.attr)
    return None


def _dotted_chain(expr: ast.expr, imports: Dict[str, str]) -> str:
    """Dotted origin of an attribute chain rooted at an imported name."""
    return resolve_call_target(expr, imports)


def _locally_bound(info: FunctionInfo) -> Tuple[Set[str], Set[str]]:
    """(names bound in the function, names declared ``global``)."""
    bound: Set[str] = set()
    declared: Set[str] = set()
    args = info.node.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
        elif isinstance(node, ast.comprehension):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
    return bound, declared


def summarize_function(info: FunctionInfo, index: FunctionIndex,
                       context: LintContext,
                       mutable_table: Dict[str, Set[str]]) -> FunctionSummary:
    module = info.module
    imports = index.imports.get(module.module, {})
    own_mutables = mutable_table.get(module.module, set())
    bound, declared = _locally_bound(info)
    summary = FunctionSummary(info=info, calls=index.calls_in(info))

    def refers_to_global(name: str) -> bool:
        return name in own_mutables and (name not in bound or name in declared)

    def container_target(expr: ast.expr) -> Optional[str]:
        """Dotted name of the module-level container *expr* denotes, if any."""
        if isinstance(expr, ast.Name):
            if refers_to_global(expr.id):
                return f"{module.module}.{expr.id}"
            origin = imports.get(expr.id, "")
            head, _, leaf = origin.rpartition(".")
            if head in index.module_names and leaf in mutable_table.get(head, set()):
                return origin
            return None
        if isinstance(expr, ast.Attribute):
            dotted = _dotted_chain(expr, imports)
            head, _, leaf = dotted.rpartition(".")
            if head in index.module_names and leaf in mutable_table.get(head, set()):
                return dotted
        return None

    def note_store_target(target: ast.expr, verb: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared:
                summary.mutations.append(Mutation(
                    node=target, target=f"{module.module}.{target.id}",
                    verb=verb,
                ))
        elif isinstance(target, ast.Subscript):
            dotted = container_target(target.value)
            if dotted:
                summary.mutations.append(Mutation(
                    node=target, target=dotted, verb="subscript store",
                ))
        elif isinstance(target, ast.Attribute):
            value = target.value
            if isinstance(value, ast.Name) and value.id not in bound:
                origin = imports.get(value.id, "")
                if origin in index.module_names:
                    summary.mutations.append(Mutation(
                        node=target, target=f"{origin}.{target.attr}",
                        verb="module attribute store",
                    ))
                else:
                    cls = index.resolve_class_name(value.id, module)
                    if cls is not None:
                        summary.mutations.append(Mutation(
                            node=target,
                            target=f"{cls.qualname}.{target.attr}",
                            verb="class attribute store",
                        ))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                note_store_target(element, verb)

    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            verb = "augmented rebind" if isinstance(node, ast.AugAssign) else "rebind"
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                note_store_target(target, verb)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                note_store_target(target, "delete")
        elif isinstance(node, ast.Call):
            func = node.func
            origin = resolve_call_target(func, imports)
            if isinstance(func, ast.Name) and func.id == "id" \
                    and func.id not in bound:
                summary.source_calls.append(SourceCall(node=node, origin="id"))
            elif origin in SOURCE_ORIGINS:
                summary.source_calls.append(SourceCall(node=node, origin=origin))
            elif origin in _ENV_GET_ORIGINS:
                key = resolve_env_key(node.args[0], module.module, imports,
                                      context) if node.args else None
                summary.env_reads.append(EnvRead(node=node, key=key))
            if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
                dotted = container_target(func.value)
                if dotted:
                    summary.mutations.append(Mutation(
                        node=node, target=dotted, verb=f".{func.attr}()",
                    ))
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load):
                dotted = _dotted_chain(node.value, imports)
                if dotted == "os.environ":
                    key = resolve_env_key(node.slice, module.module, imports,
                                          context)
                    summary.env_reads.append(EnvRead(node=node, key=key))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if refers_to_global(node.id):
                summary.global_reads.append(
                    (node, f"{module.module}.{node.id}")
                )
    return summary


def build_summaries(index: FunctionIndex,
                    context: LintContext) -> Dict[str, FunctionSummary]:
    """Summaries for every indexed function, keyed by qualified name."""
    mutable_table = mutable_globals(index)
    return {
        qualname: summarize_function(info, index, context, mutable_table)
        for qualname, info in index.by_qualname.items()
    }
