"""PAR001 / PUR001 — parallel-purity and memo-purity proofs.

**PAR001** walks the call graph from ``repro.runner.cells.execute_cell``
(and every ``@cell_kind`` function) and flags any reachable write to
module-level state.  Cells execute concurrently under ``--jobs``; a
module-global write from inside a cell is a cross-worker race and, worse,
makes results depend on execution *order*.  A short allowlist sanctions
the version-keyed memos and the sanitizer depth counter, whose effects
are value-transparent by construction (same key -> same value).

**PUR001** proves memoized functions pure in their arguments: anything
decorated ``functools.lru_cache``/``functools.cache``, plus inline
thunks handed to the FIFO memo ``repro.experiments.common.cached``.
A memo that reads the clock, the environment, or mutable module state
returns whatever happened to be true at *first* call — the cache then
pins that accident forever.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.flow.callgraph import FunctionIndex, FunctionInfo
from repro.lint.flow.summaries import AMBIENT_SANCTIONED_ENV, FunctionSummary
from repro.lint.rules import Finding

PAR_RULE_ID = "PAR001"
PAR_HINT = ("cells run concurrently under --jobs: keep all state inside the "
            "cell's own objects, or route memos through the sanctioned "
            "version-keyed caches (common.cached, routing.finger_table_for)")

PUR_RULE_ID = "PUR001"
PUR_HINT = ("a memoized function must be a pure function of its arguments — "
            "hoist the clock/env/global read out to the caller and pass the "
            "value in as a parameter")

#: Functions whose module-state writes are sanctioned: version-keyed memos
#: (same key always maps to the same value, so races are benign) and the
#: sanitizer's reentrancy counter.
SANCTIONED_MUTATORS = frozenset({
    "repro.experiments.common.cached",
    "repro.experiments.common.clear_cache",
    "repro.dht.routing.finger_table_for",
    "repro.lint.detsan.determinism_sanitizer",
    "repro.obs.events.register_kind",
})

#: Roots for the parallel-purity proof, beyond @cell_kind functions.
EXECUTOR_ENTRY = "repro.runner.cells.execute_cell"

#: Decorator origins that mark a function as argument-memoized.
_MEMO_DECORATORS = frozenset({
    "functools.lru_cache", "lru_cache", "functools.cache", "cache",
})

#: The FIFO memo helper: ``cached(key, thunk)`` — the thunk must be pure.
_FIFO_MEMO = "repro.experiments.common.cached"


def _reachable(roots: Sequence[FunctionInfo],
               summaries: Dict[str, FunctionSummary],
               prune: frozenset = frozenset(),
               ) -> Dict[str, Tuple[str, ...]]:
    """qualname -> shortest call chain (as qualnames) from any root.

    Functions in *prune* are neither visited nor traversed through —
    used to treat the sanctioned memo machinery as an opaque trusted unit.
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: List[Tuple[FunctionInfo, Tuple[str, ...]]] = [
        (root, (root.qualname,)) for root in roots
        if root.qualname not in prune
    ]
    while queue:
        info, chain = queue.pop(0)
        if info.qualname in chains:
            continue
        chains[info.qualname] = chain
        summary = summaries.get(info.qualname)
        if summary is None:
            continue
        for call in summary.calls:
            if (call.target is not None
                    and call.target.qualname not in chains
                    and call.target.qualname not in prune):
                queue.append((call.target, chain + (call.target.qualname,)))
    return chains


def _chain_text(chain: Tuple[str, ...]) -> str:
    names = [qual.rsplit(".", 1)[-1] for qual in chain]
    return " -> ".join(f"{name}()" for name in names)


def check_parallel_purity(index: FunctionIndex,
                          summaries: Dict[str, FunctionSummary]
                          ) -> List[Finding]:
    roots: List[FunctionInfo] = []
    entry = index.by_qualname.get(EXECUTOR_ENTRY)
    if entry is not None:
        roots.append(entry)
    roots.extend(
        info for info in index.by_qualname.values()
        if info.cell_kind is not None
    )
    roots.sort(key=lambda info: info.qualname)
    chains = _reachable(roots, summaries, prune=SANCTIONED_MUTATORS)
    findings: List[Finding] = []
    for qualname in sorted(chains):
        summary = summaries.get(qualname)
        if summary is None:
            continue
        module = summary.info.module
        for mutation in summary.mutations:
            findings.append(Finding(
                rule=PAR_RULE_ID,
                path=module.path,
                line=getattr(mutation.node, "lineno", 0),
                col=getattr(mutation.node, "col_offset", 0) + 1,
                message=(f"{mutation.verb} of module state {mutation.target} "
                         f"reachable from the parallel executor via "
                         f"{_chain_text(chains[qualname])}"),
                hint=PAR_HINT,
            ))
    return findings


def _memoized_functions(index: FunctionIndex) -> List[FunctionInfo]:
    memoized = []
    for info in index.by_qualname.values():
        for decorator in info.decorators:
            if decorator in _MEMO_DECORATORS:
                memoized.append(info)
                break
    memoized.sort(key=lambda info: info.qualname)
    return memoized


def _mutated_targets(summaries: Dict[str, FunctionSummary]) -> frozenset:
    """Module-level containers actually written somewhere in the project.

    Reading a module-level list/dict that nothing ever mutates is a
    constant-table lookup, not an impurity.
    """
    return frozenset(
        mutation.target
        for summary in summaries.values()
        for mutation in summary.mutations
    )


def _impurities(root: FunctionInfo,
                summaries: Dict[str, FunctionSummary]
                ) -> List[Tuple[ast.AST, str, Tuple[str, ...]]]:
    """(site, description, chain) for every impurity reachable from *root*.

    The sanctioned memo machinery is pruned wholesale: its env reads
    (memo policy knobs) and container writes are trusted as a unit.
    Ambient configuration reads (:data:`AMBIENT_SANCTIONED_ENV`) are
    sanctioned — they are process-constant, and the disk cache
    fingerprints the ones that shape result content.
    """
    found: List[Tuple[ast.AST, str, Tuple[str, ...]]] = []
    chains = _reachable([root], summaries, prune=SANCTIONED_MUTATORS)
    mutated = _mutated_targets(summaries)
    for qualname in sorted(chains):
        summary = summaries.get(qualname)
        if summary is None:
            continue
        chain = chains[qualname]
        for source in summary.source_calls:
            found.append((source.node, f"calls {source.origin}()", chain))
        for env in summary.env_reads:
            if env.key in AMBIENT_SANCTIONED_ENV:
                continue
            key = env.key or "?"
            found.append((env.node, f"reads os.environ[{key}]", chain))
        for mutation in summary.mutations:
            found.append((
                mutation.node,
                f"{mutation.verb} of module state {mutation.target}", chain,
            ))
        for node, name in summary.global_reads:
            if name in mutated:
                found.append(
                    (node, f"reads mutable module state {name}", chain))
    return found


def check_memo_purity(index: FunctionIndex,
                      summaries: Dict[str, FunctionSummary]
                      ) -> List[Finding]:
    findings: List[Finding] = []
    for info in _memoized_functions(index):
        module = info.module
        for _site, description, chain in _impurities(info, summaries):
            findings.append(Finding(
                rule=PUR_RULE_ID,
                path=module.path,
                line=info.node.lineno,
                col=info.node.col_offset + 1,
                message=(f"memoized {info.qualname} is impure: {description} "
                         f"(via {_chain_text(chain)})"),
                hint=PUR_HINT,
            ))
    # Thunks handed to the FIFO memo: cached(key, lambda: ...) — check the
    # lambda body (and any local function passed by name) for impurities.
    for qualname in sorted(summaries):
        summary = summaries[qualname]
        module = summary.info.module
        for call in summary.calls:
            if call.target is None or call.target.qualname != _FIFO_MEMO:
                continue
            if len(call.node.args) < 2:
                continue
            thunk = call.node.args[1]
            findings.extend(_check_thunk(thunk, summary, index, summaries))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _check_thunk(thunk: ast.expr, caller: FunctionSummary,
                 index: FunctionIndex,
                 summaries: Dict[str, FunctionSummary]) -> List[Finding]:
    module = caller.info.module
    findings: List[Finding] = []

    def flag(site: ast.AST, description: str) -> None:
        findings.append(Finding(
            rule=PUR_RULE_ID,
            path=module.path,
            line=getattr(site, "lineno", 0),
            col=getattr(site, "col_offset", 0) + 1,
            message=(f"memo thunk passed to common.cached in "
                     f"{caller.info.qualname} is impure: {description}"),
            hint=PUR_HINT,
        ))

    if isinstance(thunk, ast.Name):
        # A local def or project function passed by name.  Findings anchor
        # at the thunk expression — the impurity site may be in another
        # module, but the memo decision happens here.
        target = _resolve_thunk_name(thunk.id, caller, index)
        if target is not None:
            for _site, description, chain in _impurities(target, summaries):
                flag(thunk, f"{description} (via {_chain_text(chain)})")
        return findings

    if isinstance(thunk, ast.Lambda):
        # Direct sources inside the lambda body, plus impure resolved calls.
        lambda_sources = {
            source.node for source in caller.source_calls
        }
        lambda_envs = {env.node for env in caller.env_reads}
        for node in ast.walk(thunk):
            if node in lambda_sources:
                for source in caller.source_calls:
                    if source.node is node:
                        flag(node, f"calls {source.origin}()")
            elif node in lambda_envs:
                for env in caller.env_reads:
                    if env.node is node:
                        flag(node, f"reads os.environ[{env.key or '?'}]")
        for call in caller.calls:
            if call.target is None:
                continue
            if not _node_within(call.node, thunk):
                continue
            for _site, description, chain in _impurities(
                    call.target, summaries):
                flag(call.node, f"{description} (via {_chain_text(chain)})")
    return findings


def _resolve_thunk_name(name: str, caller: FunctionSummary,
                        index: FunctionIndex) -> Optional[FunctionInfo]:
    nested = f"{caller.info.qualname}.{name}"
    if nested in index.by_qualname:
        return index.by_qualname[nested]
    symbols = index.module_symbols.get(caller.info.module.module, {})
    qual = symbols.get(name)
    if qual is not None and qual in index.by_qualname:
        return index.by_qualname[qual]
    return None


def _node_within(node: ast.AST, container: ast.AST) -> bool:
    return any(node is candidate for candidate in ast.walk(container))
