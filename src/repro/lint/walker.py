"""File discovery and parsing for the invariant linter.

The walker turns a set of root paths into :class:`ParsedModule` objects:
the AST, the raw source lines, the module's dotted name (derived from the
nearest ``src`` layout or package root), and the per-line suppression
table parsed from ``# lint: allow=RULE[,RULE]`` comments.

Everything downstream is pure: rules consume parsed modules and produce
findings; no rule re-reads the filesystem.  A file that cannot be read or
parsed raises :class:`LintToolError`, which the CLI maps to exit code 2 —
tool failures must never masquerade as a clean (or dirty) run.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set


class LintToolError(Exception):
    """The linter itself failed (unreadable path, syntax error, bad args)."""


#: Suppression comment: ``# lint: allow=DET001`` or ``allow=DET001,KEY001``.
#: Applies to the physical line it sits on (inline or the line above).
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow=([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)")


@dataclass
class ParsedModule:
    """One parsed Python source file, ready for rule passes."""

    path: str                 # path as given/joined (used in reports)
    module: str               # dotted module name, e.g. "repro.dht.ring"
    tree: ast.Module
    lines: List[str]          # source lines, 1-indexed via lines[lineno - 1]
    #: line number -> rule ids suppressed on that line
    allows: Dict[int, Set[str]] = field(default_factory=dict)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed(self, rule_id: str, lineno: int) -> bool:
        """True when *rule_id* is suppressed at *lineno*.

        A suppression comment covers its own line and, when it is the only
        thing on its line, the line directly below (comment-above style).
        """
        return rule_id in self.allows.get(lineno, ())


def _parse_allows(source: str) -> Dict[int, Set[str]]:
    allows: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        allows.setdefault(lineno, set()).update(rules)
        if line.lstrip().startswith("#"):
            # Comment-only line: the suppression targets the next line.
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows


def module_name_for(path: str) -> str:
    """Dotted module name of *path*, anchored at a ``src`` dir or package root."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Prefer the segment after the last "src"; else walk up while __init__.py
    # exists, so tests/benchmarks paths still get stable short names.
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        return ".".join(parts[anchor + 1:])
    directory = os.path.dirname(os.path.abspath(path))
    package: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        package.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    package.reverse()
    stem = os.path.basename(path)
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    if stem != "__init__":
        package.append(stem)
    return ".".join(package) if package else stem


def parse_module(path: str) -> ParsedModule:
    """Read and parse one file; :class:`LintToolError` on any failure."""
    try:
        with tokenize.open(path) as handle:  # honors PEP 263 encodings
            source = handle.read()
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        raise LintToolError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintToolError(f"cannot parse {path}: {exc}") from exc
    return ParsedModule(
        path=path,
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
        allows=_parse_allows(source),
    )


def iter_python_files(roots: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under *roots* in sorted, deterministic order."""
    seen: Set[str] = set()
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(".py") and root not in seen:
                seen.add(root)
                yield root
            continue
        if not os.path.isdir(root):
            raise LintToolError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                if path not in seen:
                    seen.add(path)
                    yield path


def parse_tree(roots: Sequence[str]) -> List[ParsedModule]:
    """Parse every Python file under *roots* (deterministic order)."""
    return [parse_module(path) for path in iter_python_files(roots)]


def imported_names(tree: ast.Module) -> Dict[str, str]:
    """Map of local name -> dotted origin for a module's imports.

    ``import time`` maps ``time -> time``; ``import numpy as np`` maps
    ``np -> numpy``; ``from datetime import datetime as dt`` maps
    ``dt -> datetime.datetime``.  Only top-of-tree and function-local
    imports are walked (the whole tree, in fact), which matches how the
    determinism rules resolve call targets.
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                names[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: keep the tail, best effort
                base = node.module or ""
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{base}.{alias.name}" if base else alias.name
    return names


def resolve_call_target(node: ast.AST, imports: Dict[str, str]) -> str:
    """Dotted origin of a call target, e.g. ``time.time`` or ``uuid.uuid4``.

    Returns ``""`` when the target cannot be statically resolved (calls on
    arbitrary objects, subscripts, etc.) — unresolvable targets are never
    flagged, keeping the rules false-positive-averse.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    root = imports.get(current.id)
    if root is None:
        return ""
    parts.append(root)
    return ".".join(reversed(parts))
