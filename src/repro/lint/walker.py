"""File discovery and parsing for the invariant linter.

The walker turns a set of root paths into :class:`ParsedModule` objects:
the AST, the raw source lines, the module's dotted name (derived from the
nearest ``src`` layout or package root), and the per-line suppression
table parsed from ``# lint: allow=RULE[,RULE]`` comments.

Everything downstream is pure: rules consume parsed modules and produce
findings; no rule re-reads the filesystem.  A file that cannot be read or
parsed raises :class:`LintToolError`, which the CLI maps to exit code 2 —
tool failures must never masquerade as a clean (or dirty) run.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple


class LintToolError(Exception):
    """The linter itself failed (unreadable path, syntax error, bad args)."""


#: Suppression directive, anchored at the start of a *comment token*:
#: ``# lint: allow=RULEID`` (one id or a comma list).  Matching real
#: comment tokens — not raw source lines — keeps mentions of the syntax
#: inside docstrings and string literals from acting as suppressions.
_ALLOW_RE = re.compile(r"^#\s*lint:\s*allow=([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)")


@dataclass
class AllowComment:
    """One ``# lint: allow=...`` comment, for suppression auditing."""

    lineno: int               # physical line the comment sits on
    rules: Tuple[str, ...]    # rule ids it names, sorted
    comment_only: bool        # True when the line holds nothing else

    def covers(self) -> Tuple[int, ...]:
        """Line numbers this comment suppresses findings on."""
        if self.comment_only:
            return (self.lineno, self.lineno + 1)
        return (self.lineno,)


@dataclass
class ParsedModule:
    """One parsed Python source file, ready for rule passes."""

    path: str                 # path as given/joined (used in reports)
    module: str               # dotted module name, e.g. "repro.dht.ring"
    tree: ast.Module
    lines: List[str]          # source lines, 1-indexed via lines[lineno - 1]
    #: line number -> rule ids suppressed on that line
    allows: Dict[int, Set[str]] = field(default_factory=dict)
    #: every suppression comment, for ``--audit-suppressions``
    allow_comments: List[AllowComment] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed(self, rule_id: str, lineno: int) -> bool:
        """True when *rule_id* is suppressed at *lineno*.

        A suppression comment covers its own line and, when it is the only
        thing on its line, the line directly below (comment-above style).
        """
        return rule_id in self.allows.get(lineno, ())


def _parse_allow_comments(source: str) -> List[AllowComment]:
    lines = source.splitlines()
    comments: List[AllowComment] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Callers only reach here after a successful ast.parse, so this is
        # a theoretical path; degrade to "no suppressions" rather than die.
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.match(token.string)
        if not match:
            continue
        lineno = token.start[0]
        line = lines[lineno - 1] if 1 <= lineno <= len(lines) else ""
        rules = sorted({part.strip() for part in match.group(1).split(",")})
        comments.append(AllowComment(
            lineno=lineno,
            rules=tuple(rules),
            # Comment-only line: the suppression targets the next line too.
            comment_only=line.lstrip().startswith("#"),
        ))
    return comments


def _parse_allows(source: str) -> Dict[int, Set[str]]:
    allows: Dict[int, Set[str]] = {}
    for comment in _parse_allow_comments(source):
        for lineno in comment.covers():
            allows.setdefault(lineno, set()).update(comment.rules)
    return allows


def module_name_for(path: str) -> str:
    """Dotted module name of *path*, anchored at a ``src`` dir or package root."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Prefer the segment after the last "src"; else walk up while __init__.py
    # exists, so tests/benchmarks paths still get stable short names.
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        return ".".join(parts[anchor + 1:])
    directory = os.path.dirname(os.path.abspath(path))
    package: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        package.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    package.reverse()
    stem = os.path.basename(path)
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    if stem != "__init__":
        package.append(stem)
    return ".".join(package) if package else stem


def parse_module(path: str) -> ParsedModule:
    """Read and parse one file; :class:`LintToolError` on any failure."""
    try:
        with tokenize.open(path) as handle:  # honors PEP 263 encodings
            source = handle.read()
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        raise LintToolError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintToolError(f"cannot parse {path}: {exc}") from exc
    return ParsedModule(
        path=path,
        module=module_name_for(path),
        tree=tree,
        lines=source.splitlines(),
        allows=_parse_allows(source),
        allow_comments=_parse_allow_comments(source),
    )


def iter_python_files(roots: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under *roots* in sorted, deterministic order."""
    seen: Set[str] = set()
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(".py") and root not in seen:
                seen.add(root)
                yield root
            continue
        if not os.path.isdir(root):
            raise LintToolError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                if path not in seen:
                    seen.add(path)
                    yield path


def parse_tree(roots: Sequence[str]) -> List[ParsedModule]:
    """Parse every Python file under *roots* (deterministic order)."""
    return [parse_module(path) for path in iter_python_files(roots)]


def imported_names(tree: ast.Module) -> Dict[str, str]:
    """Map of local name -> dotted origin for a module's imports.

    ``import time`` maps ``time -> time``; ``import numpy as np`` maps
    ``np -> numpy``; ``from datetime import datetime as dt`` maps
    ``dt -> datetime.datetime``.  Only top-of-tree and function-local
    imports are walked (the whole tree, in fact), which matches how the
    determinism rules resolve call targets.
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                names[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: keep the tail, best effort
                base = node.module or ""
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{base}.{alias.name}" if base else alias.name
    return names


def resolve_call_target(node: ast.AST, imports: Dict[str, str]) -> str:
    """Dotted origin of a call target, e.g. ``time.time`` or ``uuid.uuid4``.

    Returns ``""`` when the target cannot be statically resolved (calls on
    arbitrary objects, subscripts, etc.) — unresolvable targets are never
    flagged, keeping the rules false-positive-averse.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    root = imports.get(current.id)
    if root is None:
        return ""
    parts.append(root)
    return ".".join(reversed(parts))
