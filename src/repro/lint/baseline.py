"""Checked-in baseline of grandfathered findings.

A baseline lets the linter land with strict gating while pre-existing
violations are burned down: known findings are *suppressed* (reported but
not fatal), anything new fails the run, and entries whose violation has
been fixed show up as *stale* so the file shrinks monotonically toward the
goal state — an empty ``entries`` list.

Fingerprints are ``RULE:path:sha1(stripped-source-line)[:8]`` — stable
across unrelated edits that shift line numbers, invalidated the moment the
offending line itself changes.  Duplicate identical lines are handled as a
multiset (each occurrence needs its own entry).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Finding
from repro.lint.walker import LintToolError

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


def _line_hash(line: str) -> str:
    return hashlib.sha1(line.strip().encode("utf-8")).hexdigest()[:8]


def fingerprint(finding: Finding, source_line: str) -> str:
    """Stable identity of one finding: rule, file, and offending line text."""
    path = finding.path.replace(os.sep, "/")
    return f"{finding.rule}:{path}:{_line_hash(source_line)}"


@dataclass
class Baseline:
    """The grandfathered-finding multiset plus its on-disk location."""

    path: str
    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read *path*; a missing file is an empty baseline (the goal state)."""
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise LintToolError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise LintToolError(f"baseline {path} is not a lint baseline file")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise LintToolError(
                f"baseline {path} has version {version!r}, expected {BASELINE_VERSION}"
            )
        entries = payload["entries"]
        if not isinstance(entries, list) or not all(
            isinstance(e, str) for e in entries
        ):
            raise LintToolError(f"baseline {path}: entries must be strings")
        return cls(path=path, entries=Counter(entries))

    def save(self) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro.lint findings. The goal state is an "
                "empty list: fix the code, not the baseline."
            ),
            "entries": sorted(self.entries.elements()),
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return sum(self.entries.values())


def partition(
    findings: Sequence[Finding],
    fingerprints: Sequence[str],
    baseline: Baseline,
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, suppressed) and list stale baseline entries.

    *fingerprints* is parallel to *findings*.  Each baseline entry absorbs
    at most as many findings as its multiplicity; entries with leftover
    multiplicity are stale (the violation they recorded is gone).
    """
    remaining = Counter(baseline.entries)
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for finding, print_ in zip(findings, fingerprints):
        if remaining.get(print_, 0) > 0:
            remaining[print_] -= 1
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = sorted(remaining.elements())
    return new, suppressed, stale


def update(baseline: Baseline, fingerprints: Sequence[str]) -> Baseline:
    """A fresh baseline recording exactly the current findings."""
    return Baseline(path=baseline.path, entries=Counter(fingerprints))


def fingerprints_for(
    findings: Sequence[Finding], sources: Dict[str, List[str]]
) -> List[str]:
    """Fingerprints parallel to *findings*; *sources* maps path -> lines."""
    prints: List[str] = []
    for finding in findings:
        lines = sources.get(finding.path, [])
        line = lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
        prints.append(fingerprint(finding, line))
    return prints
