"""Checked-in baseline of grandfathered findings.

A baseline lets the linter land with strict gating while pre-existing
violations are burned down: known findings are *suppressed* (reported but
not fatal), anything new fails the run, and entries whose violation has
been fixed show up as *stale* so the file shrinks monotonically toward the
goal state — an empty ``entries`` list.

Fingerprints (v2) are ``RULE:qualified-symbol:sha1(normalized-line)[:8]``
— the enclosing def/class's dotted name plus the whitespace-normalized
offending line.  Moving a function to another file, reordering defs, or
reformatting indentation does not churn the baseline; editing the
offending line (or renaming its function) invalidates the entry, exactly
when a human should re-look.  The loader also accepts v1 files
(``RULE:path:sha1(stripped-line)[:8]``) so existing baselines keep
working; saving always writes v2.  Duplicate identical findings are
handled as a multiset (each occurrence needs its own entry).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.rules import Finding
from repro.lint.walker import LintToolError

BASELINE_VERSION = 2
#: Versions :meth:`Baseline.load` accepts; :meth:`Baseline.save` always
#: writes the current one.
ACCEPTED_VERSIONS = (1, 2)
DEFAULT_BASELINE = "lint-baseline.json"


def _normalized_hash(line: str) -> str:
    normalized = " ".join(line.split())
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:8]


def fingerprint(finding: Finding, source_line: str) -> str:
    """v2 identity of one finding: rule, enclosing symbol, line text.

    Falls back to the file path when the finding carries no symbol (a
    caller outside :func:`repro.lint.rules.run_rules`).
    """
    anchor = finding.symbol or finding.path.replace(os.sep, "/")
    return f"{finding.rule}:{anchor}:{_normalized_hash(source_line)}"


def legacy_fingerprint(finding: Finding, source_line: str) -> str:
    """v1 identity (path-anchored), kept so old baselines still match."""
    path = finding.path.replace(os.sep, "/")
    digest = hashlib.sha1(source_line.strip().encode("utf-8")).hexdigest()[:8]
    return f"{finding.rule}:{path}:{digest}"


@dataclass
class Baseline:
    """The grandfathered-finding multiset plus its on-disk location."""

    path: str
    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read *path*; a missing file is an empty baseline (the goal state)."""
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise LintToolError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise LintToolError(f"baseline {path} is not a lint baseline file")
        version = payload.get("version")
        if version not in ACCEPTED_VERSIONS:
            raise LintToolError(
                f"baseline {path} has version {version!r}, expected one of "
                f"{ACCEPTED_VERSIONS}"
            )
        entries = payload["entries"]
        if not isinstance(entries, list) or not all(
            isinstance(e, str) for e in entries
        ):
            raise LintToolError(f"baseline {path}: entries must be strings")
        return cls(path=path, entries=Counter(entries))

    def save(self) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro.lint findings. The goal state is an "
                "empty list: fix the code, not the baseline."
            ),
            "entries": sorted(self.entries.elements()),
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return sum(self.entries.values())


def partition(
    findings: Sequence[Finding],
    fingerprints: Sequence[str],
    baseline: Baseline,
    legacy_fingerprints: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, suppressed) and list stale baseline entries.

    *fingerprints* is parallel to *findings* (v2 format); when
    *legacy_fingerprints* is given, a finding whose v2 print misses the
    baseline is also tried under its v1 print, so a v1 baseline file keeps
    suppressing until it is rewritten.  Each baseline entry absorbs at
    most as many findings as its multiplicity; entries with leftover
    multiplicity are stale (the violation they recorded is gone).
    """
    remaining = Counter(baseline.entries)
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for position, (finding, print_) in enumerate(zip(findings, fingerprints)):
        if remaining.get(print_, 0) > 0:
            remaining[print_] -= 1
            suppressed.append(finding)
            continue
        if legacy_fingerprints is not None:
            old_print = legacy_fingerprints[position]
            if remaining.get(old_print, 0) > 0:
                remaining[old_print] -= 1
                suppressed.append(finding)
                continue
        new.append(finding)
    stale = sorted(remaining.elements())
    return new, suppressed, stale


def update(baseline: Baseline, fingerprints: Sequence[str]) -> Baseline:
    """A fresh baseline recording exactly the current findings."""
    return Baseline(path=baseline.path, entries=Counter(fingerprints))


def _source_line(finding: Finding, sources: Dict[str, List[str]]) -> str:
    lines = sources.get(finding.path, [])
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1]
    return ""


def fingerprints_for(
    findings: Sequence[Finding], sources: Dict[str, List[str]]
) -> List[str]:
    """v2 fingerprints parallel to *findings*; *sources* maps path -> lines."""
    return [
        fingerprint(finding, _source_line(finding, sources))
        for finding in findings
    ]


def legacy_fingerprints_for(
    findings: Sequence[Finding], sources: Dict[str, List[str]]
) -> List[str]:
    """v1 (path-anchored) fingerprints parallel to *findings*."""
    return [
        legacy_fingerprint(finding, _source_line(finding, sources))
        for finding in findings
    ]
