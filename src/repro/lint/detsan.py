"""Runtime determinism sanitizer: make hidden entropy loud.

The static rules (DET001/DET002) catch what the AST can see; this module
catches what it cannot — a dependency, a dynamic dispatch, an ``eval`` —
by patching the process-wide entropy entry points to *raise* while a
simulation (or a test) runs:

* wall clock: ``time.time``/``time_ns``/``monotonic``/``monotonic_ns``
  (``time.perf_counter`` stays available for wall-clock *reporting*)
* the module-global RNG: ``random.random``, ``random.randint``, ... (seeded
  ``random.Random(seed)`` instances are untouched — they are the sanctioned
  mechanism)
* OS entropy: ``os.urandom``, ``uuid.uuid4``/``uuid1``
* ``datetime.datetime``/``datetime.date`` ``now``/``utcnow``/``today``
  (modules that did ``from datetime import datetime`` before the sanitizer
  activated keep the real class — a documented blind spot the static
  DET001 rule covers)

Enable with ``$REPRO_DETSAN=1``: the runner's cell executor
(:func:`repro.runner.cells.execute_cell`) and the tier-1 ``conftest``
wrap their work in :func:`maybe_sanitize`, so both CI jobs and local runs
get the guarantee without code changes.  The patch set is intentionally
scoped to the sanitized region — process-pool plumbing (which legitimately
uses ``os.urandom`` for auth keys) runs outside it.

The guards are *caller-aware*: they raise only when the offending frame
belongs to project code (``repro``, ``tests``, ``benchmarks``, or a
``__main__`` script) and delegate to the real function otherwise, so
harness internals (pytest timing, hypothesis bookkeeping) keep working
while any project-code entropy read inside the region is fatal.
"""

from __future__ import annotations

import os
import random
import sys
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator, List, Tuple

import datetime as _datetime_module

#: Environment knob: "1"/"true"/"yes"/"on" enables the sanitizer in the
#: runner executor and the test suite.
DETSAN_ENV = "REPRO_DETSAN"


class DeterminismViolation(RuntimeError):
    """A sanitized region touched wall clock or unseeded entropy."""


def enabled_from_env() -> bool:
    return os.environ.get(DETSAN_ENV, "").strip().lower() in ("1", "true", "yes", "on")


#: (module, attribute) pairs replaced with raising stubs while active.
_TIME_PATCHES: Tuple[str, ...] = ("time", "time_ns", "monotonic", "monotonic_ns")
_RANDOM_PATCHES: Tuple[str, ...] = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "expovariate", "gauss", "normalvariate",
    "lognormvariate", "betavariate", "gammavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "binomialvariate",
)
_UUID_PATCHES: Tuple[str, ...] = ("uuid4", "uuid1")


#: Top-level package names whose frames trip the guard.  Third-party code
#: (pytest, hypothesis) legitimately reads the clock for its own harness
#: bookkeeping; the invariant protects *project* code, so the guard checks
#: who is calling before raising and delegates otherwise.
_GUARDED_ROOTS = frozenset({"repro", "tests", "benchmarks", "__main__"})


def _caller_guarded(depth: int = 2) -> bool:
    """True when the frame *depth* levels up belongs to project code."""
    caller = sys._getframe(depth).f_globals.get("__name__", "")
    return str(caller).split(".", 1)[0] in _GUARDED_ROOTS


def _raiser(description: str, hint: str,
            original: Callable[..., object]) -> Callable[..., object]:
    def guard(*args: object, **kwargs: object) -> object:
        if _caller_guarded():
            raise DeterminismViolation(
                f"{description} called inside a determinism-sanitized region "
                f"($REPRO_DETSAN); {hint}"
            )
        return original(*args, **kwargs)
    guard.__name__ = "detsan_guard"
    guard.__qualname__ = f"detsan_guard[{description}]"
    return guard


def _guarded_datetime_class(base: type, methods: Tuple[str, ...], label: str) -> type:
    namespace = {}
    for name in methods:
        original = getattr(base, name)  # bound to *base*: delegation stays real

        def make_guard(method_name: str, orig: Callable[..., object]):
            def guard(cls: type, *args: object, **kwargs: object) -> object:
                if _caller_guarded():
                    raise DeterminismViolation(
                        f"{label}.{method_name}() called inside a determinism-"
                        "sanitized region ($REPRO_DETSAN); derive timestamps "
                        "from sim.now or parameters"
                    )
                return orig(*args, **kwargs)
            return classmethod(guard)

        namespace[name] = make_guard(name, original)
    return type(f"DetsanGuarded_{base.__name__}", (base,), namespace)


_ACTIVE_DEPTH = 0


def active() -> bool:
    """True while a sanitizer context is in force in this process."""
    return _ACTIVE_DEPTH > 0


@contextmanager
def determinism_sanitizer() -> Iterator[None]:
    """Patch entropy entry points to raise; restore on exit.  Reentrant."""
    global _ACTIVE_DEPTH
    if _ACTIVE_DEPTH > 0:
        _ACTIVE_DEPTH += 1
        try:
            yield
        finally:
            _ACTIVE_DEPTH -= 1
        return

    saved: List[Tuple[object, str, object]] = []

    def patch(target: object, name: str, replacement: object) -> None:
        saved.append((target, name, getattr(target, name)))
        setattr(target, name, replacement)

    for name in _TIME_PATCHES:
        patch(time, name, _raiser(
            f"time.{name}()", "use sim.now (simulated time) or time.perf_counter() "
            "for wall-clock reporting", getattr(time, name)
        ))
    for name in _RANDOM_PATCHES:
        if not hasattr(random, name):  # randbytes/binomialvariate: version-gated
            continue
        patch(random, name, _raiser(
            f"random.{name}()", "use an explicitly seeded random.Random(seed)",
            getattr(random, name)
        ))
    patch(os, "urandom", _raiser(
        "os.urandom()", "derive randomness from the seeded parameter bundle",
        os.urandom
    ))
    for name in _UUID_PATCHES:
        patch(uuid, name, _raiser(
            f"uuid.{name}()", "derive identifiers from deterministic counters",
            getattr(uuid, name)
        ))
    patch(_datetime_module, "datetime", _guarded_datetime_class(
        _datetime_module.datetime, ("now", "utcnow", "today"), "datetime.datetime"
    ))
    patch(_datetime_module, "date", _guarded_datetime_class(
        _datetime_module.date, ("today",), "datetime.date"
    ))

    _ACTIVE_DEPTH = 1
    try:
        yield
    finally:
        _ACTIVE_DEPTH = 0
        for target, name, original in reversed(saved):
            setattr(target, name, original)


@contextmanager
def maybe_sanitize() -> Iterator[None]:
    """:func:`determinism_sanitizer` when ``$REPRO_DETSAN`` is on, else no-op."""
    if enabled_from_env():
        with determinism_sanitizer():
            yield
    else:
        yield
