"""Report rendering: human text and machine JSON.

The JSON document is versioned and schema-stable (CI parses it):

.. code-block:: json

    {
      "version": 2,
      "tool": "repro.lint",
      "roots": ["src/repro"],
      "files_scanned": 70,
      "strict": true,
      "flow": true,
      "findings": [{"rule": "...", "path": "...", "line": 1, "col": 1,
                    "message": "...", "hint": "...", "symbol": "..."}],
      "suppressed": [...],
      "stale_baseline": ["DET001:repro.x.f:ab12cd34"],
      "summary": {"DET001": 0, "...": 0}
    }

v2 adds the ``flow`` flag (whether the whole-program passes ran), the
``symbol`` field on findings, and the four flow rules (DET004, PAR001,
PUR001, CACHE001) in ``summary``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.rules import ALL_RULES, Finding

REPORT_VERSION = 2


def _all_rule_ids() -> List[str]:
    from repro.lint.flow import FLOW_RULES

    return [rule.id for rule in ALL_RULES] + [rule.id for rule in FLOW_RULES]


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Per-rule counts, every known rule present (0 when clean)."""
    counts = {rule_id: 0 for rule_id in _all_rule_ids()}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    stale: Sequence[str],
    files_scanned: int,
) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        lines.append(f"    hint: {finding.hint}")
    for finding in suppressed:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message} [baselined]"
        )
    for entry in stale:
        lines.append(f"stale baseline entry (violation fixed — remove it): {entry}")
    total = len(findings)
    lines.append(
        f"repro.lint: {files_scanned} files, {total} violation"
        f"{'s' if total != 1 else ''}, {len(suppressed)} baselined, "
        f"{len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    stale: Sequence[str],
    files_scanned: int,
    roots: Sequence[str],
    strict: bool,
    flow: bool = False,
) -> str:
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro.lint",
        "roots": list(roots),
        "files_scanned": files_scanned,
        "strict": strict,
        "flow": flow,
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
        "stale_baseline": list(stale),
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
