"""repro.lint — determinism & invariant enforcement, static and dynamic.

Two halves, one contract ("cells are bit-deterministic given their param
bundle"):

* the **AST linter** (``python -m repro.lint``): per-file rules DET001/
  DET002/DET003/OBS001/OBS002/KEY001 over the source tree, with a
  checked-in baseline and a JSON report mode — see
  :mod:`repro.lint.rules` and ``docs/static-analysis.md``.
* the **flow engine** (``--flow``): whole-program passes DET004 (taint),
  PAR001/PUR001 (parallel/memo purity), CACHE001 (cache-key soundness)
  — see :mod:`repro.lint.flow`.
* the **runtime sanitizer** (``$REPRO_DETSAN=1``): patches wall-clock and
  unseeded-entropy entry points to raise during simulations and tests —
  see :mod:`repro.lint.detsan`.
"""

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.cli import EXIT_CLEAN, EXIT_TOOL_ERROR, EXIT_VIOLATIONS, main
from repro.lint.detsan import (
    DETSAN_ENV,
    DeterminismViolation,
    determinism_sanitizer,
    enabled_from_env,
    maybe_sanitize,
)
from repro.lint.flow import FLOW_RULES, FLOW_RULES_BY_ID, run_flow
from repro.lint.rules import ALL_RULES, RULES_BY_ID, Finding, run_rules
from repro.lint.walker import LintToolError, parse_module, parse_tree

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DETSAN_ENV",
    "DeterminismViolation",
    "EXIT_CLEAN",
    "EXIT_TOOL_ERROR",
    "EXIT_VIOLATIONS",
    "FLOW_RULES",
    "FLOW_RULES_BY_ID",
    "Finding",
    "LintToolError",
    "RULES_BY_ID",
    "determinism_sanitizer",
    "enabled_from_env",
    "fingerprint",
    "main",
    "maybe_sanitize",
    "parse_module",
    "parse_tree",
    "run_flow",
    "run_rules",
]
