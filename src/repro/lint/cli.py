"""``python -m repro.lint`` — the CI gate and local pre-commit check.

Exit codes are part of the contract (CI failure triage depends on them):

* ``0`` — clean: no unbaselined findings (and, under ``--strict``, no
  stale baseline entries either).
* ``1`` — violations: the *code* is at fault.
* ``2`` — tool error: the *linter run* is at fault (bad path, syntax
  error in a scanned file, unreadable baseline, bad arguments).

Typical invocations::

    python -m repro.lint                       # lint src/repro
    python -m repro.lint --flow --strict       # CI gate, whole-program passes
    python -m repro.lint --json > lint.json    # machine-readable report
    python -m repro.lint --changed             # only files changed vs HEAD
    python -m repro.lint --changed origin/main # ... vs a ref
    python -m repro.lint --audit-suppressions  # find stale allow= comments
    python -m repro.lint --update-baseline     # grandfather current findings
    python -m repro.lint --rules DET001,CACHE001 src/repro

``--changed`` still *parses* the whole tree (the flow passes and the
cross-module context need every file) but only reports findings in the
changed set, so pre-commit runs stay quiet about pre-existing debt.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint import baseline as baseline_mod
from repro.lint.flow import FLOW_RULES_BY_ID, run_flow
from repro.lint.report import render_json, render_text
from repro.lint.rules import (
    ALL_RULES,
    RULES_BY_ID,
    Finding,
    Rule,
    build_context,
    run_rules,
)
from repro.lint.walker import LintToolError, ParsedModule, parse_tree

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_TOOL_ERROR = 2


def default_roots() -> List[str]:
    """``src/repro`` relative to the current directory, if it exists."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    # Fall back to the installed package location (running from elsewhere).
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_dir]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for this repro.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all); naming a "
             "flow rule (DET004/PAR001/PUR001/CACHE001) enables it even "
             "without --flow",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the whole-program dataflow passes "
             "(DET004, PAR001, PUR001, CACHE001)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only report findings in files changed vs REF (default HEAD) "
             "plus untracked files; the whole tree is still parsed for "
             "cross-module context",
    )
    parser.add_argument(
        "--audit-suppressions", action="store_true",
        help="exit 1 on stale `# lint: allow=` comments whose rule no "
             "longer fires on the covered lines (runs every rule, "
             "including flow)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=baseline_mod.DEFAULT_BASELINE,
        help="baseline file of grandfathered findings "
             f"(default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline entirely (every finding is fatal)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress output on a fully clean run",
    )
    return parser


def _select_rules(spec: Optional[str],
                  flow: bool) -> Tuple[Tuple[Rule, ...], Set[str]]:
    """(per-file rules to run, flow rule ids to run) for the CLI options."""
    if not spec:
        flow_ids = set(FLOW_RULES_BY_ID) if flow else set()
        return ALL_RULES, flow_ids
    per_file: List[Rule] = []
    flow_ids = set()
    for rule_id in spec.split(","):
        rule_id = rule_id.strip().upper()
        if rule_id in RULES_BY_ID:
            per_file.append(RULES_BY_ID[rule_id])
        elif rule_id in FLOW_RULES_BY_ID:
            flow_ids.add(rule_id)
        else:
            known = sorted(RULES_BY_ID) + sorted(FLOW_RULES_BY_ID)
            raise LintToolError(
                f"unknown rule {rule_id!r}; known: {', '.join(known)}"
            )
    if flow and not flow_ids:
        flow_ids = set(FLOW_RULES_BY_ID)
    return tuple(per_file), flow_ids


def _git_lines(args: Sequence[str]) -> List[str]:
    try:
        completed = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=True,
        )
    except FileNotFoundError as exc:
        raise LintToolError("--changed requires git on PATH") from exc
    except subprocess.CalledProcessError as exc:
        detail = (exc.stderr or "").strip() or f"exit {exc.returncode}"
        raise LintToolError(f"git {' '.join(args)} failed: {detail}") from exc
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_paths(ref: str) -> Set[str]:
    """Absolute paths of files changed vs *ref*, plus untracked files."""
    listed = _git_lines(["diff", "--name-only", ref, "--"])
    listed += _git_lines(["ls-files", "--others", "--exclude-standard"])
    toplevel = _git_lines(["rev-parse", "--show-toplevel"])
    root = toplevel[0] if toplevel else os.getcwd()
    return {os.path.abspath(os.path.join(root, path)) for path in listed}


def _scope_to_changed(findings: Sequence[Finding],
                      changed: Set[str]) -> List[Finding]:
    return [f for f in findings if os.path.abspath(f.path) in changed]


def audit_suppressions(modules: Sequence[ParsedModule]) -> List[str]:
    """Stale-allow-comment descriptions; every rule (flow included) runs.

    A comment is stale when one of the rules it names no longer fires on
    any line it covers — the violation was fixed (or never existed), so
    the suppression is dead weight that would silently swallow a future
    regression.
    """
    context = build_context(modules)
    stashed = [(module, module.allows) for module in modules]
    try:
        for module, _ in stashed:
            module.allows = {}
        findings = run_rules(modules, ALL_RULES, context)
        findings += run_flow(modules, context)
    finally:
        for module, allows in stashed:
            module.allows = allows
    fired = {(f.path, f.rule, f.line) for f in findings}
    known_rules = set(RULES_BY_ID) | set(FLOW_RULES_BY_ID)
    stale: List[str] = []
    for module in modules:
        for comment in module.allow_comments:
            for rule_id in comment.rules:
                if rule_id not in known_rules:
                    stale.append(
                        f"{module.path}:{comment.lineno}: allow={rule_id} "
                        f"names an unknown rule"
                    )
                    continue
                if not any((module.path, rule_id, line) in fired
                           for line in comment.covers()):
                    stale.append(
                        f"{module.path}:{comment.lineno}: allow={rule_id} "
                        f"is stale — {rule_id} no longer fires here"
                    )
    return stale


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        roots = list(args.paths) or default_roots()
        per_file_rules, flow_ids = _select_rules(args.rules, args.flow)
        modules = parse_tree(roots)

        if args.audit_suppressions:
            stale_comments = audit_suppressions(modules)
            for entry in stale_comments:
                print(entry)
            total = len(stale_comments)
            if not (args.quiet and total == 0):
                print(
                    f"repro.lint: {len(modules)} files, {total} stale "
                    f"suppression comment{'s' if total != 1 else ''}"
                )
            return EXIT_VIOLATIONS if stale_comments else EXIT_CLEAN

        context = build_context(modules)
        findings = run_rules(modules, per_file_rules, context)
        if flow_ids:
            findings += run_flow(modules, context, flow_ids)
            findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

        if args.changed is not None:
            findings = _scope_to_changed(findings, changed_paths(args.changed))

        sources: Dict[str, List[str]] = {m.path: m.lines for m in modules}
        prints = baseline_mod.fingerprints_for(findings, sources)
        legacy_prints = baseline_mod.legacy_fingerprints_for(findings, sources)

        if args.no_baseline:
            base = baseline_mod.Baseline(path=args.baseline)
        else:
            base = baseline_mod.Baseline.load(args.baseline)

        if args.update_baseline:
            baseline_mod.update(base, prints).save()
            print(
                f"baseline {base.path}: recorded {len(prints)} finding"
                f"{'s' if len(prints) != 1 else ''}"
            )
            return EXIT_CLEAN

        new, suppressed, stale = baseline_mod.partition(
            findings, prints, base, legacy_prints)
    except LintToolError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_TOOL_ERROR

    failed = bool(new) or (args.strict and bool(stale))
    if args.as_json:
        print(render_json(new, suppressed, stale, len(modules), roots,
                          strict=args.strict, flow=bool(flow_ids)))
    elif not (args.quiet and not failed and not suppressed and not stale):
        print(render_text(new, suppressed, stale, len(modules)))
    return EXIT_VIOLATIONS if failed else EXIT_CLEAN
