"""``python -m repro.lint`` — the CI gate and local pre-commit check.

Exit codes are part of the contract (CI failure triage depends on them):

* ``0`` — clean: no unbaselined findings (and, under ``--strict``, no
  stale baseline entries either).
* ``1`` — violations: the *code* is at fault.
* ``2`` — tool error: the *linter run* is at fault (bad path, syntax
  error in a scanned file, unreadable baseline, bad arguments).

Typical invocations::

    python -m repro.lint                       # lint src/repro
    python -m repro.lint --strict              # CI gate
    python -m repro.lint --json > lint.json    # machine-readable report
    python -m repro.lint --update-baseline     # grandfather current findings
    python -m repro.lint --rules DET001,KEY001 src/repro
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, RULES_BY_ID, build_context, run_rules
from repro.lint.walker import LintToolError, parse_tree

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_TOOL_ERROR = 2


def default_roots() -> List[str]:
    """``src/repro`` relative to the current directory, if it exists."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    # Fall back to the installed package location (running from elsewhere).
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_dir]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter for this repro.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=baseline_mod.DEFAULT_BASELINE,
        help="baseline file of grandfathered findings "
             f"(default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline entirely (every finding is fatal)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress output on a fully clean run",
    )
    return parser


def _select_rules(spec: Optional[str]):
    if not spec:
        return ALL_RULES
    selected = []
    for rule_id in spec.split(","):
        rule_id = rule_id.strip().upper()
        if rule_id not in RULES_BY_ID:
            raise LintToolError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES_BY_ID))}"
            )
        selected.append(RULES_BY_ID[rule_id])
    return tuple(selected)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        roots = list(args.paths) or default_roots()
        rules = _select_rules(args.rules)
        modules = parse_tree(roots)
        context = build_context(modules)
        findings = run_rules(modules, rules, context)

        sources: Dict[str, List[str]] = {m.path: m.lines for m in modules}
        prints = baseline_mod.fingerprints_for(findings, sources)

        if args.no_baseline:
            base = baseline_mod.Baseline(path=args.baseline)
        else:
            base = baseline_mod.Baseline.load(args.baseline)

        if args.update_baseline:
            baseline_mod.update(base, prints).save()
            print(
                f"baseline {base.path}: recorded {len(prints)} finding"
                f"{'s' if len(prints) != 1 else ''}"
            )
            return EXIT_CLEAN

        new, suppressed, stale = baseline_mod.partition(findings, prints, base)
    except LintToolError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_TOOL_ERROR

    failed = bool(new) or (args.strict and bool(stale))
    if args.as_json:
        print(render_json(new, suppressed, stale, len(modules), roots,
                          strict=args.strict))
    elif not (args.quiet and not failed and not suppressed and not stale):
        print(render_text(new, suppressed, stale, len(modules)))
    return EXIT_VIOLATIONS if failed else EXIT_CLEAN
