#!/usr/bin/env python3
"""Quickstart: build a D2 deployment, store files, and see defragmentation.

Walks through the public API end to end:

1. build a simulated 64-node D2 deployment;
2. create a directory tree and some files through the D2-FS layer;
3. show the headline property — all blocks a task needs sit on a handful
   of nodes (versus dozens under consistent hashing);
4. run the active load balancer and check storage stays balanced;
5. exercise the lookup cache the way a client would.

Run:  python examples/quickstart.py
"""

from repro.core.system import build_deployment
from repro.dht.load_balance import max_over_mean, normalized_std_dev
from repro.dht.routing import route


def main() -> None:
    print("== 1. Build a 64-node D2 deployment ==")
    d2 = build_deployment("d2", 64, seed=42)
    d2.bootstrap_volume()
    print(f"   ring size: {len(d2.ring)} nodes; volume formatted")

    print("\n== 2. Store a project tree through D2-FS ==")
    d2.apply_fs_ops(d2.fs.makedirs("/home/alice/thesis"))
    for i in range(25):
        ops = d2.fs.create(f"/home/alice/thesis/chapter{i:02d}.tex", size=40_000)
        d2.apply_fs_ops(ops)
    # A real deployment hosts many users; their data shares the ring.
    for u in range(20):
        d2.apply_fs_ops(d2.fs.makedirs(f"/home/user{u:02d}/data"))
        for i in range(20):
            d2.apply_fs_ops(
                d2.fs.create(f"/home/user{u:02d}/data/f{i:02d}.dat", size=40_000)
            )
    info = d2.describe()
    print(f"   stored {info['blocks']} blocks, {info['bytes'] / 1e6:.1f} MB "
          f"from 21 users")

    print("\n== 3. Defragmentation: where does a task's data live? ==")
    d2.stabilize()  # balance storage before looking at placement
    needed = []
    for i in range(25):
        needed.extend(d2.read_fetches(f"/home/alice/thesis/chapter{i:02d}.tex"))
    owners = {d2.ring.successor(key) for key, _ in needed}
    print(f"   D2: {len(needed)} block fetches served by {len(owners)} node(s)")

    trad = build_deployment("traditional", 64, seed=42)
    trad.bootstrap_volume()
    trad.apply_fs_ops(trad.fs.makedirs("/home/alice/thesis"))
    for i in range(25):
        trad.apply_fs_ops(trad.fs.create(f"/home/alice/thesis/chapter{i:02d}.tex",
                                         size=40_000))
    t_needed = []
    for i in range(25):
        t_needed.extend(trad.read_fetches(f"/home/alice/thesis/chapter{i:02d}.tex"))
    t_owners = {trad.ring.successor(key) for key, _ in t_needed}
    print(f"   traditional DHT: same task touches {len(t_owners)} nodes")

    print("\n== 4. Active load balancing (Karger-Ruhl, t = 4) ==")
    loads = list(d2.store.primary_loads().values())
    print(f"   after stabilizing: nsd = {normalized_std_dev(loads):.2f}, "
          f"max/mean = {max_over_mean(loads):.1f} "
          f"({d2.store.moves_executed} ID changes)")
    print(f"   migration cost: {d2.store.ledger.total_migrated / 1e6:.1f} MB for "
          f"{d2.store.ledger.total_written / 1e6:.1f} MB written "
          f"(pointers defer and deduplicate moves)")

    print("\n== 5. Lookup caching ==")
    result = route(d2.ring, d2.node_names[0], needed[0][0])
    print(f"   a cold lookup costs {result.hops} hops / {result.messages} messages")

    def client_lookups(deployment, fetches):
        """A client's fetch loop: probe the cache, look up only on a miss."""
        cache = deployment.lookup_cache_for("alice")
        lookups = 0
        for key, _ in fetches:
            if cache.probe(key, now=1.0) is None:
                lookups += 1
                owner = deployment.ring.successor(key)
                lo, hi = deployment.ring.range_of(owner)
                cache.insert(lo, hi, owner, now=1.0)
        return lookups

    # Re-derive the fetch lists post-balancing so ranges are current.
    needed = []
    for i in range(25):
        needed.extend(d2.read_fetches(f"/home/alice/thesis/chapter{i:02d}.tex"))
    d2_lookups = client_lookups(d2, needed)
    trad_lookups = client_lookups(trad, t_needed)
    print(f"   D2 client: {d2_lookups} DHT lookups for {len(needed)} fetches "
          f"(locality makes ranges reusable)")
    print(f"   traditional client: {trad_lookups} lookups for {len(t_needed)} fetches")


if __name__ == "__main__":
    main()
