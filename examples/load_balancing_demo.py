#!/usr/bin/env python3
"""Watch the Karger-Ruhl balancer absorb a hot insert — with and without
block pointers.

A large directory is inserted into a quiet D2 ring; all of its blocks
initially land on one node (that's what locality-preserving keys do).  The
balancer then splits the hot arc over successive probe rounds.  Without
pointers, blocks are copied at every split and can move several times
(Figure 6's cascade); with pointers, each block moves at most once, after
the dust settles.

Run:  python examples/load_balancing_demo.py
"""

import random

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.load_balance import KargerRuhlBalancer, normalized_std_dev
from repro.dht.ring import Ring
from repro.fs.fslayer import DhtFileSystem, apply_ops
from repro.fs.keyschemes import make_scheme
from repro.sim.engine import Simulator
from repro.store.migration import StorageCoordinator

N_NODES = 24
FILES = 200
FILE_SIZE = 64_000


def run(use_pointers: bool) -> None:
    label = "WITH pointers" if use_pointers else "WITHOUT pointers (ablation)"
    print(f"\n== {label} ==")
    rng = random.Random(7)
    ring = Ring()
    for i, node_id in enumerate(random_node_ids(N_NODES, rng)):
        ring.join(f"n{i:02d}", node_id)
    sim = Simulator()
    store = StorageCoordinator(
        ring, sim, use_pointers=use_pointers, pointer_stabilization_time=3600.0
    )
    fs = DhtFileSystem(make_scheme("d2", "demo"))
    apply_ops(store, fs.format())
    fs.makedirs("/dataset")
    for i in range(FILES):
        apply_ops(store, fs.create(f"/dataset/part{i:04d}.bin", size=FILE_SIZE))

    inserted = store.directory.total_bytes
    loads = list(store.primary_loads().values())
    print(f"   inserted {inserted / 1e6:.1f} MB; initial imbalance "
          f"nsd = {normalized_std_dev(loads):.1f} "
          f"(hot node holds {max(loads)} of {len(store.directory)} blocks)")

    balancer = KargerRuhlBalancer(ring, store, rng=random.Random(1))
    for round_number in range(1, 100):
        moves = balancer.probe_round(now=sim.now)
        loads = list(store.primary_loads().values())
        if round_number <= 5 or moves:
            print(f"   round {round_number:2d}: {len(moves)} ID change(s), "
                  f"nsd = {normalized_std_dev(loads):.2f}, "
                  f"pointers pending = {store.pointer_block_count()}")
        if not moves and round_number > 5:
            break
    sim.run()  # fire pointer stabilizations
    print(f"   converged after {balancer.stats.probes} probes, "
          f"{len(balancer.stats.moves)} moves")
    print(f"   data migrated: {store.ledger.total_migrated / 1e6:.1f} MB for "
          f"{inserted / 1e6:.1f} MB inserted "
          f"(ratio {store.ledger.total_migrated / inserted:.2f})")


def main() -> None:
    print("Inserting one hot dataset and letting the balancer spread it.")
    run(use_pointers=True)
    run(use_pointers=False)
    print("\nPointers do not change the final placement; they change how many"
          "\ntimes each byte crosses the network to get there.")


if __name__ == "__main__":
    main()
