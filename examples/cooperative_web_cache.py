#!/usr/bin/env python3
"""Cooperative web cache (Squirrel) on D2: the extreme-churn stress test.

Section 10's second workload: clients use the DHT as a shared web cache —
insert on miss, evict stale content daily, replace on origin change.  The
data distribution shifts violently (whole sites appear and disappear), so
this is the hardest case for D2's locality-preserving placement: the
balancer must chase a moving key distribution.

The example runs the webcache workload through D2 and the traditional DHT
side by side and reports cache behaviour, storage balance, and the
migration bill (the Figure 17 / Tables 3-4 experiment at example scale).

Run:  python examples/cooperative_web_cache.py
"""

from repro.analysis.balance import run_webcache_balance
from repro.workloads.web import WebConfig, generate_web

N_NODES = 32
DAYS = 2.0


def main() -> None:
    print("== Generating a web trace ==")
    trace = generate_web(WebConfig(users=24, days=DAYS, sites=30, seed=9))
    stats = trace.stats()
    print(f"   {stats['users']} clients, {stats['accesses']} requests to "
          f"{stats['active_files']} objects "
          f"({stats['active_bytes'] / 1e6:.0f} MB)")

    print(f"\n== Running the DHT-as-web-cache on {N_NODES} nodes ==")
    results = {
        system: run_webcache_balance(trace, system, n_nodes=N_NODES, seed=3)
        for system in ("d2", "traditional")
    }

    print("\n   storage balance over time (normalized stddev; lower = flatter):")
    print(f"   {'system':12s} {'mean nsd':>9s} {'max/mean':>9s} {'ID moves':>9s}")
    for system, result in results.items():
        print(f"   {system:12s} {result.mean_nsd():9.2f} "
              f"{result.mean_max_over_mean():9.1f} {result.moves:9d}")

    d2 = results["d2"]
    print("\n   daily churn (D2): bytes written vs bytes present at day start")
    for row in d2.churn_rows():
        ratio = row["write_ratio"]
        shown = f"{ratio:.2f}" if ratio != float("inf") else "inf (cold start)"
        print(f"      day {row['day']}: W/T = {shown}")

    print("\n   the migration bill:")
    print(f"      bytes written:  {sum(d2.daily_written) / 1e6:8.1f} MB")
    print(f"      bytes migrated: {sum(d2.daily_migrated) / 1e6:8.1f} MB "
          f"(L/W = {d2.migration_over_write():.2f}; pointers keep this near "
          f"parity even at webcache churn)")

    print("\n   takeaway: even when the entire cached population turns over "
          "daily, D2 holds storage balance close to consistent hashing's "
          "while preserving per-site locality for readers.")


if __name__ == "__main__":
    main()
