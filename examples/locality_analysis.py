#!/usr/bin/env python3
"""How much locality is there to harvest?  (The Section 4.1 analysis.)

Before building any of D2, the paper asks whether simple name-space
ordering can capture most of the locality in real workloads.  This example
repeats that analysis on the three generated workloads: for each, it
compares the number of nodes a user must touch per hour under

* traditional  — uniformly hashed block placement,
* ordered      — blocks sorted by name and packed onto nodes,
* lower-bound  — the information-theoretic floor for that user's traffic.

Run:  python examples/locality_analysis.py
"""

from repro.analysis.locality import analyze_locality
from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.hp import HPConfig, generate_hp
from repro.workloads.web import WebConfig, generate_web


def main() -> None:
    traces = [
        generate_hp(HPConfig(applications=8, days=1.0, seed=2)),
        generate_harvard(HarvardConfig(users=8, days=1.0, seed=2)),
        generate_web(WebConfig(users=20, days=1.0, sites=40, seed=2)),
    ]
    print(f"{'workload':16s} {'scenario':13s} {'nodes/user-hr':>13s} "
          f"{'vs traditional':>15s}")
    print("-" * 60)
    for trace in traces:
        # Scale node capacity so the universe spans ~64 nodes (the paper's
        # 32,000-block nodes would swallow a laptop-scale trace whole).
        from repro.analysis.locality import trace_block_accesses

        universe = set()
        for entries in trace_block_accesses(trace).values():
            universe.update(block for _, block in entries)
        result = analyze_locality(
            trace, blocks_per_node=max(16, len(universe) // 64)
        )
        for row in result.rows():
            print(f"{row['workload']:16s} {row['scenario']:13s} "
                  f"{row['nodes_per_user_hour']:13.2f} "
                  f"{row['normalized']:15.3f}")
        print()
    print("Reading: 'ordered' lands within ~10x of the unreachable lower")
    print("bound while cutting the traditional DHT's spread by ~10x — the")
    print("observation that justifies D2's simple key encoding.")


if __name__ == "__main__":
    main()
