#!/usr/bin/env python3
"""Research-group file system: availability under a bad week.

The paper's motivating deployment — a research group's NFS volume served
from a community of unreliable nodes.  This example generates a
Harvard-like workload, replays it through D2 and both consistent-hashing
baselines under a failure-heavy synthetic "PlanetLab week", and reports
how often users' tasks fail in each system (the Figure 7 experiment at
example scale), including the per-user view (Figure 8).

Run:  python examples/research_group_fs.py
"""

import random

from repro.analysis.availability import (
    evaluate_tasks,
    matching_failure_trace,
    run_availability_replay,
)
from repro.sim.failures import FailureTraceConfig
from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.trace import SECONDS_PER_DAY

N_NODES = 60
DAYS = 1.5
INTER = 5.0


def main() -> None:
    print("== Generating a research-group NFS workload ==")
    trace = generate_harvard(HarvardConfig(users=8, days=DAYS, seed=17))
    stats = trace.stats()
    print(f"   {stats['users']} users, {stats['accesses']} accesses, "
          f"{stats['active_bytes'] / 1e6:.0f} MB active data over "
          f"{stats['duration_days']:.1f} days")

    print("\n== Generating a failure-heavy week ==")
    failures = matching_failure_trace(
        N_NODES,
        random.Random(5),
        FailureTraceConfig(
            duration=DAYS * SECONDS_PER_DAY,
            mttf=2.5 * SECONDS_PER_DAY,
            mttr=6 * 3600.0,
            correlated_events=3,
            correlated_fraction=0.2,
            correlated_repair=3 * 3600.0,
        ),
    )
    print(f"   mean node availability: {failures.mean_availability():.1%} "
          f"({len(failures.events)} up/down transitions)")

    print(f"\n== Replaying through each system ({N_NODES} nodes, r = 3) ==")
    results = {}
    for system in ("d2", "traditional-file", "traditional"):
        log = run_availability_replay(
            trace, failures, system, trial=0, regeneration_delay=2 * 3600.0
        )
        results[system] = evaluate_tasks(trace, log, INTER)

    print(f"\n   task availability (inter = {INTER:.0f} s):")
    print(f"   {'system':18s} {'tasks':>6s} {'failed':>7s} {'unavailability':>15s} "
          f"{'nodes/task':>11s}")
    for system, result in results.items():
        print(f"   {system:18s} {result.tasks:6d} {result.failed_tasks:7d} "
              f"{result.unavailability:15.2e} {result.mean_nodes_per_task:11.1f}")

    print("\n== Who feels the failures? (per-user, ranked) ==")
    for system in ("d2", "traditional"):
        ranked = results[system].ranked_user_unavailability()
        affected = [(user, value) for user, value in ranked if value > 0]
        print(f"   {system}: {len(affected)} of {len(ranked)} users ever see a "
              f"failed task")
        for user, value in affected[:3]:
            print(f"       {user}: {value:.2e}")

    d2, trad = results["d2"], results["traditional"]
    if trad.unavailability > 0 and d2.unavailability == 0:
        print(f"\n   D2 had no failed tasks at all this week (traditional lost "
              f"{trad.failed_tasks}), because each task touches only "
              f"{d2.mean_nodes_per_task:.1f} nodes instead of "
              f"{trad.mean_nodes_per_task:.1f}.")
    elif trad.unavailability > 0:
        factor = trad.unavailability / d2.unavailability
        print(f"\n   D2 reduces task unavailability by about {factor:.0f}x, by "
              f"touching {d2.mean_nodes_per_task:.1f} nodes per task instead of "
              f"{trad.mean_nodes_per_task:.1f}.")


if __name__ == "__main__":
    main()
