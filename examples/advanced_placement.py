#!/usr/bin/env python3
"""Beyond the paper: hybrid placement, erasure codes, and hot-spot caches.

The paper closes (Section 11) by sketching how D2's weaknesses in hostile
or large-file settings could be fixed without giving up defragmentation.
This example drives the three extension mechanisms this repo implements:

1. **hybrid replica placement** — locality primary + rank-hashed
   secondaries: an attacker squatting a ring arc no longer captures whole
   files, and bulk reads of large files regain wide fan-out;
2. **erasure coding** — (m, k) fragments instead of copies: the same
   defragmentation advantage at lower storage cost;
3. **retrieval caches** — a Zipf-hot file stops melting its replica group.

Run:  python examples/advanced_placement.py
"""

import random

from repro.core.hybrid import (
    arc_capture_exposure,
    parallel_read_fanout,
)
from repro.core.system import build_deployment
from repro.fs.blocks import BLOCK_SIZE
from repro.store.erasure import ErasureConfig, group_availability_probability
from repro.store.retrieval_cache import RetrievalCacheLayer, replica_only_service


def main() -> None:
    deployment = build_deployment("d2", 48, seed=21)
    deployment.bootstrap_volume()
    deployment.apply_fs_ops(deployment.fs.makedirs("/data"))
    for i in range(15):
        deployment.apply_fs_ops(
            deployment.fs.create(f"/data/doc{i:02d}", size=4 * BLOCK_SIZE)
        )
    deployment.stabilize()
    deployment.apply_fs_ops(
        deployment.fs.create("/data/dataset.bin", size=48 * BLOCK_SIZE)
    )
    rng = random.Random(5)

    print("== 1. Hybrid replica placement (Section 11 future work) ==")
    keys = []
    for i in range(15):
        keys.extend(k for k, _ in deployment.read_fetches(f"/data/doc{i:02d}"))
    for placement in ("locality", "hybrid"):
        captured = arc_capture_exposure(
            deployment.ring, keys, 3, placement=placement, arc_nodes=3,
            trials=100, rng=random.Random(1),
        )
        print(f"   {placement:9s}: adversary squatting 3 consecutive ring "
              f"positions fully owns {captured:.2%} of a user's blocks")
    big = [k for k, _ in deployment.read_fetches("/data/dataset.bin")]
    for placement in ("locality", "hybrid"):
        fanout = parallel_read_fanout(deployment.ring, big, 3, placement=placement)
        print(f"   {placement:9s}: a 384 KB bulk read can use {fanout} uploaders")

    print("\n== 2. Erasure coding at matched storage cost ==")
    p = 0.92  # per-node availability in a rough week
    for label, config in (
        ("3x replication", ErasureConfig.replication(3)),
        ("(6,2) code    ", ErasureConfig(6, 2)),
        ("(4,2) code    ", ErasureConfig(4, 2)),
    ):
        availability = group_availability_probability(config, p)
        print(f"   {label}: storage {config.storage_overhead:.1f}x, "
              f"P(block readable) = {availability:.6f}")
    print("   -> (6,2) buys ~an extra nine over replication at the same cost;")
    print("      D2 needs few groups per task, so the gain compounds less —")
    print("      defragmentation, not redundancy, is doing the heavy lifting.")

    print("\n== 3. Retrieval caches under a flash crowd ==")
    hot_key = keys[0]
    requests = [
        (hot_key, deployment.node_names[rng.randrange(48)]) for _ in range(3000)
    ]
    baseline = replica_only_service(deployment.ring, requests,
                                    rng=random.Random(2))
    counts = list(baseline.values())
    base_factor = max(counts) / (sum(counts) / len(counts))
    layer = RetrievalCacheLayer(deployment.ring, rng=random.Random(2))
    for i, (key, client) in enumerate(requests):
        layer.serve(key, client, now=i * 0.1)
    print(f"   without caches: hottest node serves {base_factor:.1f}x the mean")
    print(f"   with caches:    {layer.hot_spot_factor():.1f}x the mean "
          f"({layer.stats.cache_fraction:.0%} of requests served from caches)")


if __name__ == "__main__":
    main()
