"""Ablation: the Karger-Ruhl threshold t (balance vs movement)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_threshold_ablation
from repro.experiments.common import format_table


def test_ablation_threshold(benchmark):
    rows = run_once(benchmark, run_threshold_ablation)
    print()
    print(format_table(
        rows,
        ["threshold", "rounds", "moves", "migrated_mb", "final_nsd",
         "max_over_mean"],
        title="Ablation: balance threshold t",
    ))
    by_t = {row["threshold"]: row for row in rows}
    # Looser thresholds tolerate more imbalance...
    assert by_t[8.0]["max_over_mean"] >= by_t[2.5]["max_over_mean"] - 0.25
    # ...and every run respects its own t-factor bound.
    for row in rows:
        assert row["max_over_mean"] <= row["threshold"] + 0.5
