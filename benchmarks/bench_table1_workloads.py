"""Table 1: workload summaries (generated traces)."""

from benchmarks.conftest import run_once
from repro.experiments.table1_workloads import format_table1, run_table1


def test_table1_workloads(benchmark):
    rows = run_once(benchmark, run_table1)
    print()
    print(format_table1(rows))
    by_name = {row["workload"]: row for row in rows}
    # Shape: every workload spans the configured window and sees far more
    # accesses than users; Harvard carries the (scaled) tens of MB of
    # active data the dynamic experiments need.
    for row in rows:
        assert row["duration_days"] > 0.5
        assert row["accesses"] > 100 * row["users"]
    assert by_name["harvard-synth"]["active_mb"] > 10
