"""Ablation: block pointers' effect on migration volume (Figure 6)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_pointer_ablation
from repro.experiments.common import format_table


def test_ablation_pointers(benchmark):
    rows = run_once(benchmark, run_pointer_ablation)
    print()
    print(format_table(
        rows,
        ["pointers", "written_mb", "migrated_mb", "migration_multiplier",
         "moves", "final_nsd"],
        title="Ablation: migration with vs without block pointers",
    ))
    on = next(r for r in rows if r["pointers"] == "on")
    off = next(r for r in rows if r["pointers"] == "off")
    # Pointers must cut migration markedly without hurting final balance.
    assert on["migrated_mb"] < 0.7 * off["migrated_mb"]
    assert on["final_nsd"] < 1.0
