"""Extension: retrieval caches flatten request hot spots (Section 6)."""

from benchmarks.conftest import run_once
from repro.experiments.ext_hotspot import format_hotspot, run_hotspot_extension


def test_ext_hotspot(benchmark):
    rows = run_once(benchmark, run_hotspot_extension)
    print()
    print(format_hotspot(rows))
    base = next(r for r in rows if r["scheme"] == "replicas-only")
    cached = next(r for r in rows if r["scheme"] == "retrieval-caches")
    # Caches must flatten the hot spot markedly and recruit more servers.
    assert cached["max_over_mean_requests"] < 0.6 * base["max_over_mean_requests"]
    assert cached["nodes_serving"] >= base["nodes_serving"]
    assert cached["cache_hit_fraction"] > 0.5
