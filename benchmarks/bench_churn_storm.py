"""Churn storm: membership dynamics, bandwidth-capped repair, durability."""

from benchmarks.conftest import run_once
from repro.experiments.churn_storm import format_churn_storm, run_churn_storm


def test_churn_storm(benchmark):
    rows = run_once(benchmark, run_churn_storm)
    print()
    print(format_churn_storm(rows))
    by_level = {row["level"]: row for row in rows if row["correlated"] == 0}
    assert set(by_level) == {"calm", "steady", "storm"}
    for row in rows:
        # Membership actually changed: the storm is not a no-op.
        assert row["joins"] + row["leaves"] + row["crashes"] > 0
        # Repair keeps up after the drain window: backlog goes to zero and
        # (nearly) every surviving block is back at full replication.
        assert row["backlog_drained"] == 0
        assert row["fully_replicated"] >= 0.98
        # Loss is rare — a graceful-leave-only run would be zero; crashes
        # can lose blocks only when a whole replica group dies inside one
        # repair window.
        assert row["loss_prob"] <= 0.05
    # Heavier storms do strictly more membership work.
    ops = {
        level: row["joins"] + row["leaves"] + row["crashes"]
        for level, row in by_level.items()
    }
    assert ops["storm"] > ops["calm"]
    # Correlated outages add crashes on top of the storm's own.
    paired = {(row["level"], row["correlated"]): row for row in rows}
    if ("steady", 3) in paired:
        assert paired[("steady", 3)]["crashes"] > paired[("steady", 0)]["crashes"]
