"""Table 3: daily write/remove churn ratios."""

from benchmarks.conftest import run_once
from repro.experiments.table3_churn import format_table3, run_table3


def test_table3_churn(benchmark):
    rows = run_once(benchmark, run_table3)
    print()
    print(format_table3(rows))
    harvard = [r for r in rows if r["workload"] == "Harvard"]
    webcache = [r for r in rows if r["workload"] == "Webcache"]
    # Paper: Harvard writes/removes ~10-20% of stored bytes per day.
    for row in harvard:
        assert 0.02 <= row["W_over_T"] <= 0.6
        assert row["R_over_T"] <= 0.6
    # Paper: Webcache churn is extreme — daily writes comparable to or far
    # exceeding the stored volume (day 1 starts from empty).
    steady = [r for r in webcache[1:]]
    assert steady, "need at least two webcache days"
    assert max(r["W_over_T"] for r in steady) > 0.5
    assert max(r["W_over_T"] for r in webcache) > max(r["W_over_T"] for r in harvard)
