"""Microbenchmarks of the routing fast paths added for the scale engine.

Three comparisons, each also asserted as a shape claim so a regression
that silently disables the fast path fails the bench suite rather than
just slowing it down:

* cold (bisect-per-level reference) vs finger-table :func:`route`,
* single :func:`route` calls vs batched :func:`route_many`,
* finger-table construction cost (the price paid on first lookup after
  a membership change).
"""

import random
import time

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.dht.routing import finger_table_for, route, route_cold, route_many


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


def make_keys(rng, count=256):
    return [rng.randrange(KEY_SPACE) for _ in range(count)]


def test_route_cold_reference(benchmark):
    ring, rng = build_ring(1000)
    keys = make_keys(rng)

    def cold():
        for key in keys:
            route_cold(ring, "n0", key)

    benchmark(cold)


def test_route_finger_table(benchmark):
    ring, rng = build_ring(1000)
    keys = make_keys(rng)
    route(ring, "n0", keys[0])  # build the table outside the timed region

    def warm():
        for key in keys:
            route(ring, "n0", key)

    benchmark(warm)


def test_route_many_batched(benchmark):
    ring, rng = build_ring(1000)
    keys = make_keys(rng)
    route(ring, "n0", keys[0])

    benchmark(lambda: route_many(ring, "n0", keys))


def test_finger_table_rebuild(benchmark):
    """Cost of re-deriving fingers for 256 sources after a version bump."""
    ring, rng = build_ring(1000)
    keys = make_keys(rng)
    positions = list(range(0, 1000, 4))[:256]

    def rebuild():
        ring._version += 0  # no-op; rebuild is forced by a fresh table
        table = finger_table_for(ring)
        table.refresh()
        table._nodes.clear()
        for index, key in zip(positions, keys):
            table.fingers_of(index)

    benchmark(rebuild)


def _best_of(runs, fn):
    """Minimum wall time over *runs* attempts — filters scheduler noise,
    which only ever makes a run slower, never faster."""
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_fast_paths_actually_faster():
    """Shape gate: finger-table route >= 5x cold; route_many >= route."""
    ring, rng = build_ring(2000, seed=3)
    keys = make_keys(rng, 4000)
    route(ring, "n0", keys[0])  # warm the table

    def warm_loop():
        for key in keys:
            route(ring, "n0", key)

    def cold_loop():
        for key in keys[:400]:
            route_cold(ring, "n0", key)

    warm_wall = _best_of(3, warm_loop)
    batched_wall = _best_of(3, lambda: route_many(ring, "n0", keys))
    cold_wall = _best_of(3, cold_loop) * (len(keys) / 400)

    assert cold_wall > 5 * warm_wall, (
        f"finger-table routing speedup collapsed: cold {cold_wall:.3f}s "
        f"vs warm {warm_wall:.3f}s"
    )
    assert batched_wall < warm_wall * 1.1, (
        f"route_many slower than single-key loop: {batched_wall:.3f}s "
        f"vs {warm_wall:.3f}s"
    )
