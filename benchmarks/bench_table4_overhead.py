"""Table 4: write traffic vs migration traffic."""

from benchmarks.conftest import run_once
from repro.experiments.table4_overhead import (
    format_table4,
    migration_over_write,
    run_table4,
)


def test_table4_overhead(benchmark):
    rows = run_once(benchmark, run_table4)
    print()
    print(format_table4(rows))
    ratios = migration_over_write()
    print(f"total L/W: harvard={ratios['harvard']:.2f} "
          f"webcache={ratios['webcache']:.2f}")
    # Paper: Harvard migration ~50% of write volume; Webcache ~slightly
    # above parity.  Shape: both stay within small constant factors of the
    # write volume (pointers prevent multi-x blowup), and webcache churn
    # does not make migration explode past ~2x writes.
    assert ratios["harvard"] < 1.5
    assert ratios["webcache"] < 2.0
