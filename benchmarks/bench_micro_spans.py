"""Microbenchmark: span tracing overhead on the disabled path.

The satellite contract for the tracing subsystem is that a deployment
running with tracing off (``REPRO_TRACE_SAMPLE=0`` → :class:`NullTracer`)
pays only a truthiness check at each instrumentation site, keeping a
fig16-style replay loop within a couple percent of fully untraced code.
Wall-clock asserts on shared CI boxes are noisy, so the hard assert is
generous (25%) while the printed ratio is what a human (or perf
regression sweep) reads against the < 2% design target.
"""

import time

from repro.core.system import build_deployment
from repro.obs.spans import NullTracer, Tracer


def _balance_workload(deployment, files=60):
    """A fig16-flavored hot loop: create files, then balance to stable."""
    deployment.bootstrap_volume()
    for i in range(files):
        deployment.apply_fs_ops(deployment.fs.create(f"/f{i}.dat", size=16_000))
    deployment.stabilize(max_rounds=60)
    return deployment.store.moves_executed


def _timed_run(spans_factory):
    deployment = build_deployment("d2", 24, seed=11)
    deployment.spans = spans_factory(deployment)
    deployment.store.spans = deployment.spans
    if deployment.balancer is not None:
        deployment.balancer._spans = deployment.spans
    started = time.perf_counter()
    moves = _balance_workload(deployment)
    return time.perf_counter() - started, moves, deployment


def test_disabled_tracing_overhead_is_negligible(benchmark):
    # Interleave to keep cache/thermal drift symmetric between variants.
    null_times, traced_times = [], []
    for _ in range(3):
        elapsed, null_moves, _ = _timed_run(lambda d: NullTracer())
        null_times.append(elapsed)
        elapsed, traced_moves, traced = _timed_run(
            lambda d: Tracer(sample=1.0, seed=0)
        )
        traced_times.append(elapsed)
    assert null_moves == traced_moves  # tracing must not perturb behavior
    assert traced.spans.counts().get("balance.move", 0) >= 1

    null_best, traced_best = min(null_times), min(traced_times)
    ratio = null_best / traced_best if traced_best else 1.0
    print(f"\nnull-tracer / full-tracer best-of-3: {ratio:.4f} "
          f"(null {null_best:.3f}s, traced {traced_best:.3f}s)")
    # Design target < 2%; hard gate is loose for noisy shared runners.
    # The *disabled* path must never be slower than the fully-traced one
    # by more than noise.
    assert null_best <= traced_best * 1.25

    # Statistical timing of the pure instrumentation-site cost: a null
    # tracer start/finish pair is just two truthiness checks.
    tracer = NullTracer()

    def disabled_sites():
        for i in range(1000):
            if tracer:
                span = tracer.start_trace("fetch", float(i))
                tracer.finish(span, float(i))

    benchmark(disabled_sites)


def test_null_tracer_allocates_nothing_per_span():
    from repro.obs.spans import NULL_SPAN

    tracer = NullTracer()
    spans = {id(tracer.start_trace("op", float(i))) for i in range(100)}
    assert spans == {id(NULL_SPAN)}  # one shared singleton, zero allocation
    children = {id(tracer.start_span("c", 0.0, NULL_SPAN)) for _ in range(100)}
    assert children == {id(NULL_SPAN)}
