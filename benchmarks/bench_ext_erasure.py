"""Extension: replication vs erasure coding (Section 3's redundancy claim)."""

from benchmarks.conftest import run_once
from repro.experiments.ext_erasure import format_erasure, run_erasure_extension


def test_ext_erasure(benchmark):
    rows = run_once(benchmark, run_erasure_extension)
    print()
    print(format_erasure(rows))
    by = {(r["system"], r["redundancy"]): r["unavailability"] for r in rows}
    # The paper's claim: D2's advantage holds under every redundancy scheme.
    for scheme in ("replication r=3", "erasure (6,2)", "erasure (4,2)"):
        assert by[("d2", scheme)] <= by[("traditional", scheme)]
    # At matched 3x storage, (6,2) is at least as available as replication.
    assert by[("d2", "erasure (6,2)")] <= by[("d2", "replication r=3")] + 1e-9
    # Headline: D2 at 2x storage beats traditional at 3x.
    assert by[("d2", "erasure (4,2)")] < by[("traditional", "replication r=3")]
