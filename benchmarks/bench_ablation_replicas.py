"""Ablation: replication factor vs task availability (Section 8.2)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_replica_ablation
from repro.experiments.common import format_table


def test_ablation_replicas(benchmark):
    rows = run_once(benchmark, run_replica_ablation)
    print()
    print(format_table(
        rows,
        ["replicas", "unavail_d2", "unavail_traditional"],
        title="Ablation: replica count vs task unavailability (inter = 5 s)",
    ))
    # More replicas help both, D2 at least as much (paper: r=4 makes D2
    # failure-free while traditional still fails).
    for row in rows:
        assert row["unavail_d2"] <= row["unavail_traditional"]
    d2 = [row["unavail_d2"] for row in rows]
    trad = [row["unavail_traditional"] for row in rows]
    assert d2[-1] <= d2[0]
    assert trad[-1] <= trad[0]
