"""Figure 12: per-user speedup distribution at the largest size."""

from benchmarks.conftest import run_once
from repro.experiments.fig12_per_user_speedup import format_fig12, run_fig12


def test_fig12_per_user_speedup(benchmark):
    rows = run_once(benchmark, run_fig12)
    print()
    print(format_fig12(rows))
    seq = [r["speedup"] for r in rows if r["mode"] == "seq"]
    assert seq, "no per-user results"
    winners = sum(1 for v in seq if v > 1.0)
    # Paper: most users win; a small minority may see a mild slowdown
    # (distant replicas), much smaller than the typical speedup.
    assert winners / len(seq) >= 0.6
    if min(seq) < 1.0:
        assert min(seq) > 1.0 / max(seq)
