"""Table 2: mean objects and nodes accessed per task."""

from benchmarks.conftest import run_once
from repro.experiments.table2_tasks import format_table2, run_table2


def test_table2_task_stats(benchmark):
    rows = run_once(benchmark, run_table2)
    print()
    print(format_table2(rows))
    for row in rows:
        # Paper shape: blocks >> files; node spread ordering
        # D2 << traditional-file < traditional; D2 stays a small constant.
        assert row["blocks_per_task"] > 2 * row["files_per_task"]
        assert row["nodes_d2"] < row["nodes_traditional-file"]
        assert row["nodes_traditional-file"] < row["nodes_traditional"]
        assert row["nodes_d2"] <= 6
    # Spread grows (weakly) with inter for the traditional DHT.
    trad = [row["nodes_traditional"] for row in rows]
    assert trad == sorted(trad)
