"""Extension: hybrid replica placement (the paper's Section 11 proposal)."""

from benchmarks.conftest import run_once
from repro.experiments.ext_hybrid import format_hybrid, run_hybrid_extension


def test_ext_hybrid_placement(benchmark):
    rows = run_once(benchmark, run_hybrid_extension)
    print()
    print(format_hybrid(rows))
    by_placement = {row["placement"]: row for row in rows}
    locality = by_placement["locality"]
    hybrid = by_placement["hybrid"]
    naive = by_placement["hybrid-position"]
    # Security: scattering secondaries slashes adversarial capture.
    assert hybrid["captured_fraction"] < locality["captured_fraction"] / 5
    # Availability under a contiguous (rack-like) outage improves.
    assert hybrid["readable_under_arc_outage"] > locality["readable_under_arc_outage"]
    # Bulk reads regain traditional-like fanout...
    assert hybrid["bulk_read_fanout"] > 5 * locality["bulk_read_fanout"]
    # ...but ONLY with rank-based hashing: the naive position-based
    # construction collapses once balancing has clustered node IDs.
    assert naive["bulk_read_fanout"] <= 2 * locality["bulk_read_fanout"]
