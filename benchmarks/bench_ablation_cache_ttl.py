"""Ablation: lookup-cache TTL under ring churn (Section 5's 1.25 h)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_cache_ttl_ablation
from repro.experiments.common import format_table


def test_ablation_cache_ttl(benchmark):
    rows = run_once(benchmark, run_cache_ttl_ablation)
    print()
    print(format_table(
        rows,
        ["ttl_s", "miss_rate", "stale_redirects", "total_lookup_cost"],
        title="Ablation: lookup cache TTL vs churn",
    ))
    by_ttl = {row["ttl_s"]: row for row in rows}
    short, mid, long = by_ttl[60.0], by_ttl[4500.0], by_ttl[1e9]
    # A short TTL discards valid entries (high miss rate)...
    assert short["miss_rate"] > mid["miss_rate"]
    # ...an infinite TTL accrues stale entries (more misdirected requests).
    assert long["stale_redirects"] >= mid["stale_redirects"]
    # The paper's middle-ground TTL minimizes total lookup work here.
    assert mid["total_lookup_cost"] <= short["total_lookup_cost"]
