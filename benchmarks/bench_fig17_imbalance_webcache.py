"""Figure 17: storage imbalance over time (Webcache)."""

from benchmarks.conftest import run_once
from repro.experiments.fig17_imbalance_webcache import format_fig17, summarize_fig17


def test_fig17_imbalance_webcache(benchmark):
    rows = run_once(benchmark, summarize_fig17)
    print()
    print(format_fig17(rows))
    nsd = {row["system"]: row["mean_nsd"] for row in rows}
    # Paper: after warm-up D2's imbalance stays below the traditional
    # DHT's despite the extreme churn.
    assert nsd["d2"] < nsd["traditional"]
    moves = {row["system"]: row["moves"] for row in rows}
    assert moves["d2"] > 0 and moves["traditional"] == 0
