"""Figure 11: speedup of D2 over the traditional-file DHT."""

from benchmarks.conftest import run_once
from repro.experiments.fig11_speedup_file import format_fig11, run_fig11


def test_fig11_speedup_file(benchmark):
    rows = run_once(benchmark, run_fig11)
    print()
    print(format_fig11(rows))
    by_key = {(r["bandwidth_kbps"], r["mode"], r["n_nodes"]): r["speedup"] for r in rows}
    # Paper: D2 is at worst comparable with traditional-file in seq (their
    # seq speedups are similar at 200 nodes) and wins in para at 1500 kbps.
    seq = [v for (bw, mode, _n), v in by_key.items() if mode == "seq"]
    assert all(v > 0.75 for v in seq)
    para_1500 = [v for (bw, mode, _n), v in by_key.items()
                 if bw == 1500.0 and mode == "para"]
    assert all(v > 1.0 for v in para_1500)
