"""Microbenchmarks of the hot-path data structures.

Unlike the experiment benches (single-shot simulations), these use
pytest-benchmark's statistical timing: they are the operations the
simulators execute millions of times, so their throughput bounds how far
the reproduction can scale.
"""

import random

from repro.core.keys import decode_key, encode_path_key, volume_id
from repro.core.lookup_cache import LookupCache
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.dht.routing import route
from repro.store.block_store import BlockDirectory

VOL = volume_id("bench")


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


def test_ring_successor_lookup(benchmark):
    ring, rng = build_ring(1000)
    keys = [rng.randrange(KEY_SPACE) for _ in range(512)]

    def lookup_many():
        for key in keys:
            ring.successor(key)

    benchmark(lookup_many)


def test_ring_replica_group_lookup(benchmark):
    """Replay hot path: replica-group resolution for a recurring key set.

    Replay loops resolve the same block keys over and over between
    membership changes, which is exactly what the version-keyed successor
    memo accelerates."""
    ring, rng = build_ring(1000)
    keys = [rng.randrange(KEY_SPACE) for _ in range(512)]

    def group_many():
        for key in keys:
            ring.successors(key, 4)

    benchmark(group_many)


def test_routing_hops(benchmark):
    ring, rng = build_ring(1000)
    keys = [rng.randrange(KEY_SPACE) for _ in range(64)]

    def route_many():
        for key in keys:
            route(ring, "n0", key)

    benchmark(route_many)


def test_key_encode(benchmark):
    paths = [(i % 64 + 1, i % 32 + 1, i % 16 + 1) for i in range(256)]

    def encode_many():
        for path in paths:
            encode_path_key(VOL, path, block_number=3, version=7)

    benchmark(encode_many)


def test_key_decode(benchmark):
    keys = [
        encode_path_key(VOL, (i % 64 + 1, i % 32 + 1), block_number=i, version=i)
        for i in range(256)
    ]

    def decode_many():
        for key in keys:
            decode_key(key)

    benchmark(decode_many)


def test_directory_range_queries(benchmark):
    rng = random.Random(1)
    directory = BlockDirectory()
    for _ in range(20_000):
        directory.put(rng.randrange(KEY_SPACE), 8192)
    arcs = [(rng.randrange(KEY_SPACE), rng.randrange(KEY_SPACE)) for _ in range(256)]

    def query_many():
        for lo, hi in arcs:
            directory.count_in_range(lo, hi)

    benchmark(query_many)


def test_lookup_cache_probe(benchmark):
    rng = random.Random(2)
    cache = LookupCache(ttl=1e9)
    ring, _ = build_ring(500, seed=2)
    for name in list(ring.names())[:250]:
        lo, hi = ring.range_of(name)
        cache.insert(lo, hi, name, now=0.0)
    keys = [rng.randrange(KEY_SPACE) for _ in range(512)]

    def probe_many():
        for key in keys:
            cache.probe(key, now=1.0)

    benchmark(probe_many)
