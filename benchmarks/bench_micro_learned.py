"""Microbenchmarks of the learned key-range -> node index (PR-8 tier).

Two kinds of claims, mirroring ``bench_micro_route.py``:

* timing rows (pytest-benchmark) for trained prediction, the full learned
  lookup hit path, and online training throughput, and
* shape gates — a trained learned hit must stay >= 2x faster than the
  cold (bisect-per-level) routed lookup it replaces at 10^4 nodes, and a
  mispredicted lookup's fallback ``LookupResult`` must be byte-identical
  to plain :func:`repro.dht.routing.route` — so a regression that quietly
  breaks the model fails the bench suite instead of just slowing it down.
"""

import random
import time

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.learned import LearnedIndex
from repro.dht.ring import Ring
from repro.dht.routing import route, route_cold


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


def make_keys(rng, count=256):
    return [rng.randrange(KEY_SPACE) for _ in range(count)]


def trained_index(ring, rng, observations=4096, seed=1):
    """A learned index warmed with *observations* ground-truth pairs."""
    index = LearnedIndex(ring, seed=seed)
    index.refresh()  # snapshot the ring before feeding observations
    for _ in range(observations):
        key = rng.randrange(KEY_SPACE)
        index.observe(key, ring.successor_index(key))
    assert index.trained
    return index


def test_learned_predict(benchmark):
    ring, rng = build_ring(1000)
    index = trained_index(ring, rng)
    keys = make_keys(rng)

    def predict():
        for key in keys:
            index.predict(key)

    benchmark(predict)


def test_learned_lookup_hit_path(benchmark):
    ring, rng = build_ring(1000)
    index = trained_index(ring, rng)
    keys = make_keys(rng)

    def lookup():
        for key in keys:
            index.lookup("n0", key)

    benchmark(lookup)


def test_learned_online_training(benchmark):
    """Cost of feeding observations (reservoir + periodic refits)."""
    ring, rng = build_ring(1000)
    keys = make_keys(rng, 4096)
    owners = [ring.successor_index(key) for key in keys]

    def train():
        index = LearnedIndex(ring, seed=1)
        for key, owner in zip(keys, owners):
            index.observe(key, owner)

    benchmark(train)


def _best_of(runs, fn):
    """Minimum wall time over *runs* attempts — filters scheduler noise,
    which only ever makes a run slower, never faster."""
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_learned_hit_beats_cold_routing():
    """Shape gate: learned hits >= 2x faster than cold routing at 10^4."""
    ring, rng = build_ring(10_000, seed=3)
    index = trained_index(ring, rng, observations=8192)
    keys = make_keys(rng, 2000)
    # Only time actual hits — mispredicts pay for routing by design.
    hits = [key for key in keys if index.lookup("n0", key).hit]
    assert len(hits) > len(keys) // 2, (
        f"model too weak to benchmark: {len(hits)}/{len(keys)} hits"
    )

    def learned_loop():
        for key in hits:
            index.lookup("n0", key)

    def cold_loop():
        for key in hits[:200]:
            route_cold(ring, "n0", key)

    learned_wall = _best_of(3, learned_loop)
    cold_wall = _best_of(3, cold_loop) * (len(hits) / 200)

    assert cold_wall > 2 * learned_wall, (
        f"learned-hit speedup collapsed: cold {cold_wall:.3f}s "
        f"vs learned {learned_wall:.3f}s over {len(hits)} hits"
    )


def test_mispredict_fallback_byte_identical():
    """Shape gate: every non-hit lookup returns exactly ``route(...)``."""
    ring, rng = build_ring(2000, seed=5)
    index = trained_index(ring, rng, observations=2048)
    checked = 0
    for key in make_keys(rng, 2000):
        outcome = index.lookup("n37", key)
        if outcome.hit:
            continue
        reference = route(ring, "n37", key)
        assert outcome.result == reference, (
            f"fallback diverged from route() for key {key}"
        )
        assert outcome.extra_messages == (1 if outcome.predicted else 0)
        checked += 1
    # The gate is vacuous if the model never mispredicts at this scale.
    assert checked > 0, "no fallback lookups exercised"
