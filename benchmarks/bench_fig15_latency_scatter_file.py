"""Figure 15: access-group latency scatter, D2 vs traditional-file."""

from benchmarks.conftest import run_once
from repro.experiments.fig15_latency_scatter_file import format_fig15, run_fig15


def test_fig15_latency_scatter_file(benchmark):
    rows = run_once(benchmark, run_fig15)
    print()
    print(format_fig15(rows))
    para = next(r for r in rows if r["mode"] == "para")
    # Paper: the mass sits above the diagonal against traditional-file too
    # (clearest in para, where trad-file cannot parallelize within files).
    assert para["fraction_above_diagonal"] > 0.5
