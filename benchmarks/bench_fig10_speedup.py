"""Figure 10: speedup of D2 over the traditional DHT."""

from benchmarks.conftest import run_once
from repro.experiments.fig10_speedup import format_fig10, run_fig10


def test_fig10_speedup(benchmark):
    rows = run_once(benchmark, run_fig10)
    print()
    print(format_fig10(rows))
    by_key = {(r["bandwidth_kbps"], r["mode"], r["n_nodes"]): r["speedup"] for r in rows}
    seq_1500 = [v for (bw, mode, _n), v in by_key.items() if bw == 1500.0 and mode == "seq"]
    # Paper: seq speedup always noticeably above 1 (>= 1.9x at their
    # largest scale; >= 1.2x mean at ours).
    assert all(v > 1.0 for v in seq_1500)
    assert max(seq_1500) > 1.2
    # Paper: para at 1500 kbps stays >= ~1.
    para_1500 = [v for (bw, mode, _n), v in by_key.items() if bw == 1500.0 and mode == "para"]
    assert all(v > 0.9 for v in para_1500)
    # Paper's crossover: para at 384 kbps drops below 1 for the smaller
    # sizes (parallelism beats locality when links are slow).
    para_384 = [v for (bw, mode, _n), v in sorted(by_key.items()) if bw == 384.0 and mode == "para"]
    assert min(para_384) < 1.0
    # seq at 384 kbps still favors D2.
    seq_384 = [v for (bw, mode, _n), v in by_key.items() if bw == 384.0 and mode == "seq"]
    assert all(v > 1.0 for v in seq_384)
