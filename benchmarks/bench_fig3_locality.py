"""Figure 3: locality of traditional vs ordered vs lower-bound placement."""

from benchmarks.conftest import run_once
from repro.experiments.fig3_locality import format_fig3, run_fig3


def test_fig3_locality(benchmark):
    rows = run_once(benchmark, run_fig3)
    print()
    print(format_fig3(rows))
    by_key = {(r["workload"], r["scenario"]): r for r in rows}
    for workload in ("hp-synth", "harvard-synth", "web-synth"):
        ordered = by_key[(workload, "ordered")]["normalized"]
        bound = by_key[(workload, "lower-bound")]["normalized"]
        # Paper: ordered reduces nodes-contacted ~10x vs traditional...
        assert ordered < 0.25, f"{workload}: ordered not local enough"
        # ...and sits within an order of magnitude of the lower bound.
        assert ordered <= 10 * bound + 1e-9
        assert bound <= ordered + 1e-9
