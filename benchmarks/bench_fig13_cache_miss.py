"""Figure 13: lookup-cache miss rates per scenario."""

from benchmarks.conftest import run_once
from repro.experiments.fig13_cache_miss import format_fig13, run_fig13


def test_fig13_cache_miss(benchmark):
    rows = run_once(benchmark, run_fig13)
    print()
    print(format_fig13(rows))
    for row in rows:
        # Paper: D2 ~13% vs traditional >= 47%; shape requirement: a wide
        # gap at every size, with traditional-file in between.
        assert row["miss_rate_d2"] < row["miss_rate_traditional"] / 2.5
        assert row["miss_rate_d2"] <= row["miss_rate_traditional-file"]
    for mode in ("seq", "para"):
        series = [r for r in rows if r["mode"] == mode]
        trad = [r["miss_rate_traditional"] for r in series]
        d2 = [r["miss_rate_d2"] for r in series]
        # Traditional's miss rate grows with system size; D2's stays low.
        assert trad[-1] > trad[0]
        assert d2[-1] < 0.15
