"""Figure 9: lookup messages per node vs system size."""

from benchmarks.conftest import run_once
from repro.experiments.fig9_lookup_traffic import format_fig9, run_fig9


def test_fig9_lookup_traffic(benchmark):
    rows = run_once(benchmark, run_fig9)
    print()
    print(format_fig9(rows))
    for row in rows:
        trad = row["msgs_per_node_traditional"]
        d2 = row["msgs_per_node_d2"]
        tfile = row["msgs_per_node_traditional-file"]
        # Paper: D2 sends a small fraction of the traditional DHT's lookup
        # traffic (<1/20 at 1000 nodes; >=4x less at bench scale), with
        # traditional-file in between.
        assert d2 < trad / 4.0
        assert d2 <= tfile
    # D2's per-node traffic decreases (weakly) with system size.
    for mode in ("seq", "para"):
        series = [r["msgs_per_node_d2"] for r in rows if r["mode"] == mode]
        assert series[-1] <= series[0]
