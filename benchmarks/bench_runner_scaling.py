"""Runner scaling: performance-grid wall clock at jobs = 1, 2, 4.

Times the same 16-cell performance grid through :func:`performance_matrix`
at increasing worker counts, with both the process memo and the disk cache
disabled so every run recomputes all cells from scratch.  On a multi-core
machine the grid should speed up roughly linearly until the core count
binds (the cells are embarrassingly parallel); the paper-facing guarantee
— identical rows at every worker count — is asserted every run.
"""

import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.experiments import common
from repro.experiments.perf_runs import performance_matrix
from repro.runner import CACHE_ENV, last_stats

# 16 cells, each a genuinely expensive simulation, so the pool's fork and
# pickle overheads are amortized the way real figure grids amortize them.
GRID = dict(
    systems=("d2", "traditional"),
    modes=("seq", "para"),
    node_sizes=(24, 36),
    bandwidths_kbps=(1500.0, 384.0),
    users=4,
    days=0.5,
    n_windows=1,
    seed=9,
)

JOBS_LEVELS = (1, 2, 4)

_WALL = {}       # jobs -> seconds, filled across the parametrized runs
_ROWS = {}       # jobs -> matrix, for the identical-rows assertion


def _fresh_run(jobs):
    common.clear_cache()
    os.environ.pop(CACHE_ENV, None)      # no disk-cache short circuit
    os.environ.pop(common.MEMO_DISABLE_ENV, None)
    started = time.perf_counter()
    matrix = performance_matrix(**GRID, jobs=jobs)
    _WALL[jobs] = time.perf_counter() - started
    _ROWS[jobs] = matrix
    return matrix


@pytest.mark.parametrize("jobs", JOBS_LEVELS)
def test_runner_scaling(benchmark, jobs):
    matrix = run_once(benchmark, lambda: _fresh_run(jobs))
    stats = last_stats("performance")
    assert stats.jobs == jobs
    assert stats.cells_computed == 16  # nothing was served from a cache
    assert stats.cells_cached == 0
    assert len(matrix) == 16


def test_runner_scaling_summary():
    missing = [j for j in JOBS_LEVELS if j not in _WALL]
    assert not missing, f"scaling runs did not execute for jobs={missing}"

    print()
    print("runner scaling (16-cell performance grid)")
    print("jobs  wall_s  speedup_vs_serial")
    for jobs in JOBS_LEVELS:
        print(f"{jobs:4d}  {_WALL[jobs]:6.1f}  {_WALL[1] / _WALL[jobs]:17.2f}")

    # Identical rows whatever the worker count — the determinism contract.
    for jobs in JOBS_LEVELS[1:]:
        assert sorted(_ROWS[jobs]) == sorted(_ROWS[1])
        for key in _ROWS[1]:
            assert _ROWS[jobs][key] == _ROWS[1][key], (jobs, key)

    # The >=2x wall-clock target holds where there are cores to use; a
    # 1-2 core CI box cannot express it, so gate on the hardware.
    if (os.cpu_count() or 1) >= 4:
        assert _WALL[1] / _WALL[4] >= 2.0, (
            f"expected >=2x speedup at jobs=4, got {_WALL[1] / _WALL[4]:.2f}x"
        )
