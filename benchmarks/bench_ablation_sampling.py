"""Ablation: membership sampling vs Mercury random-walk sampling."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_sampling_ablation
from repro.experiments.common import format_table


def test_ablation_sampling(benchmark):
    rows = run_once(benchmark, run_sampling_ablation)
    print()
    print(format_table(
        rows,
        ["sampling", "rounds", "moves", "final_nsd", "max_over_mean"],
        title="Ablation: balancer sampling strategy",
    ))
    by = {row["sampling"]: row for row in rows}
    walk = by["random-walk"]
    member = by["membership"]
    # The decentralized sampler must reach comparable balance...
    assert walk["max_over_mean"] <= 4.5
    assert walk["final_nsd"] <= 2.0 * member["final_nsd"] + 0.2
    # ...without pathological extra movement.
    assert walk["moves"] <= 3 * member["moves"] + 5
