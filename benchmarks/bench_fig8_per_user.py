"""Figure 8: per-user unavailability, ranked."""

from benchmarks.conftest import run_once
from repro.experiments.fig8_per_user import format_fig8, run_fig8


def test_fig8_per_user(benchmark):
    rows = run_once(benchmark, run_fig8)
    print()
    print(format_fig8(rows))
    affected = {
        row["system"]: row["unavailability"]
        for row in rows
        if row["rank"] == "affected-users"
    }
    # Paper: D2 concentrates failures in fewer users than traditional.
    assert affected.get("d2", 0) <= affected.get("traditional", 0)
