"""Figure 14: access-group latency scatter, D2 vs traditional."""

from benchmarks.conftest import run_once
from repro.experiments.fig14_latency_scatter import format_fig14, run_fig14


def test_fig14_latency_scatter(benchmark):
    rows = run_once(benchmark, run_fig14)
    print()
    print(format_fig14(rows))
    for row in rows:
        # Paper: the weight of the distribution lies above the diagonal.
        assert row["fraction_above_diagonal"] > 0.5
    seq = next(r for r in rows if r["mode"] == "seq")
    # Paper: slow (>5 s) groups overwhelmingly complete faster in D2 (seq).
    if seq["slow_groups"]:
        assert seq["slow_groups_d2_wins"] >= 0.7 * seq["slow_groups"]
