"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables/figures at laptop scale,
prints the paper-comparable report, and asserts the *shape* claims (who
wins, by roughly what factor, where crossovers fall).  Expensive simulation
matrices are shared across benches through the process-wide experiment
cache, mirroring how the paper derives several figures from one testbed
run.
"""



def run_once(benchmark, fn):
    """Time one full experiment run (no warmup repetitions — these are
    minutes-long simulations, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
