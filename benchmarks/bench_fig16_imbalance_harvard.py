"""Figure 16: storage imbalance over time (Harvard)."""

from benchmarks.conftest import run_once
from repro.experiments.fig16_imbalance_harvard import format_fig16, summarize_fig16


def test_fig16_imbalance_harvard(benchmark):
    rows = run_once(benchmark, summarize_fig16)
    print()
    print(format_fig16(rows))
    nsd = {row["system"]: row["mean_nsd"] for row in rows}
    # Paper ordering: traditional-file >> traditional > D2 ~ trad+Merc.
    assert nsd["traditional-file"] > nsd["traditional"]
    assert nsd["d2"] < nsd["traditional"]
    assert nsd["d2"] < 2.0 * nsd["traditional+merc"] + 0.05
    mom = {row["system"]: row["mean_max_over_mean"] for row in rows}
    # Paper: D2's max node load ~1.6x mean vs traditional's ~2.4x, and the
    # t=4 threshold bounds it.
    assert mom["d2"] < mom["traditional-file"]
    assert mom["d2"] <= 4.0
