"""Figure 7: task unavailability vs inter, D2 vs baselines."""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.experiments.fig7_unavailability import format_fig7, run_fig7


def test_fig7_unavailability(benchmark):
    rows = run_once(benchmark, run_fig7)
    print()
    print(format_fig7(rows))
    means = defaultdict(dict)
    for row in rows:
        means[row["inter_s"]][row["system"]] = row["mean_unavailability"]
    for inter, by_system in means.items():
        d2 = by_system["d2"]
        trad = by_system["traditional"]
        # Paper: D2 cuts unavailability by ~an order of magnitude at every
        # inter; at bench scale we require >= 3x and never worse.
        assert d2 <= trad, f"inter={inter}: D2 worse than traditional"
        if trad > 0:
            assert d2 <= trad / 3.0, f"inter={inter}: improvement below 3x"
    # Some D2 trials show no failures at all (as in the paper's figure).
    d2_rows = [row for row in rows if row["system"] == "d2"]
    assert any(row["zero_trials"] > 0 for row in d2_rows)
