"""Tests for the synthetic failure-trace generator."""

import random

import pytest

from repro.sim.failures import (
    FailureEvent,
    FailureTrace,
    FailureTraceConfig,
    SECONDS_PER_DAY,
)


def generate(n=20, seed=0, **kwargs):
    names = [f"n{i}" for i in range(n)]
    config = FailureTraceConfig(**kwargs) if kwargs else FailureTraceConfig()
    return FailureTrace.generate(names, random.Random(seed), config)


class TestGeneration:
    def test_all_nodes_start_up(self):
        trace = generate()
        for node in trace.nodes:
            assert trace.is_up(node, 0.0)

    def test_events_sorted(self):
        trace = generate()
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_transitions_alternate(self):
        """After normalization each node strictly alternates down/up."""
        trace = generate(seed=3)
        state = {node: True for node in trace.nodes}
        for event in trace.events:
            assert event.up != state[event.node], "duplicate transition"
            state[event.node] = event.up

    def test_events_within_duration(self):
        trace = generate()
        for event in trace.events:
            assert 0 <= event.time <= trace.duration


class TestQueries:
    def test_is_up_tracks_transitions(self):
        events = [
            FailureEvent(100.0, "a", up=False),
            FailureEvent(200.0, "a", up=True),
        ]
        trace = FailureTrace(["a"], events, duration=1000.0)
        assert trace.is_up("a", 50.0)
        assert not trace.is_up("a", 150.0)
        assert trace.is_up("a", 250.0)

    def test_boundary_applies_at_event_time(self):
        events = [FailureEvent(100.0, "a", up=False)]
        trace = FailureTrace(["a"], events, duration=1000.0)
        assert not trace.is_up("a", 100.0)

    def test_down_since(self):
        events = [
            FailureEvent(100.0, "a", up=False),
            FailureEvent(200.0, "a", up=True),
            FailureEvent(300.0, "a", up=False),
        ]
        trace = FailureTrace(["a"], events, duration=1000.0)
        assert trace.down_since("a", 50.0) is None
        assert trace.down_since("a", 150.0) == 100.0
        assert trace.down_since("a", 250.0) is None
        assert trace.down_since("a", 400.0) == 300.0

    def test_up_set(self):
        events = [FailureEvent(100.0, "a", up=False)]
        trace = FailureTrace(["a", "b"], events, duration=1000.0)
        assert trace.up_set(150.0) == {"b"}


class TestAvailability:
    def test_availability_fraction(self):
        events = [
            FailureEvent(250.0, "a", up=False),
            FailureEvent(500.0, "a", up=True),
        ]
        trace = FailureTrace(["a"], events, duration=1000.0)
        assert trace.availability("a") == pytest.approx(0.75)

    def test_never_failing_node(self):
        trace = FailureTrace(["a"], [], duration=1000.0)
        assert trace.availability("a") == 1.0

    def test_down_at_end(self):
        events = [FailureEvent(800.0, "a", up=False)]
        trace = FailureTrace(["a"], events, duration=1000.0)
        assert trace.availability("a") == pytest.approx(0.8)

    def test_mean_availability_reasonable(self):
        trace = generate(n=40, seed=1)
        mean = trace.mean_availability()
        # MTTF 4 d / MTTR 4 h plus correlated outages: expect 90-99% up.
        assert 0.85 <= mean <= 0.999


class TestCorrelatedFailures:
    def test_correlated_events_take_down_groups(self):
        trace = generate(
            n=50,
            seed=2,
            duration=SECONDS_PER_DAY,
            mttf=1000 * SECONDS_PER_DAY,  # effectively no independent churn
            correlated_events=2,
            correlated_fraction=0.2,
            correlated_repair=3600.0,
        )
        down_times = [e.time for e in trace.events if not e.up]
        assert down_times, "correlated outages must produce failures"
        # The victims of one outage share the same failure instant.
        from collections import Counter

        counts = Counter(down_times)
        assert max(counts.values()) >= 5  # ~20% of 50 nodes together

    def test_no_failures_config(self):
        trace = generate(
            n=5,
            seed=0,
            duration=1000.0,
            mttf=1e12,
            correlated_events=0,
        )
        assert trace.events == []
        assert trace.mean_availability() == 1.0


class TestOverlapNormalization:
    def test_overlapping_downtime_merged(self):
        """A node already down when an outage hits stays down, cleanly."""
        from repro.sim.failures import events_from_intervals

        cleaned = events_from_intervals(
            {"a": [(100.0, 300.0), (200.0, 400.0)]}, duration=1000.0
        )
        assert [(e.time, e.up) for e in sorted(cleaned, key=lambda e: e.time)] == [
            (100.0, False),
            (400.0, True),
        ]

    def test_repair_past_end_dropped(self):
        from repro.sim.failures import events_from_intervals

        cleaned = events_from_intervals({"a": [(900.0, 1500.0)]}, duration=1000.0)
        assert [(e.time, e.up) for e in cleaned] == [(900.0, False)]
