"""Tests for the workload-generation CLI."""

import pytest

from repro.workloads.__main__ import main
from repro.workloads.trace import Trace


class TestGenerate:
    def test_harvard_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "h.jsonl")
        assert main(["harvard", "--users", "2", "--days", "0.2", "-o", out]) == 0
        assert "wrote" in capsys.readouterr().out
        trace = Trace.load(out)
        assert trace.name == "harvard-synth"
        assert len(trace) > 0

    def test_web_generate(self, tmp_path):
        out = str(tmp_path / "w.jsonl")
        assert main(["web", "--users", "2", "--sites", "4",
                     "--days", "0.1", "-o", out]) == 0
        assert Trace.load(out).users()

    def test_hp_generate(self, tmp_path):
        out = str(tmp_path / "b.jsonl")
        assert main(["hp", "--apps", "2", "--days", "0.1", "-o", out]) == 0
        assert len(Trace.load(out)) > 0

    def test_stats_subcommand(self, tmp_path, capsys):
        out = str(tmp_path / "h.jsonl")
        main(["harvard", "--users", "2", "--days", "0.1", "-o", out])
        capsys.readouterr()
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "accesses:" in text
        assert "active_bytes:" in text

    def test_seed_reproducible(self, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        main(["harvard", "--users", "2", "--days", "0.1", "--seed", "5", "-o", a])
        main(["harvard", "--users", "2", "--days", "0.1", "--seed", "5", "-o", b])
        assert open(a).read() == open(b).read()

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
