"""Tests for pointer-range bookkeeping."""

from repro.store.pointers import PointerRange, PointerTable


class TestPointerRange:
    def test_covers(self):
        record = PointerRange(10, 20, "n1", 0.0)
        assert record.covers(15)
        assert record.covers(20)
        assert not record.covers(10)
        assert not record.covers(25)


class TestPointerTable:
    def test_adopt_and_retire(self):
        table = PointerTable()
        record = table.adopt(10, 20, "n1", now=5.0)
        assert len(table) == 1
        assert table.adopted_count == 1
        table.retire(record)
        assert len(table) == 0
        assert table.stabilized_count == 1

    def test_double_retire_harmless(self):
        table = PointerTable()
        record = table.adopt(10, 20, "n1", now=0.0)
        table.retire(record)
        table.retire(record)
        assert table.stabilized_count == 1

    def test_retire_matches_identity_not_equality(self):
        # Two adoptions of the same arc at the same instant are equal but
        # distinct records; each stabilization event must retire its own.
        table = PointerTable()
        first = table.adopt(10, 20, "n1", now=0.0)
        second = table.adopt(10, 20, "n1", now=0.0)
        assert first == second and first is not second
        assert table.retire(first)
        assert table.pending() == (second,)
        assert table.pending()[0] is second
        assert table.retire(second)
        assert not table.retire(first)  # both gone; stale events no-op
        assert table.stabilized_count == 2

    def test_drop_does_not_count_as_stabilized(self):
        table = PointerTable()
        record = table.adopt(10, 20, "n1", now=0.0)
        assert table.drop(record)
        assert len(table) == 0
        assert table.dropped_count == 1
        assert table.stabilized_count == 0
        assert not table.retire(record)  # its stabilization event no-ops
        assert not table.drop(record)

    def test_pending_for_owner(self):
        table = PointerTable()
        table.adopt(10, 20, "n1", 0.0)
        table.adopt(30, 40, "n2", 0.0)
        assert len(list(table.pending_for("n1"))) == 1

    def test_covering(self):
        table = PointerTable()
        table.adopt(10, 20, "n1", 0.0)
        table.adopt(15, 40, "n2", 0.0)
        assert len(list(table.covering(18))) == 2
        assert len(list(table.covering(35))) == 1

    def test_pending_snapshot_immutable(self):
        table = PointerTable()
        table.adopt(10, 20, "n1", 0.0)
        snapshot = table.pending()
        table.adopt(30, 40, "n2", 0.0)
        assert len(snapshot) == 1
