"""Unit tests for the extension experiment drivers at tiny scale."""

import pytest

from repro.experiments.ext_erasure import format_erasure, run_erasure_extension
from repro.experiments.ext_hotspot import format_hotspot, run_hotspot_extension
from repro.experiments.ext_hybrid import format_hybrid, run_hybrid_extension


class TestHybridDriver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_hybrid_extension(
            n_nodes=24, victim_files=8, big_file_blocks=16, seed=13
        )

    def test_three_placements(self, rows):
        assert {r["placement"] for r in rows} == {
            "locality", "hybrid", "hybrid-position"
        }

    def test_hybrid_improves_capture(self, rows):
        by = {r["placement"]: r for r in rows}
        assert by["hybrid"]["captured_fraction"] <= by["locality"]["captured_fraction"]

    def test_hybrid_improves_outage_readability(self, rows):
        by = {r["placement"]: r for r in rows}
        assert (by["hybrid"]["readable_under_arc_outage"]
                >= by["locality"]["readable_under_arc_outage"])

    def test_rank_hybrid_widens_fanout(self, rows):
        by = {r["placement"]: r for r in rows}
        assert by["hybrid"]["bulk_read_fanout"] > by["locality"]["bulk_read_fanout"]

    def test_format(self, rows):
        assert "hybrid" in format_hybrid(rows)


class TestHotspotDriver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_hotspot_extension(
            n_nodes=16, n_files=8, n_clients=10, requests=800, seed=13
        )

    def test_two_schemes(self, rows):
        assert {r["scheme"] for r in rows} == {"replicas-only", "retrieval-caches"}

    def test_caches_flatten(self, rows):
        by = {r["scheme"]: r for r in rows}
        assert (by["retrieval-caches"]["max_over_mean_requests"]
                <= by["replicas-only"]["max_over_mean_requests"])

    def test_hit_fraction_sane(self, rows):
        cached = next(r for r in rows if r["scheme"] == "retrieval-caches")
        assert 0.0 < cached["cache_hit_fraction"] <= 1.0

    def test_format(self, rows):
        assert "hot spot" in format_hotspot(rows).lower()


class TestErasureDriver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_erasure_extension(n_nodes=20, users=2, days=0.5, seed=13)

    def test_grid_complete(self, rows):
        assert len(rows) == 6  # 2 systems x 3 schemes

    def test_unavailability_in_range(self, rows):
        for row in rows:
            assert 0.0 <= row["unavailability"] <= 1.0

    def test_storage_overheads(self, rows):
        overheads = {r["redundancy"]: r["storage_overhead"] for r in rows}
        assert overheads["replication r=3"] == pytest.approx(3.0)
        assert overheads["erasure (4,2)"] == pytest.approx(2.0)

    def test_d2_never_worse_per_scheme(self, rows):
        by = {(r["system"], r["redundancy"]): r["unavailability"] for r in rows}
        for scheme in ("replication r=3", "erasure (6,2)", "erasure (4,2)"):
            assert by[("d2", scheme)] <= by[("traditional", scheme)] + 1e-9

    def test_format(self, rows):
        assert "erasure" in format_erasure(rows).lower()
