"""Tests for the block directory (sorted index with circular range queries)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.keyspace import MAX_KEY
from repro.store.block_store import BlockDirectory, BlockDirectoryError


class TestMutation:
    def test_add_and_contains(self):
        d = BlockDirectory()
        d.add(10, 100)
        assert 10 in d
        assert len(d) == 1
        assert d.size_of(10) == 100

    def test_add_duplicate_rejected(self):
        d = BlockDirectory()
        d.add(10, 100)
        with pytest.raises(BlockDirectoryError):
            d.add(10, 200)

    def test_put_upserts(self):
        d = BlockDirectory()
        assert d.put(10, 100) == 100
        assert d.put(10, 250) == 150
        assert d.size_of(10) == 250
        assert d.total_bytes == 250

    def test_remove_returns_size(self):
        d = BlockDirectory()
        d.add(10, 100)
        assert d.remove(10) == 100
        assert 10 not in d
        assert d.total_bytes == 0

    def test_remove_missing_raises(self):
        with pytest.raises(BlockDirectoryError):
            BlockDirectory().remove(10)

    def test_discard_missing_returns_none(self):
        assert BlockDirectory().discard(10) is None

    def test_negative_size_rejected(self):
        with pytest.raises(BlockDirectoryError):
            BlockDirectory().add(10, -1)

    def test_total_bytes_tracks(self):
        d = BlockDirectory()
        d.add(1, 10)
        d.add(2, 20)
        d.remove(1)
        assert d.total_bytes == 20


class TestRangeQueries:
    def make(self):
        d = BlockDirectory()
        for key in (10, 20, 30, 40, 50):
            d.add(key, key)
        return d

    def test_simple_range(self):
        d = self.make()
        assert d.keys_in_range(15, 45) == [20, 30, 40]
        assert d.count_in_range(15, 45) == 3

    def test_lo_exclusive_hi_inclusive(self):
        d = self.make()
        assert d.keys_in_range(10, 30) == [20, 30]

    def test_wrapping_range(self):
        d = self.make()
        assert d.keys_in_range(45, 15) == [50, 10]
        assert d.count_in_range(45, 15) == 2

    def test_full_ring_when_lo_equals_hi(self):
        d = self.make()
        assert d.count_in_range(25, 25) == 5
        assert sorted(d.keys_in_range(25, 25)) == [10, 20, 30, 40, 50]

    def test_full_ring_order_is_clockwise(self):
        d = self.make()
        assert d.keys_in_range(25, 25) == [30, 40, 50, 10, 20]

    def test_empty_directory(self):
        d = BlockDirectory()
        assert d.keys_in_range(0, MAX_KEY) == []
        assert d.count_in_range(0, MAX_KEY) == 0

    def test_bytes_in_range(self):
        d = self.make()
        assert d.bytes_in_range(15, 45) == 20 + 30 + 40

    def test_counts_match_keys(self):
        d = self.make()
        for lo, hi in ((0, 25), (25, 0), (10, 10), (49, 51)):
            assert d.count_in_range(lo, hi) == len(d.keys_in_range(lo, hi))

    def test_mutation_invalidates_index(self):
        d = self.make()
        assert d.count_in_range(15, 45) == 3
        d.add(25, 25)
        assert d.count_in_range(15, 45) == 4
        d.remove(25)
        assert d.count_in_range(15, 45) == 3


class TestMedian:
    def test_median_simple(self):
        d = BlockDirectory()
        for key in (10, 20, 30, 40):
            d.add(key, 1)
        assert d.median_key_in_range(5, 45) == 20

    def test_median_needs_two_keys(self):
        d = BlockDirectory()
        d.add(10, 1)
        assert d.median_key_in_range(0, 100) is None

    def test_median_not_at_hi(self):
        d = BlockDirectory()
        d.add(10, 1)
        d.add(20, 1)
        assert d.median_key_in_range(0, 20) == 10


class TestSnapshotLoads:
    def test_loads_per_arc(self):
        d = BlockDirectory()
        for key in (10, 20, 30, 40, 50):
            d.add(key, 1)
        loads = d.snapshot_loads([(5, 25, "a"), (25, 55, "b"), (55, 5, "c")])
        assert loads == {"a": 2, "b": 3, "c": 0}


@given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=10_000))
def test_range_query_matches_bruteforce(keyset, lo, hi):
    from repro.dht.keyspace import in_interval

    d = BlockDirectory()
    for key in keyset:
        d.add(key, 1)
    expected = sorted(k for k in keyset if lo == hi or in_interval(k, lo, hi))
    got = sorted(d.keys_in_range(lo, hi))
    assert got == expected
