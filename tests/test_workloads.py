"""Tests for the synthetic workload generators (Harvard / HP / Web)."""

import pytest

from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.hp import HPConfig, block_name, generate_hp
from repro.workloads.trace import CREATE, DELETE, READ, RENAME, WRITE
from repro.workloads.web import WebConfig, WebUniverse, generate_web, reversed_domain
import random


@pytest.fixture(scope="module")
def harvard():
    return generate_harvard(HarvardConfig(users=4, days=1.0, seed=7))


@pytest.fixture(scope="module")
def hp():
    return generate_hp(HPConfig(applications=4, days=0.5, seed=7))


@pytest.fixture(scope="module")
def web():
    return generate_web(WebConfig(users=6, days=0.5, sites=10, seed=7))


class TestHarvard:
    def test_deterministic(self):
        a = generate_harvard(HarvardConfig(users=2, days=0.25, seed=1))
        b = generate_harvard(HarvardConfig(users=2, days=0.25, seed=1))
        assert len(a) == len(b)
        assert a.records[0] == b.records[0]

    def test_has_initial_image(self, harvard):
        assert harvard.initial_files
        assert harvard.initial_dirs
        assert "/home" in harvard.initial_dirs

    def test_all_op_kinds_present(self, harvard):
        ops = {r.op for r in harvard.records}
        assert {READ, WRITE, CREATE, DELETE} <= ops

    def test_renames_rare(self, harvard):
        renames = sum(1 for r in harvard.records if r.op == RENAME)
        assert renames / len(harvard) < 0.01  # paper: 0.05% of operations

    def test_reads_dominate(self, harvard):
        reads = sum(1 for r in harvard.records if r.op == READ)
        assert reads / len(harvard) > 0.5

    def test_replayable(self, harvard):
        """Every record must apply cleanly against the evolving namespace."""
        from repro.fs.fslayer import DhtFileSystem
        from repro.fs.keyschemes import make_scheme
        from repro.fs.namespace import NamespaceError

        fs = DhtFileSystem(make_scheme("d2", "v"))
        fs.format()
        for d in harvard.initial_dirs:
            if not fs.namespace.exists(d):
                fs.makedirs(d)
        for path, size in harvard.initial_files:
            fs.create(path, size=size)
        skipped = 0
        for record in harvard.records:
            try:
                if record.op == READ:
                    fs.read(record.path, record.offset, record.length or None)
                elif record.op == WRITE:
                    if fs.namespace.exists(record.path):
                        fs.write(record.path, record.offset, record.length)
                    else:
                        fs.create(record.path, size=record.offset + record.length)
                elif record.op == CREATE:
                    fs.create(record.path, size=record.size)
                elif record.op == DELETE:
                    fs.remove(record.path)
                elif record.op == RENAME:
                    fs.rename(record.path, record.dst_path)
            except NamespaceError:
                skipped += 1
        assert skipped / len(harvard) < 0.06

    def test_namespace_locality_of_tasks(self, harvard):
        """Consecutive same-user accesses mostly share a directory."""
        by_user = harvard.per_user()
        same_dir = total = 0
        for records in by_user.values():
            reads = [r for r in records if r.op == READ]
            for a, b in zip(reads, reads[1:]):
                if b.time - a.time < 1.0:
                    total += 1
                    if a.path.rsplit("/", 1)[0] == b.path.rsplit("/", 1)[0]:
                        same_dir += 1
        assert total > 0
        assert same_dir / total > 0.6

    def test_diurnal_pattern(self, harvard):
        work = sum(1 for r in harvard.records if 9 <= (r.time % 86400) / 3600 < 18)
        assert work / len(harvard) > 0.6

    def test_heavy_tailed_sizes(self, harvard):
        sizes = sorted(size for _, size in harvard.initial_files)
        assert sizes[-1] / max(1, sizes[len(sizes) // 2]) > 50


class TestHP:
    def test_block_names_sort_numerically(self):
        assert block_name(5) < block_name(10) < block_name(100)

    def test_reads_and_writes_only(self, hp):
        assert {r.op for r in hp.records} <= {READ, WRITE}

    def test_sequential_runs_present(self, hp):
        """Many consecutive accesses hit numerically adjacent blocks."""
        by_user = hp.per_user()
        adjacent = total = 0
        for records in by_user.values():
            for a, b in zip(records, records[1:]):
                if b.time - a.time < 0.5:
                    total += 1
                    na = int(a.path.rsplit("/", 1)[1])
                    nb = int(b.path.rsplit("/", 1)[1])
                    if abs(nb - na) <= 1:
                        adjacent += 1
        assert total > 0
        assert adjacent / total > 0.5

    def test_addresses_in_disk_range(self, hp):
        config = HPConfig(applications=4, days=0.5, seed=7)
        for record in hp.records[:200]:
            number = int(record.path.rsplit("/", 1)[1])
            assert 0 <= number < config.disk_blocks


class TestWeb:
    def test_reversed_domain(self):
        assert reversed_domain("www.yahoo.com") == "com.yahoo.www"

    def test_urls_are_reversed_names(self, web):
        for record in web.records[:50]:
            assert record.path.startswith("/com.")

    def test_read_only(self, web):
        assert {r.op for r in web.records} == {READ}

    def test_sizes_positive(self, web):
        assert all(r.length > 0 for r in web.records)

    def test_zipf_popularity(self, web):
        """Site popularity is heavy-tailed: head dwarfs tail."""
        from collections import Counter

        sites = Counter(r.path.split("/")[1] for r in web.records)
        counts = sorted(sites.values(), reverse=True)
        assert counts[0] >= 3 * counts[-1]
        assert counts[0] >= 1.5 * counts[len(counts) // 2]

    def test_page_views_cluster_in_page_directory(self, web):
        by_user = web.per_user()
        same_page = total = 0
        for records in by_user.values():
            for a, b in zip(records, records[1:]):
                if b.time - a.time < 1.0:
                    total += 1
                    if a.path.rsplit("/", 1)[0] == b.path.rsplit("/", 1)[0]:
                        same_page += 1
        assert total > 0
        assert same_page / total > 0.5

    def test_universe_reconstructible(self):
        config = WebConfig(users=2, days=0.1, sites=5, seed=3)
        u1 = WebUniverse(config, rng=random.Random(3))
        u2 = WebUniverse(config, rng=random.Random(3))
        assert [o.url for o in u1.all_objects()] == [o.url for o in u2.all_objects()]
