"""Tests for the storage coordinator: writes, removal, moves, pointers."""

import pytest

from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.sim.engine import Simulator
from repro.store.migration import SECONDS_PER_DAY, StorageCoordinator, TrafficLedger


def make_system(positions=(100, 200, 300, 400), **kwargs):
    ring = Ring()
    for i, pos in enumerate(positions):
        ring.join(f"n{i}", pos * (KEY_SPACE // 1000))
    sim = Simulator()
    return ring, sim, StorageCoordinator(ring, sim, **kwargs)


def key_at(thousandth):
    return thousandth * (KEY_SPACE // 1000)


class TestWritePath:
    def test_write_places_on_owner(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 8192)
        assert store.physical_holder(key) == ring.successor(key) == "n1"
        assert store.ledger.total_written == 8192

    def test_overwrite_accounts_at_least_size(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 8192)
        store.write(key, 8192)
        assert store.ledger.total_written == 16384

    def test_holders_are_replica_group(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 10)
        assert store.holders(key) == ["n1", "n2", "n3"]


class TestRemoval:
    def test_removal_delayed(self):
        ring, sim, store = make_system(removal_delay=30.0)
        key = key_at(150)
        store.write(key, 100)
        store.remove(key)
        assert key in store.directory  # grace period
        sim.run(until=31.0)
        assert key not in store.directory
        assert store.ledger.total_removed == 100

    def test_immediate_removal(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100)
        store.remove(key, delay=0)
        assert key not in store.directory

    def test_double_removal_harmless(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100)
        store.remove(key, delay=0)
        store.remove(key, delay=0)
        assert store.ledger.total_removed == 100


class TestRemovalRaces:
    """Regressions: the grace-window removal event carries a deadline guard."""

    def test_rewrite_during_grace_window_survives(self):
        ring, sim, store = make_system(removal_delay=30.0)
        key = key_at(150)
        store.write(key, 100)
        store.remove(key)
        sim.run(until=10.0)
        store.write(key, 200)  # rescue: disarms the pending removal
        sim.run(until=100.0)
        assert key in store.directory
        assert store.ledger.total_removed == 0
        assert store.ledger.total_written == 300

    def test_newer_removal_supersedes_older(self):
        ring, sim, store = make_system(removal_delay=30.0)
        key = key_at(150)
        store.write(key, 100)
        store.remove(key)  # deadline t=30
        sim.run(until=10.0)
        store.remove(key)  # deadline t=40 wins
        sim.run(until=35.0)
        assert key in store.directory  # the stale t=30 event no-opped
        sim.run(until=41.0)
        assert key not in store.directory
        assert store.ledger.total_removed == 100  # counted exactly once

    def test_remove_clears_ttl_state(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=50.0)
        store.remove(key, delay=0)
        assert store.expiry_of(key) is None  # no TTL leak for a dead key

    def test_stale_ttl_cannot_kill_rewritten_block(self):
        ring, sim, store = make_system(removal_delay=30.0)
        key = key_at(150)
        store.write(key, 100, ttl=45.0)
        store.remove(key)  # clears TTL state; grace window runs to t=30
        sim.run(until=10.0)
        store.write(key, 100)  # rescued, no TTL
        sim.run(until=1000.0)  # both the t=30 removal and t=45 TTL no-op
        assert key in store.directory
        assert store.ledger.total_removed == 0


class TestStabilizeAfterFlush:
    def test_stabilize_event_after_flush_is_noop(self):
        ring, sim, store = make_system(pointer_stabilization_time=3600.0)
        for t in (150, 155, 160, 165):
            store.write(key_at(t), 1000)
        store.execute_move("n0", key_at(155))
        store.flush_all_pointers()
        migrated = store.ledger.total_migrated
        stabilized = store.pointer_table.stabilized_count
        counted = store.metrics.counter("pointer.stabilized").value
        sim.run(until=7200.0)  # the originally-scheduled events fire now
        assert store.ledger.total_migrated == migrated
        assert store.pointer_table.stabilized_count == stabilized
        assert store.metrics.counter("pointer.stabilized").value == counted


class TestBalanceCoordinatorProtocol:
    def test_primary_load_counts_arc(self):
        ring, sim, store = make_system()
        store.write(key_at(150), 1)
        store.write(key_at(160), 1)
        store.write(key_at(250), 1)
        assert store.primary_load("n1") == 2
        assert store.primary_load("n2") == 1
        assert store.primary_load("n0") == 0

    def test_primary_keys_sorted_in_arc(self):
        ring, sim, store = make_system()
        keys = [key_at(t) for t in (150, 160, 170)]
        for key in keys:
            store.write(key, 1)
        assert list(store.primary_keys("n1")) == keys


class TestMoves:
    def test_move_with_pointers_defers_migration(self):
        ring, sim, store = make_system(pointer_stabilization_time=3600.0)
        keys = [key_at(t) for t in (150, 155, 160, 165)]
        for key in keys:
            store.write(key, 1000)
        # n0 moves to split n1's load.
        split = keys[1]
        store.execute_move("n0", split)
        assert ring.successor(keys[0]) == "n0"
        # Data has NOT moved yet: still physically on n1.
        assert store.physical_holder(keys[0]) == "n1"
        assert store.ledger.total_migrated == 0
        assert store.pointer_block_count() == 2
        # After stabilization the bytes move exactly once.
        sim.run(until=3601.0)
        assert store.physical_holder(keys[0]) == "n0"
        assert store.ledger.total_migrated == 2000
        assert store.pointer_block_count() == 0

    def test_move_without_pointers_migrates_immediately(self):
        ring, sim, store = make_system(use_pointers=False)
        keys = [key_at(t) for t in (150, 155, 160, 165)]
        for key in keys:
            store.write(key, 1000)
        store.execute_move("n0", keys[1])
        assert store.ledger.total_migrated == 2000
        assert store.physical_holder(keys[0]) == "n0"

    def test_pointer_chain_moves_bytes_once(self):
        """B takes from A, D takes from B before stabilizing: bytes move
        directly from A to D, once (the Figure 6 scenario)."""
        ring, sim, store = make_system(
            positions=(100, 200, 300, 400, 500), pointer_stabilization_time=3600.0
        )
        keys = [key_at(t) for t in (150, 155, 160, 165)]
        for key in keys:
            store.write(key, 1000)  # all on n1 (A)
        store.execute_move("n0", keys[1])   # B adopts first half
        store.execute_move("n4", keys[0])   # D adopts B's first key
        sim.run(until=7200.0)
        # Two keys changed owner (150 -> n4, 155 -> n0); each moved exactly
        # once, directly from A, even though responsibility moved twice.
        assert store.ledger.total_migrated == 2000
        assert store.physical_holder(keys[0]) == "n4"
        assert store.physical_holder(keys[1]) == "n0"
        assert store.physical_holder(keys[2]) == "n1"

    def test_writes_after_adoption_cost_nothing(self):
        ring, sim, store = make_system(pointer_stabilization_time=3600.0)
        first = key_at(150)
        store.write(first, 1000)
        second = key_at(152)
        store.write(second, 1000)
        store.execute_move("n0", key_at(155))
        # A write into the adopted range goes straight to the new owner.
        third = key_at(151)
        store.write(third, 1000)
        assert store.physical_holder(third) == "n0"
        sim.run(until=3601.0)
        # Only the two pre-move blocks migrated.
        assert store.ledger.total_migrated == 2000

    def test_vacated_range_handed_to_successor(self):
        ring, sim, store = make_system(pointer_stabilization_time=10.0)
        mine = key_at(50)
        store.write(mine, 777)  # owned by n0 (wrapping arc)
        # Moving forward past n1 hands n0's old arc to n1.
        store.execute_move("n0", key_at(250))
        assert ring.successor(mine) == "n1"
        sim.run(until=11.0)
        assert store.physical_holder(mine) == "n1"
        assert store.ledger.total_migrated == 777

    def test_flush_all_pointers(self):
        ring, sim, store = make_system(pointer_stabilization_time=1e9)
        for t in (150, 155, 160, 165):
            store.write(key_at(t), 10)
        store.execute_move("n0", key_at(155))
        store.flush_all_pointers()
        assert store.pointer_block_count() == 0


class TestReporting:
    def test_primary_loads_sum_to_directory(self):
        ring, sim, store = make_system()
        for t in (50, 150, 250, 350, 450):
            store.write(key_at(t), 1)
        assert sum(store.primary_loads().values()) == len(store.directory)

    def test_total_loads_replicate(self):
        ring, sim, store = make_system(replica_count=3)
        store.write(key_at(150), 1)
        totals = store.total_loads()
        assert sum(totals.values()) == 3  # one block on three nodes

    def test_total_bytes_per_node(self):
        ring, sim, store = make_system(replica_count=2)
        store.write(key_at(150), 500)
        volumes = store.total_bytes_per_node()
        assert sum(volumes.values()) == 1000
        assert volumes["n1"] == 500 and volumes["n2"] == 500


class TestLedger:
    def test_daily_buckets(self):
        ledger = TrafficLedger()
        ledger.record_write(0.0, 100)
        ledger.record_write(SECONDS_PER_DAY + 5, 200)
        ledger.record_migration(SECONDS_PER_DAY + 10, 50)
        series = ledger.daily_series(2)
        assert series[0] == {"day": 1, "written": 100, "removed": 0, "migrated": 0}
        assert series[1] == {"day": 2, "written": 200, "removed": 0, "migrated": 50}

    def test_totals(self):
        ledger = TrafficLedger()
        ledger.record_write(0.0, 100)
        ledger.record_remove(1.0, 40)
        ledger.record_migration(2.0, 70)
        assert (ledger.total_written, ledger.total_removed, ledger.total_migrated) == (100, 40, 70)


class TestTtlExpiry:
    """Section 3: blocks auto-expire after a refreshable TTL."""

    def test_block_expires_after_ttl(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=60.0)
        sim.run(until=59.0)
        assert key in store.directory
        sim.run(until=61.0)
        assert key not in store.directory
        assert store.ledger.total_removed == 100

    def test_refresh_extends_life(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=60.0)
        sim.run(until=50.0)
        assert store.refresh(key, 60.0)
        sim.run(until=100.0)
        assert key in store.directory
        sim.run(until=111.0)
        assert key not in store.directory

    def test_rewrite_refreshes(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=60.0)
        sim.run(until=50.0)
        store.write(key, 100, ttl=60.0)
        sim.run(until=100.0)
        assert key in store.directory

    def test_rewrite_without_ttl_clears_expiry(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=60.0)
        store.write(key, 100)
        sim.run(until=1000.0)
        assert key in store.directory
        assert store.expiry_of(key) is None

    def test_refresh_of_missing_block_fails(self):
        ring, sim, store = make_system()
        assert not store.refresh(key_at(150), 60.0)

    def test_nonpositive_ttl_rejected(self):
        ring, sim, store = make_system()
        with pytest.raises(ValueError):
            store.write(key_at(150), 100, ttl=0.0)

    def test_explicit_remove_beats_ttl(self):
        ring, sim, store = make_system()
        key = key_at(150)
        store.write(key, 100, ttl=1000.0)
        store.remove(key, delay=0)
        sim.run(until=2000.0)
        assert key not in store.directory
        assert store.ledger.total_removed == 100  # not double-counted
